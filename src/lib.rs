//! # lacr — Interconnect Planning with Local Area Constrained Retiming
//!
//! A reproduction of Lu & Koh, *"Interconnect Planning with Local Area
//! Constrained Retiming"*, DATE 2003, as a workspace of focused crates.
//!
//! This facade crate re-exports every sub-crate so downstream users can
//! depend on a single package:
//!
//! ```
//! use lacr::netlist::bench89;
//! use lacr::core::experiment::ExperimentConfig;
//!
//! let circuit = bench89::generate("s344").expect("known benchmark");
//! assert!(circuit.num_units() > 0);
//! let _cfg = ExperimentConfig::default();
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`netlist`] | sequential circuit model, `.bench` I/O, ISCAS89-class generators |
//! | [`mcmf`] | min-cost flow and difference-constraint solvers |
//! | [`timing`] | technology parameters and Elmore delay models |
//! | [`partition`] | recursive Fiduccia–Mattheyses partitioning |
//! | [`floorplan`] | sequence-pair floorplanner and the tile graph |
//! | [`route`] | rectilinear Steiner trees and congestion-aware global routing |
//! | [`repeater`] | `L_max`-constrained repeater planning, interconnect units |
//! | [`retime`] | retiming graphs, W/D matrices, min-period / min-area retiming |
//! | [`core`] | LAC-retiming, the planning pipeline, the experiment driver |
//! | [`obs`] | zero-dependency tracing, metrics and perf reports |
//! | [`par`] | deterministic scoped thread pool and ordered parallel map |
//! | [`bench`] | run artifacts, validators and the regression gate |
//! | [`serve`] | the `lacr serve` daemon: line-JSON protocol, worker pool, fault isolation |

pub use lacr_bench as bench;
pub use lacr_core as core;
pub use lacr_floorplan as floorplan;
pub use lacr_mcmf as mcmf;
pub use lacr_netlist as netlist;
pub use lacr_obs as obs;
pub use lacr_par as par;
pub use lacr_partition as partition;
pub use lacr_repeater as repeater;
pub use lacr_retime as retime;
pub use lacr_route as route;
pub use lacr_serve as serve;
pub use lacr_timing as timing;
