//! `lacr` — command-line front end for the interconnect planner.
//!
//! ```text
//! lacr list                      # available benchmark circuits
//! lacr plan <circuit|file.bench> [--budget-ms N]
//!                                # plan one circuit, print the report
//! lacr run <circuit|file.bench> [--budget-ms N]
//!                                # same as plan (canonical observability entry)
//! lacr table1 [circuit ...]      # regenerate the paper's Table 1
//! lacr fig2 <circuit> [out.svg]  # render the tile graph (Figure 2)
//! lacr retime <file.bench> <out.bench> [period_ps]
//!                                # min-area retime a .bench netlist
//! lacr compare <base.json> <current.json> [--no-wall] [--subset] [--json out]
//!                                # diff two run artifacts (regression gate)
//! lacr serve [--workers N] [--queue-cap N] [--socket path] ...
//!                                # long-lived daemon: line-JSON requests in,
//!                                # one JSON response line per request out
//! ```
//!
//! Global flags (any command): `--trace` streams pipeline spans to
//! stderr, `--metrics-out <path>` writes the JSONL record stream,
//! `--trace-chrome <path>` writes a Chrome trace-event JSON file
//! (loadable in Perfetto / `chrome://tracing`), `--report` prints the
//! per-stage self-time table after the run, `--report-json <path>`
//! writes the same aggregate report as schema-versioned JSON,
//! `--quiet` silences `[lacr]` diagnostics, and `--threads N` caps the
//! worker pool for parallel regions (overriding the `LACR_THREADS`
//! environment variable; output is bit-identical at any thread count).
//! `--flight-recorder-out <path>` redirects the always-on flight
//! recorder's postmortem dump (default `target/flight/last-run.jsonl`;
//! set `LACR_FLIGHT=off` to disable recording entirely). The dump is
//! written automatically on panic, on degraded exit (3) and on budget
//! expiry.
//!
//! Exit codes: 0 success, 1 error (one-line diagnostic on stderr),
//! 2 usage, 3 the run finished but the plan is *degraded* (budget
//! expiry, fallback solver, residual overflow — reasons on stderr).

use lacr::core::experiment::{format_table, run_circuit, run_experiment, ExperimentConfig};
use lacr::core::planner::{
    try_build_physical_plan, try_plan_retimings, try_plan_retimings_at, PlannerConfig,
};
use lacr::core::render::{tile_ascii, tile_ascii_legend, tile_svg};
use lacr::core::{summarize, try_retimed_circuit, Budget, Degradation};
use lacr::netlist::{bench89, bench_format, stats::CircuitStats, Circuit};
use lacr::serve::ServeConfig;
use std::process::ExitCode;
use std::time::Duration;

/// Observability flags accepted by every command, stripped from the
/// argument list before command dispatch.
#[derive(Debug, Default)]
struct ObsFlags {
    quiet: bool,
    trace: bool,
    report: bool,
    report_json: Option<String>,
    metrics_out: Option<String>,
    trace_chrome: Option<String>,
    threads: Option<usize>,
    flight_out: Option<String>,
}

impl ObsFlags {
    fn from_args(args: &mut Vec<String>) -> Result<Self, String> {
        let mut flags = Self::default();
        let mut rest = Vec::with_capacity(args.len());
        let mut it = std::mem::take(args).into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quiet" => flags.quiet = true,
                "--trace" => flags.trace = true,
                "--report" => flags.report = true,
                "--metrics-out" => {
                    flags.metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?);
                }
                "--trace-chrome" => {
                    flags.trace_chrome = Some(it.next().ok_or("--trace-chrome needs a path")?);
                }
                "--report-json" => {
                    flags.report_json = Some(it.next().ok_or("--report-json needs a path")?);
                }
                "--flight-recorder-out" => {
                    flags.flight_out = Some(it.next().ok_or("--flight-recorder-out needs a path")?);
                }
                "--threads" => {
                    let n: usize = it
                        .next()
                        .ok_or("--threads needs a worker count")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                    if n == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    flags.threads = Some(n);
                }
                _ => rest.push(a),
            }
        }
        *args = rest;
        Ok(flags)
    }

    /// Installs the diagnostics level and the requested sinks: the JSONL
    /// file for `--metrics-out`, live stderr tracing for `--trace`, a
    /// Chrome trace-event file for `--trace-chrome`. Several at once fan
    /// out through a [`lacr::obs::sink::TeeSink`]; `--report` /
    /// `--report-json` alone install a null sink (aggregation only).
    fn install(&self) -> Result<(), String> {
        // Allocation counting honors `LACR_MEM=0|off`; applied here (not
        // inside the allocator, which must never read the environment).
        lacr::obs::mem::init_tracking_from_env();
        if let Some(n) = self.threads {
            lacr::par::set_threads(n);
        }
        if self.quiet {
            lacr::obs::set_diag_level(lacr::obs::DiagLevel::Silent);
        }
        let mut sinks: Vec<Box<dyn lacr::obs::sink::Sink + Send>> = Vec::new();
        if let Some(path) = &self.metrics_out {
            let sink =
                lacr::obs::sink::JsonlSink::create(path).map_err(|e| format!("{path}: {e}"))?;
            sinks.push(Box::new(sink));
        }
        if self.trace {
            sinks.push(Box::new(lacr::obs::sink::StderrSink));
        }
        if let Some(path) = &self.trace_chrome {
            sinks.push(Box::new(lacr::obs::ChromeTraceSink::create(path)));
        }
        match sinks.len() {
            0 => {
                if self.report || self.report_json.is_some() {
                    lacr::obs::init(Box::new(lacr::obs::sink::NullSink));
                }
            }
            1 => lacr::obs::init(sinks.pop().expect("one sink")),
            _ => lacr::obs::init(Box::new(lacr::obs::sink::TeeSink::new(sinks))),
        }
        // The flight recorder is always on (LACR_FLIGHT=off opts out):
        // arm the postmortem path and hook panics so a crash, a degraded
        // exit or a budget expiry leaves a debuggable artifact behind.
        lacr::obs::flight::arm(
            self.flight_out
                .clone()
                .unwrap_or_else(|| "target/flight/last-run.jsonl".to_string()),
        );
        lacr::obs::flight::install_panic_hook();
        Ok(())
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = match ObsFlags::from_args(&mut args) {
        Ok(obs) => obs,
        Err(e) => {
            lacr::obs::diag!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = obs.install() {
        lacr::obs::diag!("error: {e}");
        return ExitCode::FAILURE;
    }
    let result = match args
        .first()
        .and_then(|name| COMMANDS.iter().find(|c| c.name == name.as_str()))
    {
        Some(command) => (command.run)(&args[1..]),
        None => {
            print_usage();
            return ExitCode::from(2);
        }
    };
    // Flush the sinks (writing the JSONL summary line and the Chrome
    // trace, if any), then render the aggregate report as asked.
    let obs_report = lacr::obs::finish();
    if obs.report {
        match &obs_report {
            Some(r) => print!("{}", r.self_time_table()),
            None => eprintln!("--report: no observability data collected"),
        }
    }
    if let Some(path) = &obs.report_json {
        match &obs_report {
            Some(r) => {
                if let Some(parent) = std::path::Path::new(path).parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                if let Err(e) = std::fs::write(path, r.ranked_json() + "\n") {
                    lacr::obs::diag!("--report-json: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            None => eprintln!("--report-json: no observability data collected"),
        }
    }
    match result {
        Ok(degradations) if degradations.is_empty() => ExitCode::SUCCESS,
        Ok(degradations) => {
            lacr::obs::diag!("plan is degraded:");
            for d in &degradations {
                lacr::obs::diag!("  {d}");
            }
            if let Some(path) = lacr::obs::flight::dump("degraded exit (3)") {
                lacr::obs::diag!("flight recorder dumped to {}", path.display());
            }
            ExitCode::from(3)
        }
        Err(e) => {
            lacr::obs::diag!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Success carries the degradation notes of the run (empty → exit 0,
/// otherwise they are printed and the process exits 3).
type CliResult = Result<Vec<Degradation>, Box<dyn std::error::Error>>;

/// One dispatched subcommand: its name, its usage lines, its handler.
/// Dispatch and the usage text are generated from this one table, so a
/// subcommand can never be runnable but undocumented (tests/cli.rs
/// audits the rendered usage against the table's names).
struct Command {
    name: &'static str,
    usage: &'static [&'static str],
    run: fn(&[String]) -> CliResult,
}

const COMMANDS: &[Command] = &[
    Command {
        name: "list",
        usage: &["list                        available benchmark circuits"],
        run: |_| cmd_list(),
    },
    Command {
        name: "plan",
        usage: &[
            "plan <circuit|file.bench> [--budget-ms N]",
            "                            run the planner on one circuit",
        ],
        run: cmd_plan,
    },
    // `run` is the canonical observability entry point; it plans one
    // circuit exactly like `plan` (kept as an alias for scripts).
    Command {
        name: "run",
        usage: &[
            "run <circuit|file.bench> [--budget-ms N]",
            "                            alias of plan",
        ],
        run: cmd_plan,
    },
    Command {
        name: "table1",
        usage: &["table1 [circuit ...]        regenerate the paper's Table 1"],
        run: cmd_table1,
    },
    Command {
        name: "fig2",
        usage: &["fig2 <circuit> [out.svg]    render the tile graph"],
        run: |args| {
            cmd_fig2(
                args.first().map(String::as_str),
                args.get(1).map(String::as_str),
            )
        },
    },
    Command {
        name: "retime",
        usage: &["retime <in.bench> <out.bench> [period_ps]"],
        run: cmd_retime,
    },
    Command {
        name: "compare",
        usage: &["compare <base.json> <current.json> [--no-wall] [--subset] [--json <out>]"],
        run: cmd_compare,
    },
    Command {
        name: "serve",
        usage: &[
            "serve [--workers N] [--queue-cap N] [--default-budget-ms N]",
            "      [--max-line-bytes N] [--socket <path>] [--stats-interval-ms N]",
            "      [--cache-entries N] [--cache-bytes N] [--max-connections N]",
            "                            daemon: line-JSON requests on stdin/socket,",
            "                            one JSON response line per request;",
            "                            all connections share one pool + plan cache",
        ],
        run: cmd_serve,
    },
];

fn print_usage() {
    let names: Vec<&str> = COMMANDS.iter().map(|c| c.name).collect();
    eprintln!("usage: lacr <{}> [args]", names.join("|"));
    for command in COMMANDS {
        for line in command.usage {
            eprintln!("  {line}");
        }
    }
    eprintln!(
        "global flags: --trace --metrics-out <path> --trace-chrome <path> --report \
         --report-json <path> --quiet --threads <n> --flight-recorder-out <path>"
    );
    eprintln!("exit codes: 0 ok, 1 error, 2 usage, 3 degraded plan");
}

fn load_circuit(spec: &str) -> Result<Circuit, Box<dyn std::error::Error>> {
    if spec.ends_with(".bench") {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
        let name = std::path::Path::new(spec)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("netlist")
            .to_string();
        let c = bench_format::parse(&name, &text).map_err(|e| format!("{spec}: {e}"))?;
        let problems = c.validate();
        if !problems.is_empty() {
            return Err(format!("{spec}: invalid netlist: {}", problems.join("; ")).into());
        }
        Ok(c)
    } else {
        Ok(bench89::generate(spec)?)
    }
}

fn cmd_list() -> CliResult {
    println!("synthetic ISCAS89-class circuits (lacr-netlist::bench89):");
    for name in bench89::suite() {
        let c = bench89::generate(name)?;
        let s = CircuitStats::compute(&c);
        println!(
            "  {name:<7} {:>5} units  {:>4} flops  {:>3} PI  {:>3} PO",
            s.logic_units, s.flops, s.inputs, s.outputs
        );
    }
    println!("(any .bench file path is also accepted by `plan` and `retime`)");
    println!("(for many plans in one process, see `lacr serve` — line-JSON daemon mode)");
    Ok(Vec::new())
}

/// Parses a serve limit flag where `0` is a meaningful setting
/// (disable the cache / lift the connection cap), unlike the sizing
/// flags that must stay positive.
fn next_limit<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<usize, Box<dyn std::error::Error>> {
    Ok(it
        .next()
        .ok_or_else(|| format!("{flag} needs a value (0 disables)"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))?)
}

/// `lacr serve`: the long-lived planning daemon (see `lacr::serve`).
/// Per-request outcomes travel in-band as response lines; the process
/// itself exits 0 on a graceful shutdown (EOF, shutdown command, or
/// SIGINT/SIGTERM) and 1 only on a transport-level I/O failure.
fn cmd_serve(args: &[String]) -> CliResult {
    let mut config = ServeConfig::default();
    let mut socket: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        // Sizes that must be positive (a zero pool or line bound is
        // never meaningful)…
        let mut next_usize = |flag: &str| -> Result<usize, Box<dyn std::error::Error>> {
            let v: usize = it
                .next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .parse()
                .map_err(|e| format!("{flag}: {e}"))?;
            if v == 0 {
                return Err(format!("{flag} must be at least 1").into());
            }
            Ok(v)
        };
        // …versus limits where 0 is a valid setting (cache disabled,
        // unlimited connections).
        match a.as_str() {
            "--workers" => config.workers = next_usize("--workers")?,
            "--queue-cap" => config.queue_capacity = next_usize("--queue-cap")?,
            "--max-line-bytes" => config.max_line_bytes = next_usize("--max-line-bytes")?,
            "--cache-entries" => config.cache_entries = next_limit(&mut it, "--cache-entries")?,
            "--cache-bytes" => config.cache_bytes = next_limit(&mut it, "--cache-bytes")?,
            "--max-connections" => {
                config.max_connections = next_limit(&mut it, "--max-connections")?;
            }
            "--default-budget-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--default-budget-ms needs a value in milliseconds")?
                    .parse()
                    .map_err(|e| format!("--default-budget-ms: {e}"))?;
                config.default_budget_ms = Some(ms);
            }
            "--stats-interval-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--stats-interval-ms needs a value in milliseconds")?
                    .parse()
                    .map_err(|e| format!("--stats-interval-ms: {e}"))?;
                if ms == 0 {
                    return Err("--stats-interval-ms must be at least 1".into());
                }
                config.stats_interval_ms = Some(ms);
            }
            "--socket" => socket = Some(it.next().ok_or("--socket needs a path")?.clone()),
            other => return Err(format!("serve: unexpected argument {other:?}").into()),
        }
    }
    lacr::serve::install_signal_handlers();
    match socket {
        Some(path) => lacr::serve::serve_unix_socket(&config, std::path::Path::new(&path))?,
        None => {
            lacr::serve::serve(
                &config,
                std::io::BufReader::new(std::io::stdin()),
                std::io::stdout(),
            )?;
        }
    }
    Ok(Vec::new())
}

/// Parses `plan` arguments: a circuit spec plus an optional
/// `--budget-ms N` wall-clock budget.
fn parse_plan_args(args: &[String]) -> Result<(String, Budget), Box<dyn std::error::Error>> {
    let mut spec: Option<String> = None;
    let mut budget = Budget::unlimited();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--budget-ms" {
            let ms: u64 = it
                .next()
                .ok_or("--budget-ms needs a value in milliseconds")?
                .parse()
                .map_err(|e| format!("--budget-ms: {e}"))?;
            budget = Budget::with_timeout(Duration::from_millis(ms));
        } else if spec.is_none() {
            spec = Some(a.clone());
        } else {
            return Err(format!("unexpected argument {a:?}").into());
        }
    }
    Ok((
        spec.ok_or("plan needs a circuit name or .bench path")?,
        budget,
    ))
}

fn cmd_plan(args: &[String]) -> CliResult {
    let (spec, budget) = parse_plan_args(args)?;
    let config = PlannerConfig {
        budget,
        ..PlannerConfig::default()
    };
    if spec.ends_with(".bench") {
        let circuit = load_circuit(&spec)?;
        let plan = try_build_physical_plan(&circuit, &config, &[])?;
        let report = try_plan_retimings(&plan, &config)?;
        // The shared summary renderer — `lacr serve` embeds the same
        // lines in its responses, byte for byte.
        let summary = summarize(circuit.name(), &plan, &report);
        for line in summary.text_lines() {
            println!("{line}");
        }
        Ok(summary.degradations)
    } else {
        let circuit = bench89::generate(&spec)?;
        let plan = try_build_physical_plan(&circuit, &config, &[])?;
        let report = try_plan_retimings(&plan, &config)?;
        let mut notes = plan.degradations.clone();
        notes.extend(report.degradations.iter().cloned());
        if notes.is_empty() {
            // Pristine run: print the paper-style table row (which
            // re-plans internally with the same deterministic seed).
            let row = run_circuit(&spec, &config)?;
            println!("{}", format_table(std::slice::from_ref(&row)));
        } else {
            println!(
                "{}: T_init {:.2} ns, T_clk {:.2} ns, LAC N_FOA {} ({} rounds)",
                circuit.name(),
                plan.t_init as f64 / 1000.0,
                plan.t_clk as f64 / 1000.0,
                report.lac.result.n_foa,
                report.lac.result.n_wr
            );
        }
        Ok(notes)
    }
}

/// `lacr compare`: the in-CLI face of the `bench_compare` regression
/// gate. A failing gate is an ordinary error (exit 1).
fn cmd_compare(args: &[String]) -> CliResult {
    match lacr::bench::compare::cli_main(args) {
        Ok(true) => Ok(Vec::new()),
        Ok(false) => Err("benchmark regression detected (see table above)".into()),
        Err(e) => Err(e.into()),
    }
}

fn cmd_table1(circuits: &[String]) -> CliResult {
    let mut config = ExperimentConfig::default();
    if !circuits.is_empty() {
        config.circuits = circuits.to_vec();
    }
    let rows = run_experiment(&config);
    println!("{}", format_table(&rows));
    Ok(Vec::new())
}

fn cmd_fig2(spec: Option<&str>, out: Option<&str>) -> CliResult {
    let spec = spec.ok_or("fig2 needs a circuit name")?;
    let circuit = load_circuit(spec)?;
    let config = PlannerConfig::default();
    let plan = try_build_physical_plan(&circuit, &config, &[])?;
    println!("{}", tile_ascii(&plan));
    println!("{}", tile_ascii_legend(&plan));
    let mut notes = plan.degradations.clone();
    if let Some(path) = out {
        let report = try_plan_retimings(&plan, &config)?;
        std::fs::write(path, tile_svg(&plan, Some(&report.lac.result.occupancy)))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
        notes.extend(report.degradations.iter().cloned());
    }
    Ok(notes)
}

fn cmd_retime(args: &[String]) -> CliResult {
    let input = args.first().ok_or("retime needs an input .bench path")?;
    let output = args.get(1).ok_or("retime needs an output .bench path")?;
    let circuit = load_circuit(input)?;
    let config = PlannerConfig::default();
    let plan = try_build_physical_plan(&circuit, &config, &[])?;
    let target: u64 = match args.get(2) {
        Some(t) => t.parse()?,
        None => plan.t_clk,
    };
    if target < plan.t_min {
        return Err(format!(
            "target {target} ps below the minimum feasible period {} ps",
            plan.t_min
        )
        .into());
    }
    let report = try_plan_retimings_at(&plan, &config, target)?;
    let retimed =
        try_retimed_circuit(&circuit, &plan.expanded, &report.lac.result.outcome.weights)?;
    std::fs::write(output, bench_format::write(&retimed))
        .map_err(|e| format!("cannot write {output}: {e}"))?;
    println!(
        "retimed {} at {:.2} ns: {} flip-flops ({} in wires), {} area violations; wrote {output}",
        circuit.name(),
        target as f64 / 1000.0,
        report.lac.result.n_f,
        report.lac.result.n_fn,
        report.lac.result.n_foa
    );
    let mut notes = plan.degradations.clone();
    notes.extend(report.degradations.iter().cloned());
    Ok(notes)
}
