//! Deterministic scoped parallelism for the planning pipeline.
//!
//! The pipeline's hot kernels (per-source W/D Dijkstras, per-net routing,
//! annealer restarts, test-case fan-out) are index-parallel: item `i`'s
//! result depends only on item `i` and on state frozen before the region
//! starts. [`Region::map_indexed`] runs such a map across a scoped worker
//! pool and returns the results **in input order, bit-identical to the
//! sequential path at any thread count**:
//!
//! * work is claimed in fixed-size chunks off one atomic cursor, so
//!   scheduling varies run to run — but each worker tags results with
//!   their input index and the merge sorts by that unique key, so the
//!   caller never observes scheduling order;
//! * the item function receives no shared mutable state; per-worker
//!   scratch comes from an `init` closure ([`Region::map_indexed_with`]),
//!   mirroring the scratch-buffer reuse of the sequential loops;
//! * with one effective thread the region runs inline on the caller's
//!   stack — no pool, no atomics, byte-for-byte the sequential code path.
//!
//! Thread-count resolution, strongest first: [`set_threads`] (the CLI's
//! `--threads`), the `LACR_THREADS` environment variable, then
//! [`std::thread::available_parallelism`]. A region whose
//! [`deadline`](Region::deadline) has expired runs inline: once the
//! planner's `Budget` latch trips, no new worker threads are spawned and
//! the degraded path stays single-threaded and deterministic.
//!
//! Every region emits a `par.region` span plus the `par.tasks` /
//! `par.steal` counter pair (items executed / chunks claimed beyond each
//! worker's first).
//!
//! # Examples
//!
//! ```
//! use lacr_par::Region;
//!
//! let squares = Region::new("docs.squares").map_indexed(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub mod pool;
pub use pool::{Pool, PoolStats, SubmitError};

/// Process-wide override installed by the CLI's `--threads` flag.
/// Zero means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached `LACR_THREADS` / `available_parallelism` resolution.
static THREAD_DEFAULT: OnceLock<usize> = OnceLock::new();

/// Installs a process-wide thread-count override (the CLI's `--threads`).
/// A value of 0 clears the override, falling back to `LACR_THREADS` or
/// the machine's available parallelism.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The maximum number of worker threads a region may use: the
/// [`set_threads`] override if installed, else `LACR_THREADS` if set to a
/// positive integer, else [`std::thread::available_parallelism`].
pub fn max_threads() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    *THREAD_DEFAULT.get_or_init(|| {
        match std::env::var("LACR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    })
}

/// A named parallel region: a label for observability plus the budget
/// deadline the region honors before spawning workers.
#[derive(Debug, Clone, Copy)]
pub struct Region<'a> {
    name: &'a str,
    deadline: Option<Instant>,
}

impl<'a> Region<'a> {
    /// A region with no deadline.
    pub fn new(name: &'a str) -> Self {
        Self {
            name,
            deadline: None,
        }
    }

    /// Attaches the planner budget's deadline: once it has expired the
    /// region runs inline on the calling thread (the sticky-latch
    /// degradation contract — an expired budget never fans out).
    pub fn deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Worker count for `items` work items: capped by [`max_threads`],
    /// never more than one thread per item, and 1 once the deadline has
    /// expired.
    pub fn effective_threads(&self, items: usize) -> usize {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return 1;
            }
        }
        max_threads().min(items).max(1)
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// `f` must be a pure function of its index and item (plus state
    /// frozen before the call) — that is what makes the output
    /// thread-count invariant.
    pub fn map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_indexed_with(items, || (), move |(), i, item| f(i, item))
    }

    /// Like [`map_indexed`](Self::map_indexed), with per-worker scratch
    /// state: each worker calls `init` once and threads the value through
    /// its items, so sequential scratch-buffer reuse survives
    /// parallelisation. `f` must leave no observable state in the scratch
    /// between items (results must not depend on which items shared a
    /// worker).
    pub fn map_indexed_with<S, T, R, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let n = items.len();
        let threads = self.effective_threads(n);
        let _span = lacr_obs::span!(
            "par.region",
            region = self.name,
            items = n,
            threads = threads
        );
        lacr_obs::counter!("par.tasks", n as u64);
        if threads <= 1 {
            let mut state = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(&mut state, i, item))
                .collect();
        }
        // Chunked self-scheduling off one shared cursor: small enough
        // chunks to balance uneven items, large enough to keep the cursor
        // cold. Results carry their input index; the merge below restores
        // input order exactly.
        let chunk = (n / (threads * 8)).max(1);
        let cursor = AtomicUsize::new(0);
        // Carry the caller's request scope (if any) onto every worker so
        // spans and counters from the fan-out stay attributed to it.
        let obs_scope = lacr_obs::scope::current();
        let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let _scope_guard = obs_scope.as_ref().map(|s| s.attach());
                        // Snapshot the worker's allocation counters so the
                        // fan-out's memory can be credited to the caller's
                        // open `par.region` span after the join.
                        let mem_mark = lacr_obs::mem::thread_mark();
                        let mut state = init();
                        let mut local: Vec<(usize, R)> = Vec::new();
                        let mut claims = 0_u64;
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            claims += 1;
                            for (i, item) in items
                                .iter()
                                .enumerate()
                                .take((start + chunk).min(n))
                                .skip(start)
                            {
                                local.push((i, f(&mut state, i, item)));
                            }
                        }
                        let mem = mem_mark.delta();
                        (local, claims, mem)
                    })
                })
                .collect();
            let mut all: Vec<(usize, R)> = Vec::with_capacity(n);
            let mut steals = 0_u64;
            let mut mem = lacr_obs::MemDelta::default();
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                match h.join() {
                    Ok((local, claims, worker_mem)) => {
                        steals += claims.saturating_sub(1);
                        mem.add(&worker_mem);
                        all.extend(local);
                    }
                    Err(e) => panic = Some(e),
                }
            }
            if let Some(e) = panic {
                // Propagate the worker panic on the caller's thread, as
                // the sequential loop would have.
                std::panic::resume_unwind(e);
            }
            lacr_obs::counter!("par.steal", steals);
            // Credit the workers' allocations to the still-open
            // `par.region` span — without this, fan-out memory would
            // vanish from the caller thread's attribution entirely.
            lacr_obs::mem::credit_foreign(&mem);
            all
        });
        indexed.sort_unstable_by_key(|&(i, _)| i);
        debug_assert!(indexed.iter().enumerate().all(|(k, &(i, _))| k == i));
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// Index-only variant: runs `f(0..n)` and collects in index order.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let indices: Vec<usize> = (0..n).collect();
        self.map_indexed(&indices, |_, &i| f(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Runs `f` under a temporary thread override, restoring the previous
    /// override afterwards. Tests in this crate are the only callers of
    /// `set_threads`, and each test serialises its own override changes.
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.load(Ordering::Relaxed);
        set_threads(n);
        let r = f();
        set_threads(prev);
        r
    }

    #[test]
    fn results_arrive_in_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 32] {
            let got = with_threads(threads, || {
                Region::new("test.square").map_indexed(&items, |_, &x| x * x + 1)
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_items_still_merge_in_order() {
        // Make late indices cheap and early ones expensive so workers
        // finish out of order.
        let items: Vec<u64> = (0..64).collect();
        let got = with_threads(4, || {
            Region::new("test.uneven").map_indexed(&items, |i, &x| {
                let mut acc = x;
                for _ in 0..(64 - i) * 1000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                (i as u64, acc)
            })
        });
        let seq: Vec<(u64, u64)> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let mut acc = x;
                for _ in 0..(64 - i) * 1000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                (i as u64, acc)
            })
            .collect();
        assert_eq!(got, seq);
    }

    #[test]
    fn per_worker_state_is_initialised_per_worker() {
        // The scratch is a counter; every item sees a value < items-len,
        // and the total number of init calls is at most the thread count.
        let inits = AtomicU64::new(0);
        let items: Vec<u32> = (0..100).collect();
        let got = with_threads(4, || {
            Region::new("test.state").map_indexed_with(
                &items,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<u32>::new()
                },
                |scratch, _, &x| {
                    scratch.push(x);
                    x
                },
            )
        });
        assert_eq!(got, items);
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u8> = Region::new("test.empty").map_indexed(&[] as &[u8], |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn expired_deadline_runs_inline() {
        let region = Region::new("test.deadline").deadline(Some(Instant::now()));
        assert_eq!(region.effective_threads(1024), 1);
        // And still produces correct results.
        let got = region.map_indexed(&[1u8, 2, 3], |_, &x| x + 1);
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn run_indexed_matches_map() {
        let got = with_threads(3, || Region::new("test.run").run_indexed(10, |i| i * 7));
        assert_eq!(got, (0..10).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..50).collect();
        let r = std::panic::catch_unwind(|| {
            with_threads(2, || {
                Region::new("test.panic").map_indexed(&items, |_, &x| {
                    assert!(x != 25, "boom");
                    x
                })
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn region_workers_record_into_the_callers_scope() {
        let scope = lacr_obs::scope::Scope::new("par-test");
        let items: Vec<u64> = (0..64).collect();
        let got = with_threads(4, || {
            let _g = scope.attach();
            Region::new("test.scoped").map_indexed(&items, |_, &x| {
                lacr_obs::counter!("par.scope.items", 1_u64);
                x
            })
        });
        assert_eq!(got, items);
        // Every worker thread saw the attached scope, so all 64 item
        // ticks (plus the region's own par.tasks) landed in it.
        assert_eq!(scope.report().counter("par.scope.items"), Some(64));
        assert_eq!(scope.report().counter("par.tasks"), Some(64));
        assert!(scope.report().span("par.region").is_some());
    }

    #[test]
    fn fan_out_memory_is_credited_to_the_region_span() {
        // Satellite: Σ per-task allocation deltas must show up in the
        // global allocator counters and in the `par.region` span's memory
        // attribution. Strict equality is impossible here — other cargo
        // test threads allocate concurrently — so the assertions are
        // one-sided: the global delta and the span's attributed allocs
        // must both be at least the work we forced.
        const ITEMS: usize = 64;
        const BYTES_PER_ITEM: usize = 1 << 14; // 16 KiB
        let scope = lacr_obs::scope::Scope::new("par-mem-test");
        let before = lacr_obs::mem::stats();
        let items: Vec<u64> = (0..ITEMS as u64).collect();
        let got = with_threads(4, || {
            let _g = scope.attach();
            Region::new("test.mem").map_indexed(&items, |_, &x| {
                let buf = vec![x as u8; BYTES_PER_ITEM];
                buf.iter().map(|&b| b as u64).sum::<u64>()
            })
        });
        assert_eq!(got.len(), ITEMS);
        let after = lacr_obs::mem::stats();
        // Global counters saw every per-task allocation (≥: concurrent
        // test threads only add to the delta, never subtract).
        assert!(
            after.allocs - before.allocs >= ITEMS as u64,
            "global allocs delta {} < {ITEMS}",
            after.allocs - before.allocs
        );
        // The workers' deltas were credited to the region span while it
        // was still open, so its attribution carries the fan-out's
        // allocation count and byte volume.
        let span = scope.report().span("par.region").expect("region span");
        assert!(
            span.allocs >= ITEMS as u64,
            "span allocs {} < {ITEMS}",
            span.allocs
        );
        assert!(span.peak_bytes >= span.self_bytes.max(0) as u64);
    }

    #[test]
    fn effective_threads_caps_at_item_count() {
        with_threads(16, || {
            assert_eq!(Region::new("test.cap").effective_threads(3), 3);
            assert_eq!(Region::new("test.cap").effective_threads(0), 1);
        });
    }
}
