//! A bounded job pool for long-lived services.
//!
//! [`Region`](crate::Region) covers the pipeline's fork/join kernels:
//! spawn, map, merge, return. A daemon needs the opposite shape — a
//! fixed set of resident workers fed from a **bounded** queue, where
//! submission is non-blocking and a full queue is an explicit,
//! load-sheddable outcome rather than unbounded memory growth. [`Pool`]
//! is that primitive:
//!
//! * **admission control** — [`Pool::submit`] never blocks; when the
//!   queue is at capacity it returns [`SubmitError::Overloaded`] with
//!   the queue depth, so callers can shed with a structured rejection;
//! * **fault isolation** — every job runs under `catch_unwind`, so a
//!   panicking job is counted (`pool.panics`) and its worker survives
//!   to take the next job. Jobs that must report a panic outcome do
//!   their own `catch_unwind` inside the job; the pool's is a backstop;
//! * **graceful drain** — [`Pool::close_and_drain`] stops admission,
//!   lets workers finish everything already queued, and joins them.
//!
//! Ordering: jobs start in submission order (one shared FIFO), but
//! completion order is up to job durations — callers that need ordered
//! output must sequence results themselves (the serve loop tags
//! responses with request ids instead).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    /// Closed queues reject new jobs; workers exit once drained.
    closed: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signals workers that a job arrived or the queue closed.
    ready: Condvar,
    capacity: usize,
}

/// A fixed-size worker pool over a bounded FIFO queue. See the module
/// docs for the admission / isolation / drain contract.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    name: &'static str,
}

/// Why a [`Pool::submit`] was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; the job was dropped without running.
    /// Carries the depth observed and the configured capacity so the
    /// caller can report how overloaded the pool was.
    Overloaded { queued: usize, capacity: usize },
    /// The pool is closed (draining or drained); no new jobs run.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overloaded { queued, capacity } => {
                write!(f, "pool overloaded ({queued}/{capacity} queued)")
            }
            Self::Closed => write!(f, "pool closed"),
        }
    }
}

impl Pool {
    /// Starts `workers` resident threads with a queue bounded at
    /// `queue_capacity` pending jobs (jobs already running don't count
    /// against the bound). Both are clamped to at least 1.
    pub fn new(name: &'static str, workers: usize, queue_capacity: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: queue_capacity.max(1),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(handles),
            name,
        }
    }

    /// The configured queue capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Jobs currently waiting (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Enqueues a job without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is at capacity (the
    /// job is dropped — shed it), [`SubmitError::Closed`] after
    /// [`close_and_drain`](Self::close_and_drain).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        {
            let mut q = self.lock();
            if q.closed {
                return Err(SubmitError::Closed);
            }
            if q.jobs.len() >= self.shared.capacity {
                return Err(SubmitError::Overloaded {
                    queued: q.jobs.len(),
                    capacity: self.shared.capacity,
                });
            }
            q.jobs.push_back(Box::new(job));
        }
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Stops admission, runs every already-queued job to completion,
    /// and joins the workers. Idempotent; takes `&self` so an
    /// `Arc<Pool>` shared with producers can still be drained.
    pub fn close_and_drain(&self) {
        self.lock().closed = true;
        self.shared.ready.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            if h.join().is_err() {
                // Worker loops catch job panics; a panic here is a pool
                // bug, but drain must still not propagate it.
                eprintln!("[lacr] {}: worker thread panicked", self.name);
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Queue> {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.close_and_drain();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.closed {
                    return;
                }
                q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        // Isolation backstop: a panicking job must not take its worker
        // (and with it, a slot of the pool) down.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            lacr_obs::counter!("pool.panics", 1_u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_drain_completes() {
        let pool = Pool::new("t-basic", 3, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .expect("submit");
        }
        pool.close_and_drain();
        assert_eq!(done.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let pool = Pool::new("t-full", 1, 2);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // One job occupies the single worker until released...
        pool.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .expect("blocker");
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("worker picked up blocker");
        // ...so these two fill the queue...
        pool.submit(|| {}).expect("fits");
        pool.submit(|| {}).expect("fits");
        // ...and the next is shed with the observed depth.
        match pool.submit(|| {}) {
            Err(SubmitError::Overloaded { queued, capacity }) => {
                assert_eq!((queued, capacity), (2, 2));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        block_tx.send(()).unwrap();
        pool.close_and_drain();
    }

    #[test]
    fn panicking_job_does_not_kill_its_worker() {
        let pool = Pool::new("t-panic", 1, 16);
        let done = Arc::new(AtomicUsize::new(0));
        pool.submit(|| panic!("injected"))
            .expect("submit panic job");
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.fetch_add(1, Ordering::Relaxed);
        })
        .expect("submit after panic");
        pool.close_and_drain();
        // The single worker survived the panic and ran the second job.
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn closed_pool_rejects_and_drain_is_idempotent() {
        let pool = Pool::new("t-closed", 2, 8);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.fetch_add(1, Ordering::Relaxed);
        })
        .expect("submit");
        pool.close_and_drain();
        assert_eq!(pool.submit(|| {}), Err(SubmitError::Closed));
        pool.close_and_drain(); // idempotent
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drain_runs_every_queued_job() {
        let pool = Pool::new("t-drain", 2, 256);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                std::thread::sleep(Duration::from_micros(50));
                done.fetch_add(1, Ordering::Relaxed);
            })
            .expect("submit");
        }
        pool.close_and_drain();
        assert_eq!(done.load(Ordering::Relaxed), 200);
    }
}
