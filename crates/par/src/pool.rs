//! A bounded job pool for long-lived services.
//!
//! [`Region`](crate::Region) covers the pipeline's fork/join kernels:
//! spawn, map, merge, return. A daemon needs the opposite shape — a
//! fixed set of resident workers fed from a **bounded** queue, where
//! submission is non-blocking and a full queue is an explicit,
//! load-sheddable outcome rather than unbounded memory growth. [`Pool`]
//! is that primitive:
//!
//! * **admission control** — [`Pool::submit`] never blocks; when the
//!   queue is at capacity it returns [`SubmitError::Overloaded`] with
//!   the queue depth, so callers can shed with a structured rejection;
//! * **fault isolation** — every job runs under `catch_unwind`, so a
//!   panicking job is counted (`pool.panics`) and its worker survives
//!   to take the next job. Jobs that must report a panic outcome do
//!   their own `catch_unwind` inside the job; the pool's is a backstop;
//! * **graceful drain** — [`Pool::close_and_drain`] stops admission,
//!   lets workers finish everything already queued, and joins them.
//!
//! Ordering: jobs start in submission order (one shared FIFO), but
//! completion order is up to job durations — callers that need ordered
//! output must sequence results themselves (the serve loop tags
//! responses with request ids instead).
//!
//! **Sharing.** Every method takes `&self`, so one `Arc<Pool>` can be
//! fed by any number of submitter threads concurrently — this is the
//! backbone of `lacr serve`'s socket mode, where all connection
//! readers submit into a single daemon-wide pool and `workers` /
//! `capacity` stay global invariants no matter how many clients are
//! connected. `close_and_drain` is idempotent and safe to call while
//! other threads are still submitting: they get
//! [`SubmitError::Closed`] and shed.
//!
//! **Telemetry.** The pool is the daemon's load-bearing wall, so it is
//! instrumented at every edge: submit, start, finish, shed. Two views
//! are maintained simultaneously:
//!
//! * **always-on atomics + sliding windows**, readable via
//!   [`Pool::stats`] / [`Pool::queue_wait`] / [`Pool::service`] even
//!   when no collector is installed — this is what `{"cmd":"stats"}`
//!   snapshots on a live daemon. The windows (one-minute rolling
//!   queue-wait and service-time histograms) are bounded memory; the
//!   rest is a handful of relaxed atomics per job.
//! * **lacr-obs gauges/counters/histograms** (`pool.queue_depth`,
//!   `pool.inflight`, `pool.shed_total`, `pool.completed_total`,
//!   `pool.panics`, `pool.queue_wait_us`, `pool.service_us`), emitted
//!   through the usual `recording()` gate so `--metrics-out` /
//!   `--trace-chrome` streams see the pool breathing, at zero cost when
//!   nothing is collecting.

use lacr_obs::window::{SlidingWindow, WindowSnapshot};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Rolling-window shape for the latency views: 12 × 5s = one minute.
const WINDOW_BUCKETS: usize = 12;
const WINDOW_BUCKET_WIDTH: Duration = Duration::from_secs(5);

struct Queue {
    /// Pending jobs with their enqueue instant (queue-wait epoch).
    jobs: VecDeque<(Instant, Job)>,
    /// Closed queues reject new jobs; workers exit once drained.
    closed: bool,
}

/// The always-on half of the pool's telemetry (see the module docs).
struct Telemetry {
    /// Jobs currently executing on a worker.
    inflight: AtomicUsize,
    /// Submissions rejected with [`SubmitError::Overloaded`].
    shed_total: AtomicU64,
    /// Jobs run to completion (panicked jobs included — they occupied
    /// a worker and were answered; `panics` counts them separately).
    completed_total: AtomicU64,
    /// Jobs whose panic the worker backstop caught.
    panics: AtomicU64,
    /// Rolling submit→start latency (µs).
    queue_wait_us: SlidingWindow,
    /// Rolling start→finish latency (µs).
    service_us: SlidingWindow,
}

impl Telemetry {
    fn new() -> Self {
        Self {
            inflight: AtomicUsize::new(0),
            shed_total: AtomicU64::new(0),
            completed_total: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            queue_wait_us: SlidingWindow::new(WINDOW_BUCKETS, WINDOW_BUCKET_WIDTH),
            service_us: SlidingWindow::new(WINDOW_BUCKETS, WINDOW_BUCKET_WIDTH),
        }
    }
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signals workers that a job arrived or the queue closed.
    ready: Condvar,
    capacity: usize,
    telemetry: Telemetry,
}

/// A point-in-time view of the pool's gauges and counters, readable
/// without any collector installed. Gauges (`queued`, `inflight`) are
/// instantaneous and can change the moment the snapshot returns;
/// counters (`shed_total`, `completed_total`, `panics`) are monotone
/// over the pool's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Resident worker threads.
    pub workers: usize,
    /// Configured queue bound.
    pub capacity: usize,
    /// Jobs waiting in the queue right now.
    pub queued: usize,
    /// Jobs executing right now.
    pub inflight: usize,
    /// Submissions shed with `Overloaded` since startup.
    pub shed_total: u64,
    /// Jobs finished since startup.
    pub completed_total: u64,
    /// Panicking jobs caught by the worker backstop since startup.
    pub panics: u64,
}

/// A fixed-size worker pool over a bounded FIFO queue. See the module
/// docs for the admission / isolation / drain contract.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    worker_count: usize,
    name: &'static str,
}

/// Why a [`Pool::submit`] was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; the job was dropped without running.
    /// Carries the depth observed and the configured capacity so the
    /// caller can report how overloaded the pool was.
    Overloaded { queued: usize, capacity: usize },
    /// The pool is closed (draining or drained); no new jobs run.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overloaded { queued, capacity } => {
                write!(f, "pool overloaded ({queued}/{capacity} queued)")
            }
            Self::Closed => write!(f, "pool closed"),
        }
    }
}

impl Pool {
    /// Starts `workers` resident threads with a queue bounded at
    /// `queue_capacity` pending jobs (jobs already running don't count
    /// against the bound). Both are clamped to at least 1.
    pub fn new(name: &'static str, workers: usize, queue_capacity: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: queue_capacity.max(1),
            telemetry: Telemetry::new(),
        });
        let worker_count = workers.max(1);
        let handles = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(handles),
            worker_count,
            name,
        }
    }

    /// The configured queue capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Jobs currently waiting (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.lock().jobs.len()
    }

    /// A consistent-enough snapshot of the pool's live telemetry (see
    /// [`PoolStats`] for the gauge-vs-counter semantics). Never blocks
    /// on running jobs — one queue lock, then relaxed atomic loads.
    pub fn stats(&self) -> PoolStats {
        let t = &self.shared.telemetry;
        PoolStats {
            workers: self.worker_count,
            capacity: self.shared.capacity,
            queued: self.queued(),
            inflight: t.inflight.load(Ordering::Relaxed),
            shed_total: t.shed_total.load(Ordering::Relaxed),
            completed_total: t.completed_total.load(Ordering::Relaxed),
            panics: t.panics.load(Ordering::Relaxed),
        }
    }

    /// The rolling submit→start latency view (µs over the last minute).
    pub fn queue_wait(&self) -> WindowSnapshot {
        self.shared.telemetry.queue_wait_us.snapshot()
    }

    /// The rolling start→finish latency view (µs over the last minute).
    pub fn service(&self) -> WindowSnapshot {
        self.shared.telemetry.service_us.snapshot()
    }

    /// Enqueues a job without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is at capacity (the
    /// job is dropped — shed it), [`SubmitError::Closed`] after
    /// [`close_and_drain`](Self::close_and_drain).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let depth = {
            let mut q = self.lock();
            if q.closed {
                return Err(SubmitError::Closed);
            }
            if q.jobs.len() >= self.shared.capacity {
                let err = SubmitError::Overloaded {
                    queued: q.jobs.len(),
                    capacity: self.shared.capacity,
                };
                drop(q);
                self.shared
                    .telemetry
                    .shed_total
                    .fetch_add(1, Ordering::Relaxed);
                lacr_obs::counter!("pool.shed_total", 1_u64);
                return Err(err);
            }
            q.jobs.push_back((Instant::now(), Box::new(job)));
            q.jobs.len()
        };
        self.shared.ready.notify_one();
        lacr_obs::gauge!("pool.queue_depth", depth);
        Ok(())
    }

    /// Stops admission, runs every already-queued job to completion,
    /// and joins the workers. Idempotent; takes `&self` so an
    /// `Arc<Pool>` shared with producers can still be drained.
    pub fn close_and_drain(&self) {
        self.lock().closed = true;
        self.shared.ready.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            if h.join().is_err() {
                // Worker loops catch job panics; a panic here is a pool
                // bug, but drain must still not propagate it.
                eprintln!("[lacr] {}: worker thread panicked", self.name);
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Queue> {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.close_and_drain();
    }
}

fn worker_loop(shared: &Shared) {
    let t = &shared.telemetry;
    loop {
        let (enqueued, job, depth_after) = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some((enqueued, job)) = q.jobs.pop_front() {
                    break (enqueued, job, q.jobs.len());
                }
                if q.closed {
                    return;
                }
                q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        // Start edge: the job left the queue and occupies this worker.
        let wait_us = enqueued.elapsed().as_micros() as u64;
        t.queue_wait_us.record(wait_us);
        let inflight = t.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        lacr_obs::gauge!("pool.queue_depth", depth_after);
        lacr_obs::gauge!("pool.inflight", inflight);
        lacr_obs::histogram!("pool.queue_wait_us", wait_us);
        let started = Instant::now();
        // Isolation backstop: a panicking job must not take its worker
        // (and with it, a slot of the pool) down.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            t.panics.fetch_add(1, Ordering::Relaxed);
            lacr_obs::counter!("pool.panics", 1_u64);
        }
        // Finish edge: panicked or not, the job consumed a service slot
        // and was answered — it counts as completed.
        let service_us = started.elapsed().as_micros() as u64;
        t.service_us.record(service_us);
        let inflight = t.inflight.fetch_sub(1, Ordering::Relaxed) - 1;
        t.completed_total.fetch_add(1, Ordering::Relaxed);
        lacr_obs::gauge!("pool.inflight", inflight);
        lacr_obs::counter!("pool.completed_total", 1_u64);
        lacr_obs::histogram!("pool.service_us", service_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacr_obs::Histogram;
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_drain_completes() {
        let pool = Pool::new("t-basic", 3, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .expect("submit");
        }
        pool.close_and_drain();
        assert_eq!(done.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let pool = Pool::new("t-full", 1, 2);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // One job occupies the single worker until released...
        pool.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .expect("blocker");
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("worker picked up blocker");
        // ...so these two fill the queue...
        pool.submit(|| {}).expect("fits");
        pool.submit(|| {}).expect("fits");
        // ...and the next is shed with the observed depth.
        match pool.submit(|| {}) {
            Err(SubmitError::Overloaded { queued, capacity }) => {
                assert_eq!((queued, capacity), (2, 2));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        block_tx.send(()).unwrap();
        pool.close_and_drain();
    }

    #[test]
    fn panicking_job_does_not_kill_its_worker() {
        let pool = Pool::new("t-panic", 1, 16);
        let done = Arc::new(AtomicUsize::new(0));
        pool.submit(|| panic!("injected"))
            .expect("submit panic job");
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.fetch_add(1, Ordering::Relaxed);
        })
        .expect("submit after panic");
        pool.close_and_drain();
        // The single worker survived the panic and ran the second job.
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn closed_pool_rejects_and_drain_is_idempotent() {
        let pool = Pool::new("t-closed", 2, 8);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.fetch_add(1, Ordering::Relaxed);
        })
        .expect("submit");
        pool.close_and_drain();
        assert_eq!(pool.submit(|| {}), Err(SubmitError::Closed));
        pool.close_and_drain(); // idempotent
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stats_track_the_submit_start_finish_shed_edges() {
        let pool = Pool::new("t-stats", 2, 4);
        let s = pool.stats();
        assert_eq!((s.workers, s.capacity), (2, 4));
        assert_eq!((s.queued, s.inflight), (0, 0));
        assert_eq!((s.shed_total, s.completed_total, s.panics), (0, 0, 0));

        // Saturate: 2 blockers occupy both workers, 4 fill the queue.
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let block_rx = Arc::new(Mutex::new(block_rx));
        let (started_tx, started_rx) = mpsc::channel::<()>();
        for _ in 0..2 {
            let rx = Arc::clone(&block_rx);
            let started = started_tx.clone();
            pool.submit(move || {
                started.send(()).unwrap();
                rx.lock().unwrap().recv().unwrap();
            })
            .expect("blocker");
        }
        for _ in 0..2 {
            started_rx
                .recv_timeout(Duration::from_secs(5))
                .expect("blockers running");
        }
        for _ in 0..4 {
            pool.submit(|| {}).expect("queue has room");
        }
        assert!(pool.submit(|| {}).is_err(), "queue full");
        assert!(pool.submit(|| {}).is_err());
        let s = pool.stats();
        assert_eq!(s.inflight, 2, "both workers busy");
        assert_eq!(s.queued, 4, "queue full");
        assert_eq!(s.shed_total, 2, "two submissions shed");

        // Release and drain: everything completes, nothing in flight.
        block_tx.send(()).unwrap();
        block_tx.send(()).unwrap();
        pool.close_and_drain();
        let s = pool.stats();
        assert_eq!((s.queued, s.inflight), (0, 0), "drained");
        assert_eq!(s.completed_total, 6, "2 blockers + 4 queued");
        assert_eq!(s.shed_total, 2, "counters survive the drain");
        // Each completed job recorded one sample in each rolling window.
        assert_eq!(pool.queue_wait().count, 6);
        assert_eq!(pool.service().count, 6);
        let w = pool.service();
        assert!(w.p50 <= w.p95 && w.p95 <= w.p99);
    }

    #[test]
    fn panicking_jobs_count_as_completed_and_panicked() {
        let pool = Pool::new("t-stats-panic", 1, 8);
        pool.submit(|| panic!("injected")).expect("submit");
        pool.submit(|| {}).expect("submit");
        pool.close_and_drain();
        let s = pool.stats();
        assert_eq!(s.completed_total, 2, "panicked job still completed");
        assert_eq!(s.panics, 1);
        assert_eq!(s.inflight, 0);
    }

    #[test]
    fn pool_edges_emit_obs_metrics_when_collecting() {
        let ((), _records, report) = lacr_obs::run_captured(|| {
            let pool = Pool::new("t-stats-obs", 1, 2);
            let (block_tx, block_rx) = mpsc::channel::<()>();
            let (started_tx, started_rx) = mpsc::channel::<()>();
            pool.submit(move || {
                started_tx.send(()).unwrap();
                block_rx.recv().unwrap();
            })
            .expect("blocker");
            started_rx
                .recv_timeout(Duration::from_secs(5))
                .expect("blocker running");
            pool.submit(|| {}).expect("fits");
            pool.submit(|| {}).expect("fits");
            let _ = pool.submit(|| {}); // shed
            block_tx.send(()).unwrap();
            pool.close_and_drain();
        });
        assert_eq!(report.counter("pool.completed_total"), Some(3));
        assert_eq!(report.counter("pool.shed_total"), Some(1));
        assert_eq!(
            report.gauge("pool.inflight"),
            Some(0.0),
            "last write is the drain"
        );
        assert!(report.gauge("pool.queue_depth").is_some());
        assert_eq!(
            report.hist("pool.queue_wait_us").map(Histogram::count),
            Some(3)
        );
        assert_eq!(
            report.hist("pool.service_us").map(Histogram::count),
            Some(3)
        );
    }

    #[test]
    fn one_shared_pool_accepts_submitters_from_many_threads() {
        // The serve socket mode's shape: N connection threads submit
        // into one Arc<Pool>. Admission stays globally bounded (either
        // run or shed with a structured depth, never lost), and the
        // drain accounts for every job exactly once.
        const SUBMITTERS: usize = 8;
        const PER_THREAD: usize = 50;
        let pool = Arc::new(Pool::new("t-shared", 2, 16));
        let done = Arc::new(AtomicUsize::new(0));
        let shed = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let done = Arc::clone(&done);
                let shed = Arc::clone(&shed);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        let done = Arc::clone(&done);
                        match pool.submit(move || {
                            std::thread::sleep(Duration::from_micros(20));
                            done.fetch_add(1, Ordering::Relaxed);
                        }) {
                            Ok(()) => {}
                            Err(SubmitError::Overloaded { queued, capacity }) => {
                                assert!(queued <= capacity, "{queued} > {capacity}");
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(SubmitError::Closed) => panic!("pool closed early"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("submitter finishes");
        }
        pool.close_and_drain();
        let stats = pool.stats();
        assert_eq!(
            done.load(Ordering::Relaxed) + shed.load(Ordering::Relaxed),
            SUBMITTERS * PER_THREAD,
            "every submission either ran or shed"
        );
        assert_eq!(stats.completed_total as usize, done.load(Ordering::Relaxed));
        assert_eq!(stats.shed_total as usize, shed.load(Ordering::Relaxed));
        assert_eq!(stats.workers, 2, "worker count is a global invariant");
        assert_eq!((stats.inflight, stats.queued), (0, 0), "drained to rest");
    }

    #[test]
    fn drain_runs_every_queued_job() {
        let pool = Pool::new("t-drain", 2, 256);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                std::thread::sleep(Duration::from_micros(50));
                done.fetch_add(1, Ordering::Relaxed);
            })
            .expect("submit");
        }
        pool.close_and_drain();
        assert_eq!(done.load(Ordering::Relaxed), 200);
    }
}
