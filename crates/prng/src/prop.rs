//! A minimal property-testing driver (seeded case generation with
//! failure-seed reporting), replacing `proptest` for this workspace.
//!
//! Each property runs `cases` times. Case `i` gets a fresh [`Rng`] whose
//! seed is derived deterministically from the property *name* and `i`, so
//! every suite is reproducible and independent of test ordering. On
//! failure the panic message reports the exact replay seed; setting
//! `LACR_PROP_REPLAY=<seed>` reruns a property on just that seed, which
//! turns any red CI log into a one-case local reproduction.
//!
//! ```
//! lacr_prng::properties! {
//!     cases = 32;
//!
//!     /// Shuffling preserves the multiset of elements.
//!     fn shuffle_is_permutation(rng) {
//!         let mut v: Vec<u32> = (0..10).collect();
//!         rng.shuffle(&mut v);
//!         let mut sorted = v.clone();
//!         sorted.sort_unstable();
//!         lacr_prng::prop_assert_eq!(sorted, (0..10).collect::<Vec<u32>>());
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! (The macro expands each property into a `#[test]` function, so inside
//! a test crate the cases above run under the normal harness.)

use crate::{splitmix64, Rng};

/// Outcome of one property case; `Err` carries the failure message.
pub type CaseResult = Result<(), String>;

/// FNV-1a hash of the property name, used to give each property its own
/// seed lane.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The replay seed for case `case` of property `name`. Public so
/// external drivers (e.g. a thread-pool fan-out over cases) can derive
/// the same seed lanes as [`run_property`] and keep failure reports
/// replayable with `LACR_PROP_REPLAY`.
pub fn case_seed(name: &str, case: u64) -> u64 {
    let mut s = fnv1a(name) ^ case;
    splitmix64(&mut s)
}

/// Runs `property` on `cases` deterministic seeds, panicking with the
/// failing seed on the first falsified case.
///
/// If the environment variable `LACR_PROP_REPLAY` is set to a seed
/// (decimal or `0x…` hex), only that seed is run — the shape printed in a
/// failure report.
///
/// # Panics
///
/// Panics if the property returns `Err` for some case, or if
/// `LACR_PROP_REPLAY` is set but unparsable.
pub fn run_property(name: &str, cases: u64, mut property: impl FnMut(&mut Rng) -> CaseResult) {
    if let Ok(replay) = std::env::var("LACR_PROP_REPLAY") {
        let trimmed = replay.trim();
        let seed = match trimmed.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => trimmed.parse(),
        }
        .unwrap_or_else(|e| panic!("LACR_PROP_REPLAY={trimmed:?} is not a seed: {e}"));
        let mut rng = Rng::seed_from_u64(seed);
        if let Err(msg) = property(&mut rng) {
            panic!("property `{name}` falsified on replay seed {seed:#018x}:\n  {msg}");
        }
        return;
    }
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut rng = Rng::seed_from_u64(seed);
        if let Err(msg) = property(&mut rng) {
            panic!(
                "property `{name}` falsified on case {case}/{cases}:\n  {msg}\n  \
                 replay with: LACR_PROP_REPLAY={seed:#x} cargo test {name}"
            );
        }
    }
}

/// Declares `#[test]` functions that each run a seeded property via
/// [`run_property`]. The body receives a `&mut Rng` binding named by the
/// parameter and uses [`prop_assert!`]-style macros (which return the
/// failure instead of panicking, so the driver can attach the seed).
#[macro_export]
macro_rules! properties {
    (
        cases = $cases:expr;
        $(
            $(#[$attr:meta])*
            fn $name:ident($rng:ident) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            #[test]
            fn $name() {
                $crate::run_property(
                    stringify!($name),
                    $cases,
                    |$rng: &mut $crate::Rng| -> $crate::prop::CaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the enclosing property case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Fails the enclosing property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `{} != {}`\n    both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_across_cases_and_names() {
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u64;
        run_property("always_true", 17, |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_reports_seed() {
        run_property("always_false", 4, |_| Err("nope".to_string()));
    }
}
