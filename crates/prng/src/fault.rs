//! Seeded fault injection for robustness testing.
//!
//! [`FaultPlan`] wraps an [`Rng`] with mutators that produce *hostile*
//! inputs deterministically from a seed: corrupted `.bench` text,
//! absurd floating-point parameter values, and uniform fault-kind
//! selection. The fault-injection suite (`crates/core/tests/
//! fault_injection.rs`) drives the whole planning pipeline with these
//! and asserts that every seed yields either a clean plan or a typed
//! error — never a panic. Keeping the mutators here (next to the
//! property driver) means a failing seed printed by `properties!`
//! replays the exact same fault.

use crate::Rng;

/// Representative pathological floating-point values: zeros, negatives,
/// non-finite values, and magnitude extremes that overflow or underflow
/// derived quantities (areas, delays, capacities).
const ABSURD_F64: [f64; 9] = [
    0.0,
    -0.0,
    -1.0,
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    1e308,
    5e-324,
    -1e9,
];

/// A seeded plan of input faults. Every method consumes randomness from
/// the wrapped generator, so a `FaultPlan` built from the same seed
/// always injects the same faults in the same order.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: Rng,
}

impl FaultPlan {
    /// Builds a fault plan from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Builds a fault plan whose seed is drawn from `rng` — the usual way
    /// to get one inside a `properties!` case.
    pub fn from_rng(rng: &mut Rng) -> Self {
        Self::new(rng.next_u64())
    }

    /// Direct access to the underlying generator (for structure-level
    /// faults the text/value helpers do not cover).
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// A pathological floating-point value: zero, negative, NaN, ±∞, or a
    /// magnitude extreme.
    pub fn absurd_f64(&mut self) -> f64 {
        ABSURD_F64[self.rng.gen_range(0..ABSURD_F64.len())]
    }

    /// Either keeps `value` or replaces it with [`Self::absurd_f64`],
    /// with probability `p_fault` of injecting.
    pub fn maybe_absurd(&mut self, value: f64, p_fault: f64) -> f64 {
        if self.rng.gen_bool(p_fault) {
            self.absurd_f64()
        } else {
            value
        }
    }

    /// Applies 1–3 line-level corruptions to `text`: deleting,
    /// duplicating, truncating, or garbling lines; inserting garbage
    /// lines; switching to CRLF line endings; appending trailing garbage.
    /// The result is valid UTF-8 but usually not a valid `.bench` file.
    pub fn corrupt_text(&mut self, text: &str) -> String {
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let mut crlf = false;
        let mutations = self.rng.gen_range(1..=3usize);
        for _ in 0..mutations {
            match self.rng.gen_range(0..7u32) {
                0 if !lines.is_empty() => {
                    let i = self.rng.gen_range(0..lines.len());
                    lines.remove(i);
                }
                1 if !lines.is_empty() => {
                    let i = self.rng.gen_range(0..lines.len());
                    let dup = lines[i].clone();
                    lines.insert(i, dup);
                }
                2 if !lines.is_empty() => {
                    // Truncate a line mid-way (on a char boundary).
                    let i = self.rng.gen_range(0..lines.len());
                    let n = lines[i].chars().count();
                    if n > 1 {
                        let keep = self.rng.gen_range(0..n);
                        lines[i] = lines[i].chars().take(keep).collect();
                    }
                }
                3 if !lines.is_empty() => {
                    // Garble: strip the structural characters the parser
                    // keys on.
                    let i = self.rng.gen_range(0..lines.len());
                    let victim = *self
                        .rng
                        .choose(&['(', ')', '=', ','])
                        .expect("non-empty choices");
                    lines[i] = lines[i].replace(victim, "");
                }
                4 => {
                    let pos = self.rng.gen_range(0..=lines.len());
                    let garbage = *self
                        .rng
                        .choose(&["@@@ not bench @@@", "G999 == AND", "INPUT", "((("])
                        .expect("non-empty choices");
                    lines.insert(pos, garbage.to_string());
                }
                5 => crlf = true,
                _ => lines.push("trailing garbage here".to_string()),
            }
        }
        let sep = if crlf { "\r\n" } else { "\n" };
        let mut out = lines.join(sep);
        out.push_str(sep);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_faults() {
        let text = "INPUT(a)\nOUTPUT(z)\nz = BUF(a)\n";
        let a = FaultPlan::new(7).corrupt_text(text);
        let b = FaultPlan::new(7).corrupt_text(text);
        assert_eq!(a, b);
        assert_ne!(FaultPlan::new(7).absurd_f64().to_bits(), {
            let mut fp = FaultPlan::new(8);
            fp.rng().next_u64() // different stream
        });
    }

    #[test]
    fn corrupt_text_changes_something_eventually() {
        let text = "INPUT(a)\nOUTPUT(z)\nz = BUF(a)\n";
        let changed = (0..32).any(|s| FaultPlan::new(s).corrupt_text(text) != text);
        assert!(changed, "no seed corrupted the text");
    }

    #[test]
    fn absurd_values_cover_nonfinite() {
        let mut fp = FaultPlan::new(3);
        let vals: Vec<f64> = (0..256).map(|_| fp.absurd_f64()).collect();
        assert!(vals.iter().any(|v| v.is_nan()));
        assert!(vals.iter().any(|v| v.is_infinite()));
        assert!(vals.iter().any(|v| *v <= 0.0));
    }

    #[test]
    fn maybe_absurd_respects_probability_extremes() {
        let mut fp = FaultPlan::new(11);
        assert_eq!(fp.maybe_absurd(42.0, 0.0), 42.0);
        let injected = fp.maybe_absurd(42.0, 1.0);
        assert!(ABSURD_F64.iter().any(|a| a.to_bits() == injected.to_bits()));
    }
}
