//! A minimal wall-clock benchmark harness, replacing `criterion` for this
//! workspace's `harness = false` bench targets.
//!
//! Design goals: zero dependencies, stable output format, and a fast
//! smoke mode. `cargo bench` passes `--bench` to the target, which
//! selects full measurement (auto-calibrated iteration counts, several
//! samples, min/median/mean in ns per iteration). Any other invocation —
//! notably `cargo test --benches` — runs each benchmark exactly once, so
//! benches stay compile- and smoke-checked by the test suite without
//! burning minutes of CI time.
//!
//! ```no_run
//! use lacr_prng::bench::{Bencher, Harness};
//!
//! fn bench_sum(c: &mut Harness) {
//!     c.bench_function("sum_1k", |b: &mut Bencher| {
//!         b.iter(|| (0..1000u64).sum::<u64>())
//!     });
//! }
//!
//! lacr_prng::bench_group!(benches, bench_sum);
//! lacr_prng::bench_main!(benches);
//! ```

use std::time::{Duration, Instant};

/// Target wall-clock time per measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
/// Default number of measured samples per benchmark.
const DEFAULT_SAMPLES: usize = 15;

/// Measures one benchmark body; handed to the closure by
/// [`Harness::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `body` the harness-chosen number of times and records the
    /// total elapsed time. The return value is passed through
    /// [`std::hint::black_box`] so the work is not optimised away.
    pub fn iter<T>(&mut self, mut body: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// One benchmark's aggregated measurements.
#[derive(Debug, Clone)]
struct Record {
    name: String,
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
}

/// The top-level harness: registers and runs benchmarks, then prints a
/// summary table.
pub struct Harness {
    full: bool,
    sample_size: usize,
    records: Vec<Record>,
}

impl Harness {
    /// Builds a harness from the process arguments: full measurement when
    /// `--bench` is present (what `cargo bench` passes), smoke mode (one
    /// iteration per benchmark) otherwise.
    pub fn from_args() -> Self {
        let full = std::env::args().any(|a| a == "--bench");
        Self {
            full,
            sample_size: DEFAULT_SAMPLES,
            records: Vec::new(),
        }
    }

    /// Runs one benchmark. The closure must call [`Bencher::iter`]
    /// exactly once.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        if !self.full {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{name}: smoke ok ({:?})", b.elapsed);
            return;
        }
        // Calibrate: time a single iteration, then choose a count that
        // fills roughly one sample target.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let once = b.elapsed.max(Duration::from_nanos(1));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let min_ns = samples_ns[0];
        let median_ns = samples_ns[samples_ns.len() / 2];
        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        println!(
            "{name}: min {} / median {} / mean {}  ({iters} iters x {} samples)",
            fmt_ns(min_ns),
            fmt_ns(median_ns),
            fmt_ns(mean_ns),
            samples_ns.len()
        );
        self.records.push(Record {
            name: name.to_string(),
            min_ns,
            median_ns,
            mean_ns,
        });
    }

    /// Starts a named group; mirrors criterion's `benchmark_group`.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Prints the final summary table (full mode only).
    pub fn final_summary(&self) {
        if !self.full || self.records.is_empty() {
            return;
        }
        let width = self.records.iter().map(|r| r.name.len()).max().unwrap_or(0);
        println!(
            "\n{:<width$}  {:>12}  {:>12}  {:>12}",
            "benchmark", "min", "median", "mean"
        );
        for r in &self.records {
            println!(
                "{:<width$}  {:>12}  {:>12}  {:>12}",
                r.name,
                fmt_ns(r.min_ns),
                fmt_ns(r.median_ns),
                fmt_ns(r.mean_ns)
            );
        }
    }
}

/// A named benchmark group with an optional per-group sample size;
/// mirrors criterion's group API surface used in this repo.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    sample_size: Option<usize>,
}

impl Group<'_> {
    /// Overrides the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark inside the group (reported as `group/name`).
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full_name = format!("{}/{name}", self.name);
        let saved = self.harness.sample_size;
        if let Some(n) = self.sample_size {
            self.harness.sample_size = n;
        }
        self.harness.bench_function(&full_name, f);
        self.harness.sample_size = saved;
        self
    }

    /// Ends the group (no-op; mirrors criterion).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! bench_group {
    ($group:ident, $($fun:path),+ $(,)?) => {
        fn $group(harness: &mut $crate::bench::Harness) {
            $( $fun(harness); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut harness = $crate::bench::Harness::from_args();
            $( $group(&mut harness); )+
            harness.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut h = Harness {
            full: false,
            sample_size: DEFAULT_SAMPLES,
            records: Vec::new(),
        };
        let mut calls = 0u32;
        h.bench_function("probe", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
        assert!(h.records.is_empty());
    }

    #[test]
    fn full_mode_records_statistics() {
        let mut h = Harness {
            full: true,
            sample_size: 3,
            records: Vec::new(),
        };
        h.bench_function("tiny", |b| b.iter(|| std::hint::black_box(1 + 1)));
        assert_eq!(h.records.len(), 1);
        let r = &h.records[0];
        assert!(r.min_ns <= r.median_ns && r.min_ns <= r.mean_ns * 1.0000001);
        h.final_summary();
    }

    #[test]
    fn groups_prefix_names_and_restore_sample_size() {
        let mut h = Harness {
            full: true,
            sample_size: 4,
            records: Vec::new(),
        };
        {
            let mut g = h.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function("inner", |b| b.iter(|| ()));
            g.finish();
        }
        assert_eq!(h.sample_size, 4);
        assert_eq!(h.records[0].name, "grp/inner");
    }

    #[test]
    fn ns_formatting_picks_sane_units() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.340 us");
        assert_eq!(fmt_ns(12_340_000.0), "12.340 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
