//! Seeded synthetic netlist topologies for scale benchmarking.
//!
//! The bench89 suite tops out at a few thousand gates — far too small to
//! exercise the sparse W/D substrate or the FEAS-probe binary search at
//! the sizes the retiming literature cares about. This module generates
//! *abstract* netlists (delays + weighted edges, no logic functions) with
//! the two structural archetypes the scale campaign uses:
//!
//! * [`ring_of_rings`] — strongly connected: clusters of short
//!   combinational rings, each closed by a single heavily-registered
//!   edge, chained through a registered global ring plus a few random
//!   registered chords. Min-period retiming has to *move* registers
//!   around every cycle, and the binary search genuinely brackets.
//! * [`pipelined_mesh`] — a feed-forward `w x h` grid (east/south
//!   edges) with registers only on every eighth column crossing: an
//!   unbalanced pipeline whose min-area retiming must re-stage a long
//!   combinational wavefront.
//!
//! Everything is a pure function of `(cells, seed)` — same inputs, same
//! netlist, byte for byte — so scale artifacts are comparable across
//! runs and machines. The crate stays zero-dependency: the output is a
//! plain edge list that `lacr-bench` lowers into a `RetimeGraph`.
//!
//! Both topologies uphold the retiming validity invariant: every
//! directed cycle carries at least one flip-flop (the mesh has no cycles
//! at all; every ring/chord cycle passes a registered edge).

use crate::Rng;

/// One directed connection: `flops` flip-flops between two cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthEdge {
    /// Driving cell index.
    pub from: u32,
    /// Driven cell index.
    pub to: u32,
    /// Flip-flops on the connection.
    pub flops: u32,
}

/// An abstract netlist: per-cell delays plus a weighted edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthNetlist {
    /// Topology + size tag, e.g. `"ring_4096"`.
    pub name: String,
    /// Seed the netlist was generated from.
    pub seed: u64,
    /// Propagation delay of each cell, picoseconds (index = cell id).
    pub delays_ps: Vec<u64>,
    /// Directed connections between cells.
    pub edges: Vec<SynthEdge>,
}

impl SynthNetlist {
    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.delays_ps.len()
    }
}

/// Cell delay range, picoseconds: wide enough that min-period targets
/// and per-cell floors differ by an order of magnitude.
const DELAY_RANGE: std::ops::Range<u64> = 10..100;

/// A strongly connected ring-of-rings netlist with (almost exactly)
/// `cells` cells.
///
/// Local rings of 6–24 cells are combinational except for one closing
/// edge that carries all of the ring's registers; rings chain through a
/// registered global ring (port cell to port cell), and about one chord
/// per four rings adds a random registered shortcut. The unretimed
/// period is the longest combinational arc of the worst ring; retiming
/// re-spreads the banked registers.
///
/// # Panics
///
/// Panics if `cells < 3` (no room for a single ring).
pub fn ring_of_rings(cells: usize, seed: u64) -> SynthNetlist {
    assert!(cells >= 3, "ring_of_rings needs at least 3 cells");
    let mut rng = Rng::seed_from_u64(seed ^ 0x5269_6e67); // "Ring"
    let mut delays_ps = Vec::with_capacity(cells);
    let mut edges = Vec::new();
    // Ring extents: [base, base + len) per ring.
    let mut rings: Vec<(u32, u32)> = Vec::new();
    while delays_ps.len() < cells {
        let remaining = cells - delays_ps.len();
        let len = if remaining < 6 + 3 {
            // Too little left for another full ring after this one:
            // absorb the remainder so the total is exact.
            remaining
        } else {
            rng.gen_range(6..25usize).min(remaining - 3)
        };
        let base = delays_ps.len() as u32;
        for _ in 0..len {
            delays_ps.push(rng.gen_range(DELAY_RANGE));
        }
        for i in 0..len as u32 {
            let from = base + i;
            let to = base + (i + 1) % len as u32;
            // The closing edge banks every register the ring owns;
            // the rest of the ring is combinational.
            let flops = if i == len as u32 - 1 {
                1 + (len as u32) / 4
            } else {
                0
            };
            edges.push(SynthEdge { from, to, flops });
        }
        rings.push((base, len as u32));
    }
    // Global ring through the port cell (cell 0) of each ring.
    if rings.len() > 1 {
        for r in 0..rings.len() {
            let from = rings[r].0;
            let to = rings[(r + 1) % rings.len()].0;
            edges.push(SynthEdge { from, to, flops: 2 });
        }
    }
    // Registered chords: random ring-to-ring shortcuts.
    for _ in 0..rings.len() / 4 {
        let (a_base, a_len) = rings[rng.gen_range(0..rings.len())];
        let (b_base, b_len) = rings[rng.gen_range(0..rings.len())];
        let from = a_base + rng.gen_range(0..a_len);
        let to = b_base + rng.gen_range(0..b_len);
        if from != to {
            edges.push(SynthEdge {
                from,
                to,
                flops: rng.gen_range(1..4u32),
            });
        }
    }
    SynthNetlist {
        name: format!("ring_{cells}"),
        seed,
        delays_ps,
        edges,
    }
}

/// Columns per pipeline stage in [`pipelined_mesh`]: east edges leaving
/// a column divisible by this carry the stage registers.
const MESH_STAGE_COLS: usize = 8;

/// A feed-forward pipelined mesh with at most `cells` cells (the
/// largest `w x h` grid with `h = floor(sqrt(cells))` that fits).
///
/// Cells connect east and south; east edges leaving every
/// [`MESH_STAGE_COLS`]-th column carry two registers each, everything
/// else is combinational. The grid is a DAG — retiming is pure pipeline
/// re-staging: min-period drops to the slowest single cell and min-area
/// then minimises the registers needed to hold it.
///
/// # Panics
///
/// Panics if `cells < 4` (no room for a 2 x 2 grid).
pub fn pipelined_mesh(cells: usize, seed: u64) -> SynthNetlist {
    assert!(cells >= 4, "pipelined_mesh needs at least a 2x2 grid");
    let mut rng = Rng::seed_from_u64(seed ^ 0x4d65_7368); // "Mesh"
    let h = (cells as f64).sqrt() as usize;
    let w = cells / h;
    let n = w * h;
    let mut delays_ps = Vec::with_capacity(n);
    for _ in 0..n {
        delays_ps.push(rng.gen_range(DELAY_RANGE));
    }
    let id = |col: usize, row: usize| (col * h + row) as u32;
    let mut edges = Vec::with_capacity(2 * n);
    for col in 0..w {
        for row in 0..h {
            if col + 1 < w {
                let flops = if (col + 1) % MESH_STAGE_COLS == 0 {
                    2
                } else {
                    0
                };
                edges.push(SynthEdge {
                    from: id(col, row),
                    to: id(col + 1, row),
                    flops,
                });
            }
            if row + 1 < h {
                edges.push(SynthEdge {
                    from: id(col, row),
                    to: id(col, row + 1),
                    flops: 0,
                });
            }
        }
    }
    SynthNetlist {
        name: format!("mesh_{n}"),
        seed,
        delays_ps,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every directed cycle must carry a register: the subgraph of
    /// zero-flop edges has to be acyclic (checked with Kahn's
    /// algorithm).
    fn assert_no_combinational_cycle(net: &SynthNetlist) {
        let n = net.num_cells();
        let mut adj = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for e in &net.edges {
            if e.flops == 0 {
                adj[e.from as usize].push(e.to as usize);
                indeg[e.to as usize] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &t in &adj[v] {
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push(t);
                }
            }
        }
        assert_eq!(seen, n, "{}: zero-flop subgraph has a cycle", net.name);
    }

    fn assert_well_formed(net: &SynthNetlist, requested: usize) {
        assert!(net.num_cells() <= requested);
        assert!(net.num_cells() * 10 >= requested * 9, "size off by >10%");
        for e in &net.edges {
            assert!((e.from as usize) < net.num_cells());
            assert!((e.to as usize) < net.num_cells());
            assert_ne!(e.from, e.to, "self-loop");
        }
        for &d in &net.delays_ps {
            assert!(DELAY_RANGE.contains(&d));
        }
        assert_no_combinational_cycle(net);
    }

    #[test]
    fn ring_of_rings_is_well_formed_across_sizes() {
        for cells in [3, 7, 64, 1000, 4096] {
            let net = ring_of_rings(cells, 7);
            assert_eq!(net.num_cells(), cells, "ring sizes are exact");
            assert_well_formed(&net, cells);
        }
    }

    #[test]
    fn pipelined_mesh_is_well_formed_across_sizes() {
        for cells in [4, 100, 1000, 4096] {
            let net = pipelined_mesh(cells, 7);
            assert_well_formed(&net, cells);
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        assert_eq!(ring_of_rings(512, 42), ring_of_rings(512, 42));
        assert_eq!(pipelined_mesh(512, 42), pipelined_mesh(512, 42));
        assert_ne!(
            ring_of_rings(512, 42).delays_ps,
            ring_of_rings(512, 43).delays_ps
        );
    }

    #[test]
    fn ring_of_rings_is_strongly_connected() {
        // Reachability from cell 0 and to cell 0 both cover the graph —
        // enough to certify strong connectivity.
        let net = ring_of_rings(1000, 3);
        let n = net.num_cells();
        let mut fwd = vec![Vec::new(); n];
        let mut rev = vec![Vec::new(); n];
        for e in &net.edges {
            fwd[e.from as usize].push(e.to as usize);
            rev[e.to as usize].push(e.from as usize);
        }
        for adj in [&fwd, &rev] {
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(v) = stack.pop() {
                for &t in &adj[v] {
                    if !seen[t] {
                        seen[t] = true;
                        stack.push(t);
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "ring_of_rings not connected");
        }
    }

    #[test]
    fn mesh_has_registered_stage_boundaries() {
        let net = pipelined_mesh(4096, 7);
        assert!(net.edges.iter().any(|e| e.flops > 0), "mesh has registers");
        assert!(
            net.edges.iter().filter(|e| e.flops == 0).count() > net.num_cells(),
            "mesh is mostly combinational"
        );
    }
}
