//! Deterministic, dependency-free randomness for the whole workspace.
//!
//! The LAC-retiming loop and the annealing floorplanner are *seeded
//! stochastic searches*: run-to-run reproducibility is what makes the
//! paper's Table-1-style comparisons meaningful. This crate pins the
//! entire workspace to one small, auditable generator so results are
//! bit-for-bit identical across runs, machines and toolchains — and so
//! the build needs no network access (the previous `rand`/`rand_chacha`
//! dependency could not be fetched in a hermetic environment).
//!
//! Four pieces live here:
//!
//! * [`Rng`] — a SplitMix64-seeded xoshiro256++ generator exposing
//!   exactly the surface the codebase uses: [`Rng::seed_from_u64`],
//!   [`Rng::gen_range`] (integer and float ranges, half-open and
//!   inclusive), [`Rng::gen_bool`], [`Rng::shuffle`] and [`Rng::choose`]
//!   (the latter two also via the [`SliceRandom`] extension trait to keep
//!   `slice.shuffle(&mut rng)` call sites unchanged);
//! * [`mod@prop`] — a minimal property-testing driver with failure-seed
//!   reporting and single-seed replay (replaces `proptest`);
//! * [`mod@bench`] — a minimal wall-clock benchmark harness (replaces
//!   `criterion`);
//! * [`mod@fault`] — seeded input mutators ([`FaultPlan`]) for the
//!   fail-soft fault-injection suites;
//! * [`mod@synth`] — seeded synthetic netlist topologies (ring-of-rings,
//!   pipelined mesh) for the scale benchmarks.

pub mod bench;
pub mod fault;
pub mod prop;
pub mod synth;

pub use fault::FaultPlan;
pub use prop::{case_seed, run_property};

/// Multiplier from the SplitMix64 reference implementation.
const SPLITMIX_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// One SplitMix64 step: advances `state` and returns the next output.
/// Used for seed expansion only; the main stream is xoshiro256++.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seedable deterministic PRNG: xoshiro256++ with SplitMix64 seed
/// expansion (Blackman & Vigna). Not cryptographic; statistically strong
/// and extremely fast, which is exactly what seeded annealing/retiming
/// experiments need.
///
/// # Examples
///
/// ```
/// use lacr_prng::Rng;
///
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.gen_range(0..100), b.gen_range(0..100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed. The same seed always
    /// yields the same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256++ requires a non-zero state; SplitMix64 cannot emit
        // four consecutive zeros, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = SPLITMIX_GAMMA;
        }
        Self { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An unbiased uniform integer in `[0, span)` via Lemire's
    /// widening-multiply rejection method. `span` must be non-zero.
    #[inline]
    fn bounded_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut m = (self.next_u64() as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                m = (self.next_u64() as u128) * (span as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform value from `range` (half-open `a..b` or inclusive
    /// `a..=b`; integers and `f64` supported).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded_u64(slice.len() as u64) as usize])
        }
    }

    /// A uniformly random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from `self`.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.bounded_u64(span + 1) as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "gen_range: bad f64 range {:?}",
            self
        );
        let v = self.start + (self.end - self.start) * rng.next_f64();
        // Floating-point rounding can land exactly on `end`; stay half-open.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> f32 {
        (core::ops::Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample(rng) as f32
    }
}

/// Extension trait mirroring `rand::seq::SliceRandom` so call sites keep
/// the `slice.shuffle(&mut rng)` / `slice.choose(&mut rng)` shape.
pub trait SliceRandom {
    /// The element type.
    type Item;
    /// Shuffles the slice in place.
    fn shuffle(&mut self, rng: &mut Rng);
    /// A uniformly chosen element, or `None` if empty.
    fn choose(&self, rng: &mut Rng) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut Rng) {
        rng.shuffle(self);
    }

    fn choose(&self, rng: &mut Rng) -> Option<&T> {
        rng.choose(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 implementation by Sebastiano Vigna.
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 6457827717110365317);
        assert_eq!(splitmix64(&mut s), 3203168211198807973);
    }

    #[test]
    fn full_u64_stream_is_not_constant() {
        let mut rng = Rng::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let mut uniq = draws.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), draws.len(), "{draws:?}");
    }

    #[test]
    fn signed_ranges_cover_negative_values() {
        let mut rng = Rng::seed_from_u64(3);
        let mut saw_neg = false;
        for _ in 0..100 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            saw_neg |= v < 0;
        }
        assert!(saw_neg);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Rng::seed_from_u64(0);
        let _ = rng.gen_range(3..3usize);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn gen_bool_rejects_bad_probability() {
        let mut rng = Rng::seed_from_u64(0);
        let _ = rng.gen_bool(1.5);
    }
}
