//! Contract tests for the in-repo PRNG: determinism, range bounds,
//! probability sanity and permutation validity — the guarantees the rest
//! of the workspace's seeded experiments lean on.

use lacr_prng::{Rng, SliceRandom};

#[test]
fn same_seed_same_sequence() {
    let mut a = Rng::seed_from_u64(0xdead_beef);
    let mut b = Rng::seed_from_u64(0xdead_beef);
    for _ in 0..1000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[test]
fn different_seeds_diverge() {
    let mut a = Rng::seed_from_u64(1);
    let mut b = Rng::seed_from_u64(2);
    let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
    assert!(same < 2, "streams for different seeds nearly identical");
}

#[test]
fn mixed_draw_kinds_stay_deterministic() {
    // The exact interleaving of range/bool/float/shuffle draws must be
    // reproducible: this pins the whole-workspace reproducibility
    // contract, not just the raw u64 stream.
    let run = || {
        let mut rng = Rng::seed_from_u64(99);
        let mut v: Vec<u32> = (0..16).collect();
        rng.shuffle(&mut v);
        (
            rng.gen_range(0..1_000_000usize),
            rng.gen_range(-50i64..=50),
            rng.gen_bool(0.25),
            rng.gen_range(0.0..10.0f64),
            v,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn half_open_int_range_bounds() {
    let mut rng = Rng::seed_from_u64(7);
    let mut saw_low = false;
    let mut saw_high = false;
    for _ in 0..10_000 {
        let v = rng.gen_range(3..8usize);
        assert!((3..8).contains(&v), "{v} outside [3, 8)");
        saw_low |= v == 3;
        saw_high |= v == 7;
    }
    assert!(saw_low, "low endpoint never drawn");
    assert!(saw_high, "high-1 endpoint never drawn");
}

#[test]
fn inclusive_int_range_bounds() {
    let mut rng = Rng::seed_from_u64(8);
    let mut saw = [false; 11];
    for _ in 0..10_000 {
        let v = rng.gen_range(-5i64..=5);
        assert!((-5..=5).contains(&v), "{v} outside [-5, 5]");
        saw[(v + 5) as usize] = true;
    }
    assert!(saw.iter().all(|&s| s), "some value in [-5, 5] never drawn");
}

#[test]
fn tiny_and_degenerate_ranges() {
    let mut rng = Rng::seed_from_u64(9);
    for _ in 0..100 {
        assert_eq!(rng.gen_range(4..5usize), 4);
        assert_eq!(rng.gen_range(-2i64..=-2), -2);
    }
}

#[test]
fn float_range_stays_half_open() {
    let mut rng = Rng::seed_from_u64(10);
    for _ in 0..10_000 {
        let v = rng.gen_range(0.6..2.0f64);
        assert!((0.6..2.0).contains(&v), "{v} outside [0.6, 2.0)");
    }
}

#[test]
fn gen_bool_probability_sanity_over_10k_draws() {
    let mut rng = Rng::seed_from_u64(11);
    for (p, lo, hi) in [(0.1, 800, 1200), (0.5, 4700, 5300), (0.9, 8800, 9200)] {
        let hits = (0..10_000).filter(|_| rng.gen_bool(p)).count();
        assert!(
            (lo..=hi).contains(&hits),
            "p={p}: {hits}/10000 outside [{lo}, {hi}]"
        );
    }
    assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    assert!((0..100).all(|_| rng.gen_bool(1.0)));
}

#[test]
fn shuffle_yields_a_valid_permutation() {
    let mut rng = Rng::seed_from_u64(12);
    for n in [0usize, 1, 2, 17, 100] {
        let mut v: Vec<usize> = (0..n).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "n = {n}");
    }
}

#[test]
fn shuffle_actually_permutes() {
    // With 100 elements, the identity permutation has probability 1/100!;
    // seeing it would mean shuffle is a no-op.
    let mut rng = Rng::seed_from_u64(13);
    let mut v: Vec<usize> = (0..100).collect();
    v.shuffle(&mut rng);
    assert_ne!(v, (0..100).collect::<Vec<_>>());
}

#[test]
fn choose_is_in_slice_and_none_on_empty() {
    let mut rng = Rng::seed_from_u64(14);
    let items = [10, 20, 30];
    for _ in 0..100 {
        assert!(items.contains(items.choose(&mut rng).unwrap()));
    }
    let empty: [i32; 0] = [];
    assert!(empty.choose(&mut rng).is_none());
}

#[test]
fn permutation_helper_matches_contract() {
    let mut rng = Rng::seed_from_u64(15);
    let p = rng.permutation(50);
    let mut sorted = p.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..50).collect::<Vec<_>>());
}

#[test]
fn range_distribution_is_roughly_uniform() {
    // Chi-squared-ish sanity: 10 buckets, 100k draws, each bucket within
    // 10% of the expectation. xoshiro256++ passes far stricter batteries;
    // this guards against integration bugs (off-by-one, biased modulo).
    let mut rng = Rng::seed_from_u64(16);
    let mut buckets = [0u32; 10];
    for _ in 0..100_000 {
        buckets[rng.gen_range(0..10usize)] += 1;
    }
    for (i, &b) in buckets.iter().enumerate() {
        assert!((9_000..=11_000).contains(&b), "bucket {i}: {b}");
    }
}

mod property_driver {
    lacr_prng::properties! {
        cases = 16;

        /// The driver hands every case a usable generator.
        fn driver_provides_entropy(rng) {
            let a = rng.next_u64();
            let b = rng.next_u64();
            lacr_prng::prop_assert_ne!(a, b);
        }

        /// prop_assert with a formatted message compiles and passes.
        fn formatted_asserts_work(rng) {
            let v = rng.gen_range(0..5u32);
            lacr_prng::prop_assert!(v < 5, "v = {v} escaped its range");
            lacr_prng::prop_assert_eq!(v.min(4), v);
        }
    }
}
