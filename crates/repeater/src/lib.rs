//! `L_max`-constrained repeater planning (§4.1).
//!
//! The paper performs "repeater planning based on the maximum interval
//! length constraint `L_max` ... defined based on a desirable signal
//! integrity level", using the dynamic-programming insertion of Alpert et
//! al. This crate implements that step on the routed cell paths:
//!
//! * [`plan_positions`] — the DP: choose repeater cells along a path such
//!   that no interval between consecutive drivers exceeds `L_max`,
//!   minimising a per-site cost (tile congestion / remaining capacity);
//! * [`insert_repeaters`] — applies the DP to a routed driver→sink path,
//!   reserves repeater area in the [`CapacityLedger`], and returns the
//!   *interconnect units* (§3.2): one wire span per driver, each with its
//!   starting cell and length.
//!
//! Repeater insertion "provides a natural segmentation of an interconnect
//! into interconnect units, with the delay of each unit being the sum of
//! the repeater delay and the delay of the interconnect segment driven by
//! the repeater" — the returned [`Segment`]s are exactly those units.

use lacr_floorplan::tiles::{CapacityLedger, TileGrid};
use lacr_timing::Technology;

/// Typed failure of repeater insertion.
#[derive(Debug, Clone, PartialEq)]
pub enum RepeaterError {
    /// The routed path has no cells at all.
    EmptyPath,
    /// `L_max` is shorter than one tile, so no spacing of repeaters can
    /// satisfy the interval constraint.
    IntervalUnsatisfiable {
        /// The technology's maximum unbuffered interval (µm).
        l_max: f64,
        /// The grid's tile size (µm).
        tile_size: f64,
    },
}

impl std::fmt::Display for RepeaterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyPath => write!(f, "routed path is empty"),
            Self::IntervalUnsatisfiable { l_max, tile_size } => write!(
                f,
                "l_max {l_max} µm is below one tile ({tile_size} µm): \
                 no repeater spacing can satisfy the interval constraint"
            ),
        }
    }
}

impl std::error::Error for RepeaterError {}

/// One interconnect unit: a wire span and the cell of the driver (source
/// unit or repeater) that drives it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Cell where the span's driver sits.
    pub start_cell: usize,
    /// Index of the driver cell within the routed path.
    pub start_index: usize,
    /// Span length in µm.
    pub length_um: f64,
    /// `false` only for the first span, which the source functional unit
    /// drives itself.
    pub driven_by_repeater: bool,
}

/// Result of [`insert_repeaters`] for one driver→sink connection.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertionResult {
    /// Cells where repeaters were committed (in path order).
    pub repeater_cells: Vec<usize>,
    /// The interconnect units covering the whole connection, in order from
    /// the driver to the sink. Empty when the connection stays within one
    /// cell.
    pub segments: Vec<Segment>,
}

/// Chooses repeater positions along a path of `len` cells so that no
/// interval between consecutive drivers (position `0`, every repeater, and
/// the sink at `len - 1`) exceeds `max_interval` cell steps, minimising
/// `Σ site_cost(position)` by dynamic programming.
///
/// Returns the chosen interior positions (strictly between `0` and
/// `len - 1`), or `None` when `max_interval == 0` makes the problem
/// unsatisfiable for `len > 1`.
///
/// # Examples
///
/// ```
/// use lacr_repeater::plan_positions;
///
/// // 9 cells, interval ≤ 3 steps: two repeaters needed; with uniform
/// // costs any {i, j} with gaps ≤ 3 works.
/// let pos = plan_positions(9, 3, |_| 1.0).expect("satisfiable");
/// assert_eq!(pos.len(), 2);
/// let mut drivers = vec![0];
/// drivers.extend(&pos);
/// drivers.push(8);
/// for w in drivers.windows(2) {
///     assert!(w[1] - w[0] <= 3);
/// }
/// ```
pub fn plan_positions(
    len: usize,
    max_interval: usize,
    mut site_cost: impl FnMut(usize) -> f64,
) -> Option<Vec<usize>> {
    if len <= 1 {
        return Some(Vec::new());
    }
    let last = len - 1;
    if max_interval == 0 {
        return None;
    }
    if last <= max_interval {
        return Some(Vec::new());
    }
    // cost[i] = min cost with a driver at position i (0 = the source).
    let mut cost = vec![f64::INFINITY; len];
    let mut prev = vec![usize::MAX; len];
    cost[0] = 0.0;
    for i in 1..len {
        let lo = i.saturating_sub(max_interval);
        let mut best = f64::INFINITY;
        let mut arg = usize::MAX;
        for (j, &cj) in cost.iter().enumerate().take(i).skip(lo) {
            if cj < best {
                best = cj;
                arg = j;
            }
        }
        if arg == usize::MAX {
            continue;
        }
        let site = if i == last { 0.0 } else { site_cost(i) };
        cost[i] = best + site;
        prev[i] = arg;
    }
    if !cost[last].is_finite() {
        return None;
    }
    let mut positions = Vec::new();
    let mut c = prev[last];
    while c != 0 && c != usize::MAX {
        positions.push(c);
        c = prev[c];
    }
    positions.reverse();
    Some(positions)
}

/// Applies repeater planning to one routed driver→sink cell `path`
/// (inclusive ends), reserving `technology.repeater_area` per repeater in
/// the `ledger` and returning the resulting interconnect units.
///
/// The per-site DP cost prefers tiles with plenty of remaining capacity;
/// a full tile costs heavily but is not forbidden (repeaters must be
/// placed to honour `L_max`; any resulting overdraw is visible through
/// [`CapacityLedger::total_overflow`]).
///
/// # Panics
///
/// Panics if `path` is empty or `technology.l_max < grid.tile_size()`
/// (such a technology fails [`Technology::validate`]). Use
/// [`try_insert_repeaters`] for a fallible variant.
pub fn insert_repeaters(
    path: &[usize],
    grid: &TileGrid,
    ledger: &mut CapacityLedger,
    technology: &Technology,
) -> InsertionResult {
    try_insert_repeaters(path, grid, ledger, technology).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`insert_repeaters`]: returns [`RepeaterError`]
/// instead of panicking on an empty path or an unsatisfiable `L_max`.
pub fn try_insert_repeaters(
    path: &[usize],
    grid: &TileGrid,
    ledger: &mut CapacityLedger,
    technology: &Technology,
) -> Result<InsertionResult, RepeaterError> {
    if path.is_empty() {
        return Err(RepeaterError::EmptyPath);
    }
    let _span = lacr_obs::span!("repeater.plan", path_cells = path.len());
    lacr_obs::histogram!("repeater.path_cells", path.len() as u64);
    let ts = grid.tile_size();
    let max_interval = if technology.l_max.is_finite() && technology.l_max >= ts {
        (technology.l_max / ts).floor() as usize
    } else {
        return Err(RepeaterError::IntervalUnsatisfiable {
            l_max: technology.l_max,
            tile_size: ts,
        });
    };
    if path.len() == 1 {
        return Ok(InsertionResult {
            repeater_cells: Vec::new(),
            segments: Vec::new(),
        });
    }

    let positions = {
        let site_cost = |i: usize| -> f64 {
            let tile = grid.tile_of_cell(path[i]);
            let remaining = ledger.remaining(tile);
            if remaining >= technology.repeater_area {
                // Mild preference for roomy tiles.
                1.0 + technology.repeater_area / remaining.max(1e-9)
            } else {
                1_000.0
            }
        };
        plan_positions(path.len(), max_interval, site_cost).expect("max_interval >= 1")
    };

    let mut repeater_cells = Vec::with_capacity(positions.len());
    let mut forced = 0_u64;
    for &p in &positions {
        let tile = grid.tile_of_cell(path[p]);
        if !ledger.try_consume(tile, technology.repeater_area) {
            ledger.consume_forced(tile, technology.repeater_area);
            forced += 1;
        }
        repeater_cells.push(path[p]);
    }
    lacr_obs::counter!("repeater.connections", 1);
    if !positions.is_empty() {
        // Each inserted repeater is one L_max interval violation fixed.
        lacr_obs::counter!("repeater.inserted", positions.len());
        lacr_obs::counter!("repeater.forced_overdraws", forced);
    }

    // Drivers: source, repeaters, then the sink terminates the last span.
    let mut drivers = vec![0usize];
    drivers.extend(&positions);
    let last = path.len() - 1;
    let mut segments = Vec::with_capacity(drivers.len());
    for (k, &d) in drivers.iter().enumerate() {
        let end = if k + 1 < drivers.len() {
            drivers[k + 1]
        } else {
            last
        };
        segments.push(Segment {
            start_cell: path[d],
            start_index: d,
            length_um: (end - d) as f64 * ts,
            driven_by_repeater: k > 0,
        });
    }
    Ok(InsertionResult {
        repeater_cells,
        segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacr_floorplan::Floorplan;

    fn open_grid(nx: usize, ny: usize) -> TileGrid {
        // No blocks: every cell is a channel tile.
        let fp = Floorplan {
            blocks: vec![],
            chip_w: nx as f64 * 500.0,
            chip_h: ny as f64 * 500.0,
        };
        TileGrid::build(&fp, &[], &Default::default())
    }

    #[test]
    fn no_repeaters_for_short_paths() {
        let grid = open_grid(8, 1);
        let mut ledger = CapacityLedger::new(&grid);
        let tech = Technology::default(); // l_max 2000 → 4 cells
        let res = insert_repeaters(&[0, 1, 2, 3], &grid, &mut ledger, &tech);
        assert!(res.repeater_cells.is_empty());
        assert_eq!(res.segments.len(), 1);
        assert_eq!(res.segments[0].length_um, 1500.0);
        assert!(!res.segments[0].driven_by_repeater);
    }

    #[test]
    fn long_path_gets_repeaters_within_lmax() {
        let grid = open_grid(12, 1);
        let mut ledger = CapacityLedger::new(&grid);
        let tech = Technology::default();
        let path: Vec<usize> = (0..12).collect();
        let res = insert_repeaters(&path, &grid, &mut ledger, &tech);
        assert!(!res.repeater_cells.is_empty());
        // All spans ≤ l_max.
        for s in &res.segments {
            assert!(s.length_um <= tech.l_max + 1e-9, "span {}", s.length_um);
        }
        // Total span length = path length.
        let total: f64 = res.segments.iter().map(|s| s.length_um).sum();
        assert!((total - 11.0 * 500.0).abs() < 1e-9);
        // First span driven by the source, rest by repeaters.
        assert!(!res.segments[0].driven_by_repeater);
        assert!(res.segments[1..].iter().all(|s| s.driven_by_repeater));
        assert_eq!(res.segments.len(), res.repeater_cells.len() + 1);
    }

    #[test]
    fn repeaters_consume_capacity() {
        let grid = open_grid(12, 1);
        let mut ledger = CapacityLedger::new(&grid);
        let tech = Technology::default();
        let before: f64 = grid.tile_ids().map(|t| ledger.remaining(t)).sum();
        let path: Vec<usize> = (0..12).collect();
        let res = insert_repeaters(&path, &grid, &mut ledger, &tech);
        let after: f64 = grid.tile_ids().map(|t| ledger.remaining(t)).sum();
        let spent = before - after;
        let expected = res.repeater_cells.len() as f64 * tech.repeater_area;
        assert!((spent - expected).abs() < 1e-6);
    }

    #[test]
    fn single_cell_path_is_empty() {
        let grid = open_grid(4, 1);
        let mut ledger = CapacityLedger::new(&grid);
        let res = insert_repeaters(&[2], &grid, &mut ledger, &Technology::default());
        assert!(res.segments.is_empty());
    }

    #[test]
    fn dp_prefers_cheap_sites() {
        // 7 cells, interval 3; site 3 expensive, sites 2 and 4/5 cheap.
        let pos = plan_positions(7, 3, |i| if i == 3 { 100.0 } else { 1.0 }).unwrap();
        assert!(!pos.contains(&3), "chose expensive site: {pos:?}");
        // validity
        let mut drivers = vec![0];
        drivers.extend(&pos);
        drivers.push(6);
        for w in drivers.windows(2) {
            assert!(w[1] - w[0] <= 3);
        }
    }

    #[test]
    fn dp_minimises_repeater_count_under_uniform_cost() {
        // 10 cells (9 steps), interval 4 → ceil(9/4) − 1 = 2 repeaters.
        let pos = plan_positions(10, 4, |_| 1.0).unwrap();
        assert_eq!(pos.len(), 2);
    }

    #[test]
    fn dp_zero_interval_unsatisfiable() {
        assert_eq!(plan_positions(5, 0, |_| 1.0), None);
        assert_eq!(plan_positions(1, 0, |_| 1.0), Some(vec![]));
    }

    #[test]
    fn dp_exact_fit_needs_no_repeater() {
        assert_eq!(plan_positions(5, 4, |_| 1.0), Some(vec![]));
    }

    #[test]
    fn try_insert_rejects_bad_inputs_with_typed_errors() {
        let grid = open_grid(4, 1);
        let mut ledger = CapacityLedger::new(&grid);
        let tech = Technology::default();
        assert_eq!(
            try_insert_repeaters(&[], &grid, &mut ledger, &tech),
            Err(RepeaterError::EmptyPath)
        );
        let mut tiny = tech.clone();
        tiny.l_max = grid.tile_size() / 2.0;
        let err = try_insert_repeaters(&[0, 1], &grid, &mut ledger, &tiny).unwrap_err();
        assert!(matches!(err, RepeaterError::IntervalUnsatisfiable { .. }));
        let mut nan = tech.clone();
        nan.l_max = f64::NAN;
        assert!(try_insert_repeaters(&[0, 1], &grid, &mut ledger, &nan).is_err());
    }

    #[test]
    fn full_tiles_are_overdrawn_not_skipped() {
        let grid = open_grid(12, 1);
        let mut ledger = CapacityLedger::new(&grid);
        // Exhaust every tile.
        for t in grid.tile_ids() {
            let r = ledger.remaining(t);
            ledger.consume_forced(t, r);
        }
        let tech = Technology::default();
        let path: Vec<usize> = (0..12).collect();
        let res = insert_repeaters(&path, &grid, &mut ledger, &tech);
        assert!(!res.repeater_cells.is_empty());
        assert!(ledger.total_overflow() > 0.0);
    }
}
