//! General Elmore delay on RC ladders.
//!
//! The planner mostly uses the closed-form single-segment delay in
//! [`crate::Technology`], but the repeater planner's dynamic program scores
//! candidate segmentations with an explicit ladder model, provided here.

/// One segment of an RC ladder: a series resistance followed by a shunt
/// capacitance (lumped Π/2 element).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcSegment {
    /// Series resistance (Ω).
    pub res: f64,
    /// Shunt capacitance at the far end of the segment (fF).
    pub cap: f64,
}

impl RcSegment {
    /// Creates a segment.
    pub fn new(res: f64, cap: f64) -> Self {
        Self { res, cap }
    }
}

/// Elmore delay (ps) of an RC ladder driven through `driver_res` Ω into the
/// chain of `segments`, terminated by `load_cap` fF at the far end.
///
/// Each capacitance is charged through all the resistance upstream of it:
/// `T = Σ_i R_{0..i} · C_i` with `Ω·fF = 10⁻³ ps`.
///
/// # Examples
///
/// ```
/// use lacr_timing::{rc_ladder_delay_ps, RcSegment};
///
/// // A single lumped segment reduces to (Rd + R)·(C + Cl) terms.
/// let d = rc_ladder_delay_ps(100.0, &[RcSegment::new(50.0, 10.0)], 5.0);
/// assert!((d - 1e-3 * (100.0 * 10.0 + 150.0 * 5.0 + 50.0 * 10.0)).abs() < 1e-9);
/// ```
pub fn rc_ladder_delay_ps(driver_res: f64, segments: &[RcSegment], load_cap: f64) -> f64 {
    let mut upstream = driver_res;
    let mut total = 0.0;
    for seg in segments {
        upstream += seg.res;
        total += upstream * seg.cap;
    }
    total += upstream * load_cap;
    1e-3 * total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ladder_is_driver_into_load() {
        let d = rc_ladder_delay_ps(200.0, &[], 10.0);
        assert!((d - 1e-3 * 200.0 * 10.0).abs() < 1e-12);
    }

    #[test]
    fn delay_is_monotone_in_segment_count() {
        let seg = RcSegment::new(10.0, 2.0);
        let d1 = rc_ladder_delay_ps(100.0, &[seg], 5.0);
        let d2 = rc_ladder_delay_ps(100.0, &[seg, seg], 5.0);
        let d3 = rc_ladder_delay_ps(100.0, &[seg, seg, seg], 5.0);
        assert!(d1 < d2 && d2 < d3);
    }

    #[test]
    fn splitting_a_wire_preserves_elmore_when_caps_split() {
        // One lumped segment (R, C) vs two half segments (R/2, C/2) each:
        // distributed model gives a *smaller* Elmore delay (C/2 charged
        // through less upstream R).
        let lumped = rc_ladder_delay_ps(0.0, &[RcSegment::new(100.0, 20.0)], 0.0);
        let split = rc_ladder_delay_ps(
            0.0,
            &[RcSegment::new(50.0, 10.0), RcSegment::new(50.0, 10.0)],
            0.0,
        );
        assert!(split < lumped);
    }

    #[test]
    fn zero_everything_is_zero() {
        assert_eq!(rc_ladder_delay_ps(0.0, &[], 0.0), 0.0);
    }
}
