//! Technology parameters and interconnect delay models.
//!
//! The paper assumes a deep-submicron regime where global wire delay spans
//! multiple clock cycles and repeaters must be inserted at most `L_max`
//! apart for signal integrity. This crate provides:
//!
//! * [`Technology`] — a self-consistent 180 nm-class parameter set (the
//!   paper states no absolute numbers; see `DESIGN.md`, substitution 3);
//! * Elmore-model wire delays ([`Technology::wire_delay_ps`]) and the delay
//!   of a repeater-driven segment ([`Technology::segment_delay_ps`]);
//! * functional-unit delay/area scaling used to treat gate-level ISCAS89
//!   netlists as "RT-level functional units with large area and delay"
//!   exactly as the paper does (§5).
//!
//! All lengths are micrometres, delays picoseconds, resistances ohms and
//! capacitances femtofarads, areas µm².

mod elmore;

pub use elmore::{rc_ladder_delay_ps, RcSegment};

/// Process and library parameters used by the planner.
///
/// The defaults model a 180 nm-class process where a full-chip global wire
/// takes several nanoseconds unbuffered — the regime that motivates the
/// paper (wire delay up to "about ten clock cycles").
///
/// # Examples
///
/// ```
/// use lacr_timing::Technology;
///
/// let tech = Technology::default();
/// // Longer wires are slower, quadratically when unbuffered.
/// let d1 = tech.wire_delay_ps(1_000.0);
/// let d2 = tech.wire_delay_ps(2_000.0);
/// assert!(d2 > 2.0 * d1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Wire resistance per micrometre (Ω/µm).
    pub unit_res: f64,
    /// Wire capacitance per micrometre (fF/µm).
    pub unit_cap: f64,
    /// Repeater intrinsic delay (ps).
    pub repeater_delay_ps: f64,
    /// Repeater output (drive) resistance (Ω).
    pub repeater_res: f64,
    /// Repeater input capacitance (fF).
    pub repeater_cap: f64,
    /// Repeater footprint (µm²).
    pub repeater_area: f64,
    /// Flip-flop footprint (µm²).
    pub ff_area: f64,
    /// Flip-flop clock-to-Q plus setup overhead charged to a stage (ps).
    pub ff_overhead_ps: f64,
    /// Maximum interval between consecutive repeaters, from the signal
    /// integrity constraint (µm). The paper's `L_max`.
    pub l_max: f64,
    /// Side length of a routing tile (µm).
    pub tile_size: f64,
    /// Multiplier applied to raw gate delays to emulate "RT-level
    /// functional units with large delay" (§5).
    pub unit_delay_scale: f64,
    /// Multiplier applied to raw gate areas to emulate "RT-level functional
    /// units with large area" (§5).
    pub unit_area_scale: f64,
}

impl Default for Technology {
    fn default() -> Self {
        Self {
            unit_res: 0.075, // Ω/µm, global metal
            unit_cap: 0.118, // fF/µm
            repeater_delay_ps: 20.0,
            repeater_res: 180.0,    // Ω
            repeater_cap: 23.0,     // fF
            repeater_area: 2_000.0, // µm² (an RT-level repeater bank)
            ff_area: 25_000.0,      // µm² (an RT-level register, not a single bit)
            ff_overhead_ps: 80.0,
            l_max: 2_000.0,   // µm
            tile_size: 500.0, // µm
            unit_delay_scale: 800.0,
            unit_area_scale: 50_000.0,
        }
    }
}

impl Technology {
    /// Creates the default technology; identical to [`Default::default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Elmore delay (ps) of an unbuffered wire of length `len` µm driven by
    /// a repeater-strength driver into a repeater-sized load:
    /// `R_d (C_w + C_l) + R_w (C_w / 2 + C_l)` with `R_w = r·len`,
    /// `C_w = c·len` — quadratic in length, which is what makes long global
    /// wires need segmentation.
    pub fn wire_delay_ps(&self, len: f64) -> f64 {
        let rw = self.unit_res * len;
        let cw = self.unit_cap * len;
        // Ω·fF = 10⁻¹⁵ s = 10⁻³ ps, hence the 1e-3 factor.
        1e-3 * (self.repeater_res * (cw + self.repeater_cap) + rw * (cw / 2.0 + self.repeater_cap))
    }

    /// Delay (ps) of one *interconnect unit*: a repeater plus the wire
    /// segment of length `len` µm that it drives (§3.2 of the paper).
    pub fn segment_delay_ps(&self, len: f64) -> f64 {
        self.repeater_delay_ps + self.wire_delay_ps(len)
    }

    /// Delay (ps) charged to an RT-level functional unit whose raw
    /// gate-level delay is `raw_ps`.
    pub fn unit_delay_ps(&self, raw_ps: f64) -> f64 {
        raw_ps * self.unit_delay_scale
    }

    /// Area (µm²) charged to an RT-level functional unit whose raw
    /// gate-level area is `raw`.
    pub fn unit_area(&self, raw: f64) -> f64 {
        raw * self.unit_area_scale
    }

    /// Number of repeaters needed on a two-pin connection of length `len`
    /// µm so that no interval exceeds [`Technology::l_max`].
    ///
    /// A connection of length `≤ l_max` needs none.
    pub fn min_repeaters(&self, len: f64) -> usize {
        if len <= self.l_max || self.l_max <= 0.0 {
            0
        } else {
            (len / self.l_max).ceil() as usize - 1
        }
    }

    /// Delay (ps) of a connection of length `len` µm segmented into the
    /// minimum number of equal `L_max`-bounded spans, each driven by a
    /// repeater (the first span is driven by the source unit, modelled with
    /// repeater strength).
    pub fn buffered_delay_ps(&self, len: f64) -> f64 {
        let k = self.min_repeaters(len) + 1;
        let seg = len / k as f64;
        k as f64 * self.segment_delay_ps(seg)
    }

    /// Validates internal consistency, returning a list of human-readable
    /// problems (empty when the technology is usable).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let positive = [
            ("unit_res", self.unit_res),
            ("unit_cap", self.unit_cap),
            ("repeater_res", self.repeater_res),
            ("repeater_cap", self.repeater_cap),
            ("repeater_area", self.repeater_area),
            ("ff_area", self.ff_area),
            ("l_max", self.l_max),
            ("tile_size", self.tile_size),
            ("unit_delay_scale", self.unit_delay_scale),
            ("unit_area_scale", self.unit_area_scale),
        ];
        for (name, v) in positive {
            if !(v.is_finite() && v > 0.0) {
                problems.push(format!("{name} must be positive, got {v}"));
            }
        }
        for (name, v) in [
            ("repeater_delay_ps", self.repeater_delay_ps),
            ("ff_overhead_ps", self.ff_overhead_ps),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                problems.push(format!("{name} must be non-negative, got {v}"));
            }
        }
        if self.l_max < self.tile_size {
            problems.push(format!(
                "l_max ({}) smaller than one tile ({}) cannot be honoured by tile-granular repeater planning",
                self.l_max, self.tile_size
            ));
        }
        lacr_obs::event!(
            "timing.technology",
            l_max = self.l_max,
            tile_size = self.tile_size,
            repeater_delay_ps = self.repeater_delay_ps,
            problems = problems.len()
        );
        problems
    }
}

/// Quantises a delay in (fractional) picoseconds to the integer picosecond
/// grid used by the retiming engine.
///
/// Rounding *up* keeps the quantised timing conservative: a path that meets
/// the quantised period also meets the real one.
///
/// # Panics
///
/// Panics if `delay_ps` is negative, NaN or infinite.
pub fn quantize_ps(delay_ps: f64) -> u64 {
    assert!(
        delay_ps >= 0.0 && delay_ps.is_finite(),
        "bad delay {delay_ps}"
    );
    delay_ps.ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(Technology::default().validate().is_empty());
    }

    #[test]
    fn wire_delay_is_superlinear() {
        let t = Technology::default();
        let d1 = t.wire_delay_ps(500.0);
        let d4 = t.wire_delay_ps(2_000.0);
        assert!(d4 > 4.0 * d1);
    }

    #[test]
    fn wire_delay_zero_length_is_driver_only() {
        let t = Technology::default();
        let d = t.wire_delay_ps(0.0);
        assert!((d - 1e-3 * t.repeater_res * t.repeater_cap).abs() < 1e-9);
    }

    #[test]
    fn min_repeaters_thresholds() {
        let t = Technology::default(); // l_max = 2000
        assert_eq!(t.min_repeaters(0.0), 0);
        assert_eq!(t.min_repeaters(1_999.0), 0);
        assert_eq!(t.min_repeaters(2_000.0), 0);
        assert_eq!(t.min_repeaters(2_001.0), 1);
        assert_eq!(t.min_repeaters(4_000.0), 1);
        assert_eq!(t.min_repeaters(4_001.0), 2);
        assert_eq!(t.min_repeaters(10_000.0), 4);
    }

    #[test]
    fn buffering_helps_long_wires() {
        let t = Technology::default();
        let unbuffered = t.wire_delay_ps(10_000.0);
        let buffered = t.buffered_delay_ps(10_000.0);
        assert!(
            buffered < unbuffered,
            "buffered {buffered} !< unbuffered {unbuffered}"
        );
    }

    #[test]
    fn buffered_delay_of_short_wire_is_one_segment() {
        let t = Technology::default();
        let d = t.buffered_delay_ps(1_000.0);
        assert!((d - t.segment_delay_ps(1_000.0)).abs() < 1e-9);
    }

    #[test]
    fn unit_scaling_applies_multipliers() {
        let t = Technology::default();
        assert!((t.unit_delay_ps(10.0) - 10.0 * t.unit_delay_scale).abs() < 1e-12);
        assert!((t.unit_area(3.0) - 3.0 * t.unit_area_scale).abs() < 1e-12);
    }

    #[test]
    fn quantize_rounds_up() {
        assert_eq!(quantize_ps(0.0), 0);
        assert_eq!(quantize_ps(1.0), 1);
        assert_eq!(quantize_ps(1.0001), 2);
        assert_eq!(quantize_ps(41.9), 42);
    }

    #[test]
    #[should_panic]
    fn quantize_rejects_negative() {
        let _ = quantize_ps(-1.0);
    }

    #[test]
    fn validate_catches_bad_values() {
        let t = Technology {
            unit_res: 0.0,
            ff_overhead_ps: -1.0,
            ..Technology::default()
        };
        let p = t.validate();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn validate_flags_lmax_below_tile() {
        let t = Technology {
            l_max: 100.0,
            ..Technology::default()
        };
        assert!(t
            .validate()
            .iter()
            .any(|p| p.contains("cannot be honoured")));
    }
}
