//! Wall-clock benchmark of the end-to-end interconnect-planning pipeline
//! (one full Table-1 cell: physical plan plus both retimers) on the
//! smallest benchmark circuit.

use lacr_core::planner::{build_physical_plan, plan_retimings};
use lacr_netlist::bench89;
use lacr_prng::bench::Harness;

fn bench_planning(c: &mut Harness) {
    let config = lacr_bench::quick_planner();
    let circuit = bench89::generate("s344").expect("known circuit");

    let mut g = c.benchmark_group("planning_s344");
    g.sample_size(10);
    g.bench_function("physical_plan", |b| {
        b.iter(|| build_physical_plan(&circuit, &config, &[]))
    });
    let plan = build_physical_plan(&circuit, &config, &[]);
    g.bench_function("both_retimers", |b| {
        b.iter(|| plan_retimings(&plan, &config).expect("feasible"))
    });
    g.finish();
}

lacr_prng::bench_group!(benches, bench_planning);
lacr_prng::bench_main!(benches);
