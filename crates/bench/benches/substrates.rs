//! Wall-clock benchmarks of the substrate kernels: min-cost flow,
//! partitioning, sequence-pair packing + annealing, global routing and the
//! repeater DP.

use lacr_floorplan::anneal::{floorplan, FloorplanConfig};
use lacr_floorplan::seqpair::SequencePair;
use lacr_floorplan::slicing::floorplan_slicing;
use lacr_floorplan::tiles::{CapacityLedger, TileGrid, TileGridConfig};
use lacr_floorplan::{BlockSpec, Floorplan};
use lacr_mcmf::{solve_dual_program, Constraint};
use lacr_netlist::bench89;
use lacr_partition::{partition, PartitionConfig};
use lacr_prng::bench::Harness;
use lacr_prng::Rng;
use lacr_repeater::insert_repeaters;
use lacr_route::{route, NetPins, RouteConfig};
use lacr_timing::Technology;

fn bench_flow(c: &mut Harness) {
    // A ring + chords constraint system with a balanced cost vector.
    let n = 400usize;
    let mut rng = Rng::seed_from_u64(17);
    let mut cons = Vec::new();
    for i in 0..n {
        cons.push(Constraint::new(i, (i + 1) % n, rng.gen_range(0..4)));
    }
    for _ in 0..3 * n {
        cons.push(Constraint::new(
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(0..6),
        ));
    }
    let mut cost: Vec<i64> = (0..n).map(|_| rng.gen_range(-8..=8)).collect();
    let s: i64 = cost.iter().sum();
    cost[0] -= s;
    c.bench_function("mcmf_dual_program_400v", |b| {
        b.iter(|| solve_dual_program(n, &cost, &cons).expect("bounded"))
    });
}

fn bench_partition(c: &mut Harness) {
    let circuit = bench89::generate("s953").expect("known circuit");
    c.bench_function("partition_s953_8way", |b| {
        b.iter(|| {
            partition(
                &circuit,
                &PartitionConfig {
                    num_blocks: 8,
                    ..Default::default()
                },
            )
        })
    });
}

fn bench_floorplan(c: &mut Harness) {
    let blocks: Vec<BlockSpec> = (0..12)
        .map(|i| BlockSpec::soft(1e6 + 2e5 * i as f64))
        .collect();
    let sp = SequencePair::identity(blocks.len());
    let w: Vec<f64> = blocks.iter().map(|b| b.width).collect();
    let h: Vec<f64> = blocks.iter().map(|b| b.height).collect();
    c.bench_function("seqpair_pack_12", |b| b.iter(|| sp.pack(&w, &h)));
    let mut g = c.benchmark_group("floorplan");
    g.sample_size(10);
    g.bench_function("anneal_12_blocks_2k_moves", |b| {
        b.iter(|| {
            floorplan(
                &blocks,
                &[],
                &FloorplanConfig {
                    moves: 2_000,
                    ..Default::default()
                },
            )
        })
    });
    g.bench_function("slicing_12_blocks_2k_moves", |b| {
        b.iter(|| {
            floorplan_slicing(
                &blocks,
                &[],
                &FloorplanConfig {
                    moves: 2_000,
                    ..Default::default()
                },
            )
        })
    });
    g.finish();
}

fn bench_route(c: &mut Harness) {
    let mut rng = Rng::seed_from_u64(7);
    let (nx, ny) = (16usize, 16usize);
    let nets: Vec<NetPins> = (0..200)
        .map(|_| NetPins {
            driver: rng.gen_range(0..nx * ny),
            sinks: (0..rng.gen_range(1..4))
                .map(|_| rng.gen_range(0..nx * ny))
                .collect(),
        })
        .collect();
    c.bench_function("route_200nets_16x16", |b| {
        b.iter(|| route(nx, ny, &nets, &RouteConfig::default()))
    });
}

fn bench_repeater(c: &mut Harness) {
    let fp = Floorplan {
        blocks: vec![],
        chip_w: 16_000.0,
        chip_h: 500.0,
    };
    let grid = TileGrid::build(&fp, &[], &TileGridConfig::default());
    let tech = Technology::default();
    let path: Vec<usize> = (0..32).collect();
    c.bench_function("repeater_dp_32cell_path", |b| {
        b.iter(|| {
            let mut ledger = CapacityLedger::new(&grid);
            insert_repeaters(&path, &grid, &mut ledger, &tech)
        })
    });
}

lacr_prng::bench_group!(
    benches,
    bench_flow,
    bench_partition,
    bench_floorplan,
    bench_route,
    bench_repeater
);
lacr_prng::bench_main!(benches);
