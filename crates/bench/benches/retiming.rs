//! Wall-clock benchmarks of the retiming kernels that produce Table 1:
//! constraint generation, min-period retiming, one weighted min-area
//! solve, and the full LAC loop, on a planned mid-size circuit.

use lacr_core::lac::{lac_retiming, LacConfig};
use lacr_core::planner::{build_physical_plan, plan_constraints};
use lacr_netlist::bench89;
use lacr_prng::bench::Harness;
use lacr_retime::{
    generate_period_constraints, min_period_retiming, weighted_min_area_retiming, WdSubstrate,
};

fn bench_retiming(c: &mut Harness) {
    let config = lacr_bench::quick_planner();
    let circuit = bench89::generate("s344").expect("known circuit");
    let plan = build_physical_plan(&circuit, &config, &[]);
    let pc = plan_constraints(&plan);
    let graph = &plan.expanded.graph;
    let areas: Vec<f64> = graph.vertex_ids().map(|v| graph.area(v)).collect();

    let mut g = c.benchmark_group("retiming_s344");
    g.sample_size(10);
    g.bench_function("constraint_generation", |b| {
        b.iter(|| generate_period_constraints(graph, plan.t_clk).expect("no overflow"))
    });
    // Substrate amortisation: one W/D build serving a probe (what each
    // binary-search step costs after the first).
    let substrate = WdSubstrate::build(graph, plan.t_min, plan.t_init).expect("no overflow");
    g.bench_function("constraint_reemission_from_substrate", |b| {
        b.iter(|| substrate.constraints_for(plan.t_clk))
    });
    g.bench_function("min_period", |b| b.iter(|| min_period_retiming(graph)));
    g.bench_function("min_area_single_solve", |b| {
        b.iter(|| weighted_min_area_retiming(graph, &pc, &areas).expect("feasible"))
    });
    g.bench_function("lac_full_loop", |b| {
        b.iter(|| {
            lac_retiming(graph, &pc, &plan.expanded.caps_ff, &LacConfig::default())
                .expect("feasible")
        })
    });
    g.finish();
}

lacr_prng::bench_group!(benches, bench_retiming);
lacr_prng::bench_main!(benches);
