//! Stress run on `s5378` (≈2 800 units — the largest ISCAS89 circuit the
//! paper's generation handles), with large-circuit settings: a 2 %
//! `T_min` search tolerance and a tighter LAC round budget.
//!
//! ```text
//! cargo run --release -p lacr-bench --bin stress [circuit]
//! ```

use lacr_core::lac::LacConfig;
use lacr_core::planner::{build_physical_plan, plan_retimings, PlannerConfig};
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "s5378".into());
    let config = PlannerConfig {
        t_min_tolerance_frac: 0.02,
        lac: LacConfig {
            n_max: 3,
            max_rounds: 12,
            ..Default::default()
        },
        ..lacr_bench::experiment_planner()
    };
    let circuit = match lacr_netlist::bench89::generate(&name) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "{name}: {} units, {} flops — planning with 2% T_min tolerance...",
        circuit.num_units(),
        circuit.num_flops()
    );
    let t0 = Instant::now();
    let plan = build_physical_plan(&circuit, &config, &[]);
    println!(
        "physical plan in {:?}: V={} E={} wires={} repeaters={}",
        t0.elapsed(),
        plan.expanded.graph.num_vertices(),
        plan.expanded.graph.num_edges(),
        plan.expanded.num_interconnect_units,
        plan.expanded.num_repeaters
    );
    println!(
        "T_init {:.2} ns, T_min ≤ {:.2} ns, T_clk {:.2} ns",
        plan.t_init as f64 / 1000.0,
        plan.t_min as f64 / 1000.0,
        plan.t_clk as f64 / 1000.0
    );
    let t1 = Instant::now();
    match plan_retimings(&plan, &config) {
        Ok(report) => {
            println!(
                "retimings in {:?}: baseline N_FOA {} | LAC N_FOA {} (N_wr {}, N_F {}, N_FN {})",
                t1.elapsed(),
                report.min_area.result.n_foa,
                report.lac.result.n_foa,
                report.lac.result.n_wr,
                report.lac.result.n_f,
                report.lac.result.n_fn,
            );
        }
        Err(e) => eprintln!("retiming failed: {e}"),
    }
    println!("total {:?}", t0.elapsed());
}
