//! Stress run on `s5378` (≈2 800 units — the largest ISCAS89 circuit the
//! paper's generation handles), with large-circuit settings: a 2 %
//! `T_min` search tolerance and a tighter LAC round budget.
//!
//! Writes a machine-readable perf record to `BENCH_stress.json` (stage
//! timings come from the observability report when a sink is installed).
//!
//! ```text
//! cargo run --release -p lacr-bench --bin stress \
//!     [--quiet] [--trace] [--metrics-out m.jsonl] [circuit]
//! ```

use lacr_bench::{write_bench_record, ObsOptions};
use lacr_core::lac::LacConfig;
use lacr_core::planner::{build_physical_plan, plan_retimings, PlannerConfig};
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = ObsOptions::from_args(&mut args);
    obs.install();
    let name = args.first().cloned().unwrap_or_else(|| "s5378".into());
    let config = PlannerConfig {
        t_min_tolerance_frac: 0.02,
        lac: LacConfig {
            n_max: 3,
            max_rounds: 12,
            ..Default::default()
        },
        ..lacr_bench::experiment_planner()
    };
    let circuit = match lacr_netlist::bench89::generate(&name) {
        Ok(c) => c,
        Err(e) => {
            lacr_obs::diag!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "{name}: {} units, {} flops — planning with 2% T_min tolerance...",
        circuit.num_units(),
        circuit.num_flops()
    );
    let t0 = Instant::now();
    let plan = build_physical_plan(&circuit, &config, &[]);
    let plan_s = t0.elapsed().as_secs_f64();
    println!(
        "physical plan in {:?}: V={} E={} wires={} repeaters={}",
        t0.elapsed(),
        plan.expanded.graph.num_vertices(),
        plan.expanded.graph.num_edges(),
        plan.expanded.num_interconnect_units,
        plan.expanded.num_repeaters
    );
    println!(
        "T_init {:.2} ns, T_min ≤ {:.2} ns, T_clk {:.2} ns",
        plan.t_init as f64 / 1000.0,
        plan.t_min as f64 / 1000.0,
        plan.t_clk as f64 / 1000.0
    );
    let t1 = Instant::now();
    let mut retime_fields = String::new();
    match plan_retimings(&plan, &config) {
        Ok(report) => {
            println!(
                "retimings in {:?}: baseline N_FOA {} | LAC N_FOA {} (N_wr {}, N_F {}, N_FN {})",
                t1.elapsed(),
                report.min_area.result.n_foa,
                report.lac.result.n_foa,
                report.lac.result.n_wr,
                report.lac.result.n_f,
                report.lac.result.n_fn,
            );
            retime_fields = format!(
                ",\"base_n_foa\":{},\"lac_n_foa\":{},\"n_wr\":{}",
                report.min_area.result.n_foa, report.lac.result.n_foa, report.lac.result.n_wr
            );
        }
        Err(e) => lacr_obs::diag!("retiming failed: {e}"),
    }
    println!("total {:?}", t0.elapsed());
    match write_bench_record(
        "stress",
        &[
            ("circuit", format!("\"{name}\"")),
            ("wall_s", format!("{:.3}", t0.elapsed().as_secs_f64())),
            (
                "stages",
                format!(
                    "{{\"plan_s\":{plan_s:.3},\"retime_s\":{:.3}{retime_fields}}}",
                    t1.elapsed().as_secs_f64()
                ),
            ),
        ],
    ) {
        Ok(path) => lacr_obs::diag!("perf record written to {path}"),
        Err(e) => lacr_obs::diag!("cannot write perf record: {e}"),
    }
    lacr_obs::finish();
}
