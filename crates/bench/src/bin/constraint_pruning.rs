//! Ablation **A4**: the W/D constraint reduction (Maheshwari–Sapatnekar
//! style), which the paper cites as the main avenue for further run-time
//! improvement (§5).
//!
//! Compares constraint counts and generation/solve times with pruning on
//! and off. The solutions must coincide on objective value (the pruned
//! system is equivalent, see `lacr-retime` docs).
//!
//! ```text
//! cargo run --release -p lacr-bench --bin constraint_pruning [circuit ...]
//! ```

use lacr_core::planner::build_physical_plan;
use lacr_retime::{generate_period_constraints, weighted_min_area_retiming, ConstraintOptions};
use std::time::Instant;

fn main() {
    let mut circuits: Vec<String> = std::env::args().skip(1).collect();
    let obs = lacr_bench::ObsOptions::from_args(&mut circuits);
    obs.install();
    if circuits.is_empty() {
        circuits = vec!["s641".into(), "s953".into(), "s1196".into()];
    }
    let config = lacr_bench::experiment_planner();
    println!(
        "{:<8} {:>7} | {:>10} {:>10} {:>9} {:>9} | {:>5}",
        "circuit", "prune", "pairs", "emitted", "gen t/s", "solve t/s", "N_F"
    );
    for name in &circuits {
        let circuit = match lacr_netlist::bench89::generate(name) {
            Ok(c) => c,
            Err(e) => {
                lacr_obs::diag!("{e}");
                continue;
            }
        };
        let plan = build_physical_plan(&circuit, &config, &[]);
        let graph = &plan.expanded.graph;
        let areas: Vec<f64> = graph.vertex_ids().map(|v| graph.area(v)).collect();
        let mut flops = Vec::new();
        for prune in [false, true] {
            let t0 = Instant::now();
            let pc = generate_period_constraints(graph, plan.t_clk, ConstraintOptions { prune });
            let gen_t = t0.elapsed();
            let t1 = Instant::now();
            match weighted_min_area_retiming(graph, &pc, &areas) {
                Ok(out) => {
                    println!(
                        "{name:<8} {prune:>7} | {:>10} {:>10} {:>9.3} {:>9.3} | {:>5}",
                        pc.pairs_before_pruning,
                        pc.constraints.len(),
                        gen_t.as_secs_f64(),
                        t1.elapsed().as_secs_f64(),
                        out.total_flops,
                    );
                    flops.push(out.total_flops);
                }
                Err(e) => println!("{name:<8} {prune:>7} | error: {e}"),
            }
        }
        if flops.len() == 2 && flops[0] != flops[1] {
            println!(
                "  WARNING: pruning changed the optimum ({} vs {})",
                flops[0], flops[1]
            );
        }
    }
}
