//! Ablation **A4**: the W/D constraint reduction (Maheshwari–Sapatnekar
//! style), which the paper cites as the main avenue for further run-time
//! improvement (§5).
//!
//! Pruned generation is the only emission path; this bin reports how much
//! it buys per circuit — violating pairs versus constraints actually
//! emitted — plus the substrate amortisation: the cost of one W/D build
//! for the whole `[T_min, T_init]` bracket against re-emitting a probe's
//! constraint set from it (what every binary-search step after the first
//! costs).
//!
//! ```text
//! cargo run --release -p lacr-bench --bin constraint_pruning [circuit ...]
//! ```

use lacr_core::planner::build_physical_plan;
use lacr_retime::{generate_period_constraints, weighted_min_area_retiming, WdSubstrate};
use std::time::Instant;

fn main() {
    let mut circuits: Vec<String> = std::env::args().skip(1).collect();
    let obs = lacr_bench::ObsOptions::from_args(&mut circuits);
    obs.install();
    if circuits.is_empty() {
        circuits = vec!["s641".into(), "s953".into(), "s1196".into()];
    }
    let config = lacr_bench::experiment_planner();
    println!(
        "{:<8} | {:>10} {:>10} {:>6} | {:>9} {:>9} {:>9} | {:>5}",
        "circuit", "pairs", "emitted", "kept%", "build t/s", "remit t/s", "solve t/s", "N_F"
    );
    for name in &circuits {
        let circuit = match lacr_netlist::bench89::generate(name) {
            Ok(c) => c,
            Err(e) => {
                lacr_obs::diag!("{e}");
                continue;
            }
        };
        let plan = build_physical_plan(&circuit, &config, &[]);
        let graph = &plan.expanded.graph;
        let areas: Vec<f64> = graph.vertex_ids().map(|v| graph.area(v)).collect();
        let t0 = Instant::now();
        let substrate = match WdSubstrate::build(graph, plan.t_min, plan.t_init) {
            Ok(s) => s,
            Err(e) => {
                println!("{name:<8} | error: {e}");
                continue;
            }
        };
        let build_t = t0.elapsed();
        let t1 = Instant::now();
        let pc = substrate.constraints_for(plan.t_clk);
        let remit_t = t1.elapsed();
        // Cross-check: the substrate probe is bit-identical to one-shot
        // generation at the same target.
        let fresh = generate_period_constraints(graph, plan.t_clk).expect("no overflow");
        assert_eq!(
            pc.constraints, fresh.constraints,
            "substrate probe diverged from one-shot generation"
        );
        let kept = if pc.pairs_before_pruning > 0 {
            100.0 * pc.constraints.len() as f64 / pc.pairs_before_pruning as f64
        } else {
            100.0
        };
        let t2 = Instant::now();
        match weighted_min_area_retiming(graph, &pc, &areas) {
            Ok(out) => println!(
                "{name:<8} | {:>10} {:>10} {:>6.1} | {:>9.3} {:>9.3} {:>9.3} | {:>5}",
                pc.pairs_before_pruning,
                pc.constraints.len(),
                kept,
                build_t.as_secs_f64(),
                remit_t.as_secs_f64(),
                t2.elapsed().as_secs_f64(),
                out.total_flops,
            ),
            Err(e) => println!("{name:<8} | error: {e}"),
        }
    }
}
