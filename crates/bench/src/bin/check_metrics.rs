//! Validates a JSONL metrics file produced by `--metrics-out`.
//!
//! Checks, line by line:
//!
//! 1. every line is one syntactically valid JSON object;
//! 2. every record carries a known `"t"` type tag;
//! 3. `span_open` / `span_close` records balance like parentheses, with
//!    matching names and depths (no orphaned opens at end of file);
//! 4. the final line is the `summary` record;
//! 5. the `lacr-par` contract holds: every `par.region` span carries
//!    numeric `items`/`threads` attributes, `par.tasks` / `par.steal`
//!    counters only fire inside an open `par.region` span, and the
//!    summed `par.tasks` deltas equal the summed region `items` (a
//!    `par.steal` counter is optional — single-threaded regions never
//!    emit one).
//!
//! ```text
//! cargo run --release -p lacr-bench --bin check_metrics <file.jsonl>
//! ```
//!
//! Exits 0 on success (one confirmation line on stdout), 1 with the
//! offending line number on stderr otherwise.

use std::process::ExitCode;

/// A minimal JSON value — just enough structure for validation.
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Recursive-descent JSON parser over a byte slice.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected {lit:?} at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("unterminated escape")? {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape \\{}", char::from(other))),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 character (already validated by &str).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = std::str::from_utf8(rest)
                        .map_err(|e| e.to_string())?
                        .chars()
                        .next()
                        .ok_or("unterminated string")?
                        .len_utf8();
                    s.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
fn parse_json(line: &str) -> Result<Json, String> {
    let mut p = Parser::new(line);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after value at {}", p.pos));
    }
    Ok(v)
}

const KNOWN_TYPES: &[&str] = &[
    "span_open",
    "span_close",
    "counter",
    "gauge",
    "hist",
    "event",
    "summary",
];

/// Validates the whole stream; returns (records, spans, parallel
/// regions) on success.
fn check_stream(text: &str) -> Result<(usize, usize, usize), String> {
    let mut open_spans: Vec<(String, u64)> = Vec::new();
    let mut records = 0usize;
    let mut spans = 0usize;
    let mut saw_summary = false;
    let mut par_regions = 0usize;
    let mut par_items = 0u64;
    let mut par_tasks = 0u64;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.trim().is_empty() {
            continue;
        }
        if saw_summary {
            return Err(format!("line {ln}: records after the summary line"));
        }
        let v = parse_json(line).map_err(|e| format!("line {ln}: {e}"))?;
        records += 1;
        let t = v
            .get("t")
            .and_then(Json::as_str)
            .ok_or(format!("line {ln}: missing \"t\" tag"))?;
        if !KNOWN_TYPES.contains(&t) {
            return Err(format!("line {ln}: unknown record type {t:?}"));
        }
        match t {
            "span_open" => {
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {ln}: span_open without name"))?;
                let depth = v
                    .get("depth")
                    .and_then(Json::as_num)
                    .ok_or(format!("line {ln}: span_open without depth"))?;
                if depth as usize != open_spans.len() {
                    return Err(format!(
                        "line {ln}: span_open depth {depth} but {} spans are open",
                        open_spans.len()
                    ));
                }
                if name == "par.region" {
                    let attrs = v
                        .get("attrs")
                        .ok_or(format!("line {ln}: par.region without attrs"))?;
                    let items = attrs
                        .get("items")
                        .and_then(Json::as_num)
                        .ok_or(format!("line {ln}: par.region without numeric items"))?;
                    let threads = attrs
                        .get("threads")
                        .and_then(Json::as_num)
                        .ok_or(format!("line {ln}: par.region without numeric threads"))?;
                    if threads < 1.0 {
                        return Err(format!("line {ln}: par.region with {threads} threads"));
                    }
                    par_regions += 1;
                    par_items += items as u64;
                }
                open_spans.push((name.to_string(), depth as u64));
            }
            "span_close" => {
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {ln}: span_close without name"))?;
                let (open_name, _) = open_spans
                    .pop()
                    .ok_or(format!("line {ln}: span_close with no open span"))?;
                if open_name != name {
                    return Err(format!(
                        "line {ln}: span_close {name:?} does not match open {open_name:?}"
                    ));
                }
                spans += 1;
            }
            "counter" => {
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {ln}: counter without name"))?;
                if name == "par.tasks" || name == "par.steal" {
                    if !open_spans.iter().any(|(n, _)| n == "par.region") {
                        return Err(format!(
                            "line {ln}: {name} counter outside any par.region span"
                        ));
                    }
                    let delta = v
                        .get("delta")
                        .and_then(Json::as_num)
                        .ok_or(format!("line {ln}: {name} without numeric delta"))?;
                    if name == "par.tasks" {
                        par_tasks += delta as u64;
                    }
                }
            }
            "summary" => saw_summary = true,
            _ => {}
        }
    }
    if let Some((name, _)) = open_spans.last() {
        return Err(format!("end of file with span {name:?} still open"));
    }
    if !saw_summary {
        return Err("no summary record (stream truncated?)".to_string());
    }
    if par_tasks != par_items {
        return Err(format!(
            "par.tasks total {par_tasks} does not match the {par_items} items \
             declared by {par_regions} par.region span(s)"
        ));
    }
    Ok((records, spans, par_regions))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: check_metrics <file.jsonl>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check_stream(&text) {
        Ok((records, spans, par_regions)) => {
            println!(
                "{path}: ok — {records} records, {spans} spans, \
                 {par_regions} parallel regions, summary present"
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json("true").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            parse_json("\"a\\n\\u0041\"").unwrap(),
            Json::Str("a\nA".into())
        );
        let v = parse_json("{\"a\":[1,2],\"b\":{\"c\":\"d\"}}").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]))
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn accepts_a_well_formed_stream() {
        let stream = "\
{\"t\":\"span_open\",\"us\":1,\"name\":\"a\",\"depth\":0,\"attrs\":{}}
{\"t\":\"counter\",\"us\":2,\"name\":\"c\",\"delta\":1,\"total\":1}
{\"t\":\"span_close\",\"us\":3,\"name\":\"a\",\"depth\":0,\"incl_us\":2,\"excl_us\":2}
{\"t\":\"summary\"}
";
        assert_eq!(check_stream(stream).unwrap(), (4, 1, 0));
    }

    #[test]
    fn enforces_the_par_counter_contract() {
        // Well-formed region: items == summed par.tasks deltas, counters
        // inside the span, no par.steal at one thread.
        let good = "\
{\"t\":\"span_open\",\"us\":1,\"name\":\"par.region\",\"depth\":0,\"attrs\":{\"region\":\"r\",\"items\":3,\"threads\":2}}
{\"t\":\"counter\",\"us\":2,\"name\":\"par.tasks\",\"delta\":3,\"total\":3}
{\"t\":\"counter\",\"us\":3,\"name\":\"par.steal\",\"delta\":1,\"total\":1}
{\"t\":\"span_close\",\"us\":4,\"name\":\"par.region\",\"depth\":0,\"incl_us\":3,\"excl_us\":3}
{\"t\":\"summary\"}
";
        assert_eq!(check_stream(good).unwrap(), (5, 1, 1));

        let short = "\
{\"t\":\"span_open\",\"us\":1,\"name\":\"par.region\",\"depth\":0,\"attrs\":{\"region\":\"r\",\"items\":3,\"threads\":1}}
{\"t\":\"counter\",\"us\":2,\"name\":\"par.tasks\",\"delta\":2,\"total\":2}
{\"t\":\"span_close\",\"us\":3,\"name\":\"par.region\",\"depth\":0,\"incl_us\":2,\"excl_us\":2}
{\"t\":\"summary\"}
";
        assert!(check_stream(short).unwrap_err().contains("does not match"));

        let orphan_counter = "\
{\"t\":\"counter\",\"us\":1,\"name\":\"par.tasks\",\"delta\":1,\"total\":1}
{\"t\":\"summary\"}
";
        assert!(check_stream(orphan_counter)
            .unwrap_err()
            .contains("outside any par.region"));

        let no_items = "\
{\"t\":\"span_open\",\"us\":1,\"name\":\"par.region\",\"depth\":0,\"attrs\":{\"region\":\"r\",\"threads\":2}}
{\"t\":\"span_close\",\"us\":2,\"name\":\"par.region\",\"depth\":0,\"incl_us\":1,\"excl_us\":1}
{\"t\":\"summary\"}
";
        assert!(check_stream(no_items)
            .unwrap_err()
            .contains("without numeric items"));
    }

    #[test]
    fn rejects_orphaned_open_and_mismatched_close() {
        let orphan = "{\"t\":\"span_open\",\"us\":1,\"name\":\"a\",\"depth\":0,\"attrs\":{}}\n{\"t\":\"summary\"}\n";
        assert!(check_stream(orphan).unwrap_err().contains("still open"));
        let mismatch = "\
{\"t\":\"span_open\",\"us\":1,\"name\":\"a\",\"depth\":0,\"attrs\":{}}
{\"t\":\"span_close\",\"us\":2,\"name\":\"b\",\"depth\":0,\"incl_us\":1,\"excl_us\":1}
{\"t\":\"summary\"}
";
        assert!(check_stream(mismatch)
            .unwrap_err()
            .contains("does not match"));
    }

    #[test]
    fn requires_summary_last() {
        assert!(check_stream("").unwrap_err().contains("no summary"));
        let after = "{\"t\":\"summary\"}\n{\"t\":\"event\",\"us\":1,\"name\":\"x\",\"attrs\":{}}\n";
        assert!(check_stream(after)
            .unwrap_err()
            .contains("after the summary"));
    }
}
