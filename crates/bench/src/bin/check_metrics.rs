//! Validates the workspace's machine-readable observability artifacts.
//!
//! Default mode checks a JSONL metrics file produced by `--metrics-out`,
//! line by line:
//!
//! 1. every line is one syntactically valid JSON object;
//! 2. every record carries a known `"t"` type tag;
//! 3. `span_open` / `span_close` records balance like parentheses, with
//!    matching names and depths (no orphaned opens at end of file);
//! 4. the final line is the `summary` record, and it carries a
//!    supported `schema_version`;
//! 5. the `lacr-par` contract holds: every `par.region` span carries
//!    numeric `items`/`threads` attributes, `par.tasks` / `par.steal`
//!    counters only fire inside an open `par.region` span, and the
//!    summed `par.tasks` deltas equal the summed region `items` (a
//!    `par.steal` counter is optional — single-threaded regions never
//!    emit one);
//! 6. the retiming substrate contract holds: inside each
//!    `retime.min_period` span, every substrate probe is served either
//!    from the cached W/D substrate or by building it — summed
//!    `retime.probe` deltas equal summed `retime.wd_cache_hits` deltas
//!    plus the number of `retime.wd_build` child spans. (Host-free
//!    searches use arrival-time FEAS probes, which emit only
//!    `retime.feas_probes`; both sides are then zero.)
//!
//! `--mem` mode re-reads the same JSONL stream and enforces the memory
//! observability contract instead: every `span_close` carries all four
//! `mem.*` keys (`mem.self_bytes`, `mem.live_bytes`, `mem.peak_bytes`,
//! `mem.allocs`), the allocator's peak is never below its live gauge at
//! any sample, per-span alloc counts are non-negative, and `mem.allocs`
//! counter totals are monotone non-decreasing across the stream.
//!
//! Other artifact kinds have their own modes:
//!
//! - `--run <RUN_x.json>`: provenance (`schema_version`, `threads`,
//!   `git_rev`) plus a `quality` block with the gated metrics on every
//!   circuit entry;
//! - `--bench <BENCH_x.json>`: provenance only (legacy shape otherwise);
//! - `--flight <dump.jsonl>`: a flight-recorder postmortem — versioned
//!   header with a `reason`, an `events` count matching the body, every
//!   body line a known record type;
//! - `--serve <responses.jsonl>`: a transcript of `lacr serve` response
//!   lines — every line a structured response with an `id`
//!   (string-or-null) and a known `status`, and the payload each status
//!   promises (plan text, error kind/message, rejection reason, stats
//!   snapshot blocks);
//! - `--stats <snapshots.jsonl>`: one or more `lacr serve` stats
//!   snapshots (from `{"cmd":"stats"}` responses or the periodic
//!   `--stats-interval-ms` heartbeat) — required keys present, status
//!   counts sum to completed requests, gauges non-negative, rolling
//!   percentiles ordered `p50 <= p95 <= p99`, and every counter
//!   monotone non-decreasing across successive snapshots;
//! - `--chrome <trace.json>`: a Chrome trace-event file from
//!   `--trace-chrome` — a `traceEvents` array whose every event carries
//!   `name`/`ph`/`ts`/`pid`/`tid`, with `B`/`E` begin–end events
//!   balancing like parentheses (matching names) per `(pid, tid)` lane.
//!
//! ```text
//! cargo run --release -p lacr-bench --bin check_metrics -- [mode] <file>
//! ```
//!
//! Exits 0 on success (one confirmation line on stdout), 1 with the
//! offending line number on stderr otherwise.

use lacr_bench::json::{parse_json, Json};
use std::process::ExitCode;

/// Quality metrics every `RUN_*.json` circuit entry must carry. A
/// subset of [`lacr_bench::compare::GATED_METRICS`]: the gate also
/// covers artifact-specific metrics (`min_area_flops` in scale runs)
/// that planner run records never have.
const REQUIRED_RUN_METRICS: &[&str] = &["lac_n_foa", "n_wr", "t_clk_ns", "route_overflow"];

const KNOWN_TYPES: &[&str] = &[
    "span_open",
    "span_close",
    "counter",
    "gauge",
    "hist",
    "event",
    "summary",
];

/// Validates the whole stream; returns (records, spans, parallel
/// regions) on success.
fn check_stream(text: &str) -> Result<(usize, usize, usize), String> {
    let mut open_spans: Vec<(String, u64)> = Vec::new();
    let mut records = 0usize;
    let mut spans = 0usize;
    let mut saw_summary = false;
    let mut par_regions = 0usize;
    let mut par_items = 0u64;
    let mut par_tasks = 0u64;
    // One (probes, cache_hits, wd_builds) tracker per open
    // retime.min_period span; counters and wd_build spans attribute to
    // the innermost one.
    let mut min_period_stack: Vec<(u64, u64, u64)> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.trim().is_empty() {
            continue;
        }
        if saw_summary {
            return Err(format!("line {ln}: records after the summary line"));
        }
        let v = parse_json(line).map_err(|e| format!("line {ln}: {e}"))?;
        records += 1;
        let t = v
            .get("t")
            .and_then(Json::as_str)
            .ok_or(format!("line {ln}: missing \"t\" tag"))?;
        if !KNOWN_TYPES.contains(&t) {
            return Err(format!("line {ln}: unknown record type {t:?}"));
        }
        match t {
            "span_open" => {
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {ln}: span_open without name"))?;
                let depth = v
                    .get("depth")
                    .and_then(Json::as_num)
                    .ok_or(format!("line {ln}: span_open without depth"))?;
                if depth as usize != open_spans.len() {
                    return Err(format!(
                        "line {ln}: span_open depth {depth} but {} spans are open",
                        open_spans.len()
                    ));
                }
                if name == "par.region" {
                    let attrs = v
                        .get("attrs")
                        .ok_or(format!("line {ln}: par.region without attrs"))?;
                    let items = attrs
                        .get("items")
                        .and_then(Json::as_num)
                        .ok_or(format!("line {ln}: par.region without numeric items"))?;
                    let threads = attrs
                        .get("threads")
                        .and_then(Json::as_num)
                        .ok_or(format!("line {ln}: par.region without numeric threads"))?;
                    if threads < 1.0 {
                        return Err(format!("line {ln}: par.region with {threads} threads"));
                    }
                    par_regions += 1;
                    par_items += items as u64;
                }
                if name == "retime.min_period" {
                    min_period_stack.push((0, 0, 0));
                } else if name == "retime.wd_build" {
                    if let Some(t) = min_period_stack.last_mut() {
                        t.2 += 1;
                    }
                }
                open_spans.push((name.to_string(), depth as u64));
            }
            "span_close" => {
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {ln}: span_close without name"))?;
                let (open_name, _) = open_spans
                    .pop()
                    .ok_or(format!("line {ln}: span_close with no open span"))?;
                if open_name != name {
                    return Err(format!(
                        "line {ln}: span_close {name:?} does not match open {open_name:?}"
                    ));
                }
                if name == "retime.min_period" {
                    let (probes, hits, builds) = min_period_stack
                        .pop()
                        .ok_or(format!("line {ln}: unbalanced retime.min_period"))?;
                    if probes != hits + builds {
                        return Err(format!(
                            "line {ln}: retime.min_period closed with {probes} substrate \
                             probe(s) but {hits} cache hit(s) + {builds} wd_build span(s)"
                        ));
                    }
                }
                spans += 1;
            }
            "counter" => {
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {ln}: counter without name"))?;
                if name == "par.tasks" || name == "par.steal" {
                    if !open_spans.iter().any(|(n, _)| n == "par.region") {
                        return Err(format!(
                            "line {ln}: {name} counter outside any par.region span"
                        ));
                    }
                    let delta = v
                        .get("delta")
                        .and_then(Json::as_num)
                        .ok_or(format!("line {ln}: {name} without numeric delta"))?;
                    if name == "par.tasks" {
                        par_tasks += delta as u64;
                    }
                }
                if name == "retime.probe" || name == "retime.wd_cache_hits" {
                    if let Some(t) = min_period_stack.last_mut() {
                        let delta = v
                            .get("delta")
                            .and_then(Json::as_num)
                            .ok_or(format!("line {ln}: {name} without numeric delta"))?;
                        if name == "retime.probe" {
                            t.0 += delta as u64;
                        } else {
                            t.1 += delta as u64;
                        }
                    }
                }
            }
            "summary" => {
                check_schema_version(&v).map_err(|e| format!("line {ln}: summary {e}"))?;
                saw_summary = true;
            }
            _ => {}
        }
    }
    if let Some((name, _)) = open_spans.last() {
        return Err(format!("end of file with span {name:?} still open"));
    }
    if !saw_summary {
        return Err("no summary record (stream truncated?)".to_string());
    }
    if par_tasks != par_items {
        return Err(format!(
            "par.tasks total {par_tasks} does not match the {par_items} items \
             declared by {par_regions} par.region span(s)"
        ));
    }
    Ok((records, spans, par_regions))
}

/// Span-close keys the memory observability contract requires on every
/// record once the counting allocator is wired in (schema version 2).
const MEM_SPAN_KEYS: &[&str] = &[
    "mem.self_bytes",
    "mem.live_bytes",
    "mem.peak_bytes",
    "mem.allocs",
];

/// Validates the memory contract over a JSONL metrics stream: every
/// `span_close` carries all `mem.*` keys, `mem.peak_bytes >=
/// mem.live_bytes` at every sample (the allocator loads live before
/// peak, so a violation means the record was fabricated or the
/// counters are broken), per-span `mem.allocs` is non-negative, and
/// `mem.allocs` counter totals never decrease. Returns (span closes
/// checked, counter samples checked).
fn check_mem_stream(text: &str) -> Result<(usize, usize), String> {
    let mut closes = 0usize;
    let mut counter_samples = 0usize;
    let mut last_alloc_total = f64::NEG_INFINITY;
    let mut saw_summary = false;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {ln}: {e}"))?;
        let t = v
            .get("t")
            .and_then(Json::as_str)
            .ok_or(format!("line {ln}: missing \"t\" tag"))?;
        match t {
            "span_close" => {
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {ln}: span_close without name"))?;
                for &key in MEM_SPAN_KEYS {
                    v.get(key)
                        .and_then(Json::as_num)
                        .ok_or(format!("line {ln}: span_close {name:?} missing {key}"))?;
                }
                let live = v.get("mem.live_bytes").and_then(Json::as_num).unwrap();
                let peak = v.get("mem.peak_bytes").and_then(Json::as_num).unwrap();
                if peak < live {
                    return Err(format!(
                        "line {ln}: span_close {name:?} has mem.peak_bytes {peak} \
                         below mem.live_bytes {live}"
                    ));
                }
                let allocs = v.get("mem.allocs").and_then(Json::as_num).unwrap();
                if allocs < 0.0 {
                    return Err(format!(
                        "line {ln}: span_close {name:?} has negative mem.allocs {allocs}"
                    ));
                }
                closes += 1;
            }
            "counter" if v.get("name").and_then(Json::as_str) == Some("mem.allocs") => {
                let delta = v
                    .get("delta")
                    .and_then(Json::as_num)
                    .ok_or(format!("line {ln}: mem.allocs counter without delta"))?;
                if delta < 0.0 {
                    return Err(format!("line {ln}: mem.allocs delta {delta} is negative"));
                }
                let total = v
                    .get("total")
                    .and_then(Json::as_num)
                    .ok_or(format!("line {ln}: mem.allocs counter without total"))?;
                if total < last_alloc_total {
                    return Err(format!(
                        "line {ln}: mem.allocs total went backwards \
                         ({last_alloc_total} -> {total})"
                    ));
                }
                last_alloc_total = total;
                counter_samples += 1;
            }
            "summary" => {
                check_schema_version(&v).map_err(|e| format!("line {ln}: summary {e}"))?;
                saw_summary = true;
            }
            _ => {}
        }
    }
    if !saw_summary {
        return Err("no summary record (stream truncated?)".to_string());
    }
    if closes == 0 {
        return Err("no span_close records to check the memory contract on".to_string());
    }
    Ok((closes, counter_samples))
}

/// Requires a supported `schema_version` on `v`.
fn check_schema_version(v: &Json) -> Result<u32, String> {
    let version = v
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or("has no schema_version (artifact predates the telemetry contract)")?
        as u32;
    if version > lacr_obs::SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} is newer than this tool's {}",
            lacr_obs::SCHEMA_VERSION
        ));
    }
    Ok(version)
}

/// Requires full provenance (`schema_version`, `threads`, `git_rev`) on
/// a perf-record artifact.
fn check_provenance(v: &Json) -> Result<(), String> {
    check_schema_version(v)?;
    v.get("threads")
        .and_then(Json::as_num)
        .ok_or("record has no numeric threads field")?;
    v.get("git_rev")
        .and_then(Json::as_str)
        .ok_or("record has no git_rev field")?;
    Ok(())
}

/// Validates a `BENCH_*.json` perf record: provenance only — the body
/// shape is bench-specific. Returns the bench name.
fn check_bench_record(text: &str) -> Result<String, String> {
    let v = parse_json(text)?;
    check_provenance(&v)?;
    Ok(v.get("bench")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string())
}

/// Validates a `RUN_*.json` solution-quality artifact: provenance plus
/// a `quality` block with every gated metric on each circuit entry.
/// Returns (bench, circuits).
fn check_run_record(text: &str) -> Result<(String, usize), String> {
    let v = parse_json(text)?;
    check_provenance(&v)?;
    let circuits = v
        .get("circuits")
        .and_then(Json::as_arr)
        .ok_or("run record has no circuits array")?;
    for c in circuits {
        let name = c
            .get("circuit")
            .and_then(Json::as_str)
            .ok_or("circuit entry without a name")?;
        let q = c
            .get("quality")
            .ok_or(format!("{name}: circuit entry without a quality block"))?;
        for &metric in REQUIRED_RUN_METRICS {
            q.get(metric)
                .and_then(Json::as_num)
                .ok_or(format!("{name}: quality block missing {metric}"))?;
        }
        q.get("n_foa_trajectory")
            .and_then(Json::as_arr)
            .filter(|t| !t.is_empty())
            .ok_or(format!("{name}: quality block missing n_foa_trajectory"))?;
    }
    Ok((
        v.get("bench")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        circuits.len(),
    ))
}

/// Validates a transcript of `lacr serve` response lines: every line is
/// one JSON object with an `id` (string, or null for requests whose id
/// was unrecoverable — malformed or oversized lines) and a `status`
/// from the response taxonomy. Each status implies its payload:
/// `ok`/`degraded` carry a `plan` block with a non-empty `text` array
/// (and `degraded` a non-empty `degradations` array), `error` carries
/// `error.kind`/`error.message`, `rejected` carries a `reason`, and
/// `stats` carries the snapshot blocks (`requests`/`pool`/`latency`/
/// `cache`/`connections`/`flight` — deep-validated by `--stats`).
/// Returns (responses, per-status counts in taxonomy order).
fn check_serve_transcript(text: &str) -> Result<(usize, [usize; 5]), String> {
    const STATUSES: [&str; 5] = ["ok", "degraded", "error", "rejected", "stats"];
    const ERROR_KINDS: [&str; 3] = ["bad-request", "plan", "panic"];
    const REJECT_REASONS: [&str; 4] = [
        "overloaded",
        "oversized",
        "shutting-down",
        "connection-limit",
    ];
    let mut counts = [0usize; 5];
    let mut responses = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {ln}: {e}"))?;
        responses += 1;
        match v.get("id") {
            Some(Json::Str(_)) | Some(Json::Null) => {}
            other => {
                return Err(format!(
                    "line {ln}: id must be a string or null, got {other:?}"
                ))
            }
        }
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .ok_or(format!("line {ln}: response without status"))?;
        let slot = STATUSES
            .iter()
            .position(|s| *s == status)
            .ok_or(format!("line {ln}: unknown status {status:?}"))?;
        counts[slot] += 1;
        match status {
            "ok" | "degraded" => {
                let plan = v
                    .get("plan")
                    .ok_or(format!("line {ln}: {status} response without a plan block"))?;
                plan.get("text")
                    .and_then(Json::as_arr)
                    .filter(|t| !t.is_empty())
                    .ok_or(format!("line {ln}: plan block without text lines"))?;
                if status == "degraded" {
                    v.get("degradations")
                        .and_then(Json::as_arr)
                        .filter(|d| !d.is_empty())
                        .ok_or(format!("line {ln}: degraded response without reasons"))?;
                }
            }
            "error" => {
                let e = v
                    .get("error")
                    .ok_or(format!("line {ln}: error response without error block"))?;
                let kind = e
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {ln}: error block without kind"))?;
                if !ERROR_KINDS.contains(&kind) {
                    return Err(format!("line {ln}: unknown error kind {kind:?}"));
                }
                e.get("message")
                    .and_then(Json::as_str)
                    .filter(|m| !m.is_empty())
                    .ok_or(format!("line {ln}: error block without message"))?;
            }
            "rejected" => {
                let reason = v
                    .get("reason")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {ln}: rejected response without reason"))?;
                if !REJECT_REASONS.contains(&reason) {
                    return Err(format!("line {ln}: unknown rejection reason {reason:?}"));
                }
            }
            _ => {
                check_schema_version(&v).map_err(|e| format!("line {ln}: stats {e}"))?;
                for block in [
                    "requests",
                    "pool",
                    "latency",
                    "cache",
                    "connections",
                    "flight",
                ] {
                    v.get(block)
                        .ok_or(format!("line {ln}: stats response without {block} block"))?;
                }
            }
        }
    }
    if responses == 0 {
        return Err("no response lines (daemon produced no output?)".to_string());
    }
    Ok((responses, counts))
}

/// Numeric leaf at `path` inside a stats snapshot, or an error naming
/// the missing key.
fn stats_num(v: &Json, path: &[&str]) -> Result<f64, String> {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .ok_or_else(|| format!("snapshot missing {}", path.join(".")))?;
    }
    cur.as_num()
        .ok_or_else(|| format!("{} is not a number", path.join(".")))
}

/// Counters that must never decrease across successive snapshots from
/// one daemon: the request totals, the pool's lifetime counters, the
/// plan-cache and connection counters, and the flight-recorder dump
/// count.
const MONOTONE_COUNTERS: &[&[&str]] = &[
    &["requests", "received"],
    &["requests", "ok"],
    &["requests", "degraded"],
    &["requests", "error"],
    &["requests", "rejected"],
    &["requests", "completed"],
    &["pool", "shed_total"],
    &["pool", "completed_total"],
    &["pool", "panics"],
    &["cache", "hits"],
    &["cache", "misses"],
    &["cache", "evictions"],
    &["connections", "accepted_total"],
    &["connections", "shed_total"],
    &["flight", "dumps"],
    &["uptime_us"],
];

/// Validates one or more `lacr serve` stats snapshots, one JSON object
/// per line (ordered oldest first, as both the `{"cmd":"stats"}`
/// response stream and the periodic heartbeat emit them). Checks the
/// contract every snapshot promises — required keys, status counts
/// summing to completed, non-negative gauges, `queued <= capacity`,
/// ordered percentiles — and that every lifetime counter is monotone
/// non-decreasing across the sequence. Returns the snapshot count.
fn check_stats_lines(text: &str) -> Result<usize, String> {
    let mut snapshots = 0usize;
    let mut prev: Option<Json> = None;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {ln}: {e}"))?;
        snapshots += 1;
        if v.get("status").and_then(Json::as_str) != Some("stats") {
            return Err(format!("line {ln}: not a stats snapshot (status != stats)"));
        }
        let version = check_schema_version(&v).map_err(|e| format!("line {ln}: {e}"))?;
        let num = |path: &[&str]| stats_num(&v, path).map_err(|e| format!("line {ln}: {e}"));
        // Request accounting: the status counts partition completed
        // requests, and nothing finishes that was never received.
        let ok = num(&["requests", "ok"])?;
        let degraded = num(&["requests", "degraded"])?;
        let error = num(&["requests", "error"])?;
        let rejected = num(&["requests", "rejected"])?;
        let received = num(&["requests", "received"])?;
        let completed = num(&["requests", "completed"])?;
        if completed != ok + degraded + error {
            return Err(format!(
                "line {ln}: completed {completed} != ok {ok} + degraded {degraded} \
                 + error {error}"
            ));
        }
        if completed + rejected > received {
            return Err(format!(
                "line {ln}: completed {completed} + rejected {rejected} exceeds \
                 received {received}"
            ));
        }
        // Pool gauges: instantaneous, but never negative, and the queue
        // never reports beyond its own capacity.
        let queued = num(&["pool", "queued"])?;
        let capacity = num(&["pool", "capacity"])?;
        if queued > capacity {
            return Err(format!("line {ln}: queued {queued} > capacity {capacity}"));
        }
        for path in [
            ["pool", "workers"],
            ["pool", "inflight"],
            ["pool", "shed_total"],
            ["pool", "completed_total"],
            ["pool", "panics"],
            ["cache", "hits"],
            ["cache", "misses"],
            ["cache", "evictions"],
            ["connections", "active"],
            ["connections", "accepted_total"],
            ["connections", "shed_total"],
            ["connections", "max"],
            ["flight", "dumps"],
            ["flight", "capacity"],
        ] {
            let n = num(&path)?;
            if n < 0.0 {
                return Err(format!("line {ln}: {} is negative ({n})", path.join(".")));
            }
        }
        // The plan cache never reports residency beyond its own caps.
        let cache_entries = num(&["cache", "entries"])?;
        let cache_max_entries = num(&["cache", "max_entries"])?;
        if cache_entries > cache_max_entries {
            return Err(format!(
                "line {ln}: cache entries {cache_entries} > max_entries {cache_max_entries}"
            ));
        }
        let cache_bytes = num(&["cache", "bytes"])?;
        let cache_max_bytes = num(&["cache", "max_bytes"])?;
        if cache_bytes > cache_max_bytes {
            return Err(format!(
                "line {ln}: cache bytes {cache_bytes} > max_bytes {cache_max_bytes}"
            ));
        }
        // Schema 2 snapshots carry the allocator block and the cache's
        // audited byte count; schema-1 archives predate both.
        if version >= 2 {
            let live = num(&["mem", "live_bytes"])?;
            let peak = num(&["mem", "peak_bytes"])?;
            if peak < live {
                return Err(format!(
                    "line {ln}: mem.peak_bytes {peak} below mem.live_bytes {live}"
                ));
            }
            for path in [
                ["mem", "allocs"],
                ["mem", "deallocs"],
                ["mem", "peak_rss_bytes"],
                ["mem", "cache_bytes_actual"],
                ["cache", "bytes_actual"],
            ] {
                let n = num(&path)?;
                if n < 0.0 {
                    return Err(format!("line {ln}: {} is negative ({n})", path.join(".")));
                }
            }
        }
        // Rolling latency: both windows carry ordered percentiles.
        num(&["latency", "window_us"])?;
        for block in ["queue_wait_us", "service_us"] {
            let p50 = num(&["latency", block, "p50"])?;
            let p95 = num(&["latency", block, "p95"])?;
            let p99 = num(&["latency", block, "p99"])?;
            if !(p50 <= p95 && p95 <= p99) {
                return Err(format!(
                    "line {ln}: {block} percentiles out of order \
                     (p50 {p50}, p95 {p95}, p99 {p99})"
                ));
            }
        }
        if let Some(p) = &prev {
            for path in MONOTONE_COUNTERS {
                let before = stats_num(p, path).map_err(|e| format!("line {ln}: {e}"))?;
                let after = stats_num(&v, path).map_err(|e| format!("line {ln}: {e}"))?;
                if after < before {
                    return Err(format!(
                        "line {ln}: {} went backwards ({before} -> {after})",
                        path.join(".")
                    ));
                }
            }
            // Allocator lifetime counters are monotone too, but only
            // when both snapshots are schema-2 (a v1 -> v2 boundary in
            // an archive has nothing to compare).
            for path in [
                &["mem", "allocs"][..],
                &["mem", "deallocs"],
                &["mem", "peak_bytes"],
                &["mem", "peak_rss_bytes"],
            ] {
                if let (Ok(before), Ok(after)) = (stats_num(p, path), stats_num(&v, path)) {
                    if after < before {
                        return Err(format!(
                            "line {ln}: {} went backwards ({before} -> {after})",
                            path.join(".")
                        ));
                    }
                }
            }
        }
        prev = Some(v);
    }
    if snapshots == 0 {
        return Err("no stats snapshots (daemon produced no output?)".to_string());
    }
    Ok(snapshots)
}

/// Validates a Chrome trace-event file from `--trace-chrome`: the
/// `traceEvents` array is present and non-empty, every event carries
/// `name`/`ph`/`ts`/`pid`/`tid` with a known phase, and the `B`/`E`
/// duration events balance like parentheses — matching names, LIFO
/// order — within each `(pid, tid)` lane. Returns (events, lanes).
fn check_chrome_trace(text: &str) -> Result<(usize, usize), String> {
    const KNOWN_PHASES: [&str; 5] = ["B", "E", "C", "i", "M"];
    let v = parse_json(text)?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("no traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".to_string());
    }
    // Per-(pid, tid) open-span stacks; B pushes, E must pop its match.
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<String>> =
        std::collections::BTreeMap::new();
    let mut last_ts_per_lane: std::collections::BTreeMap<(u64, u64), f64> =
        std::collections::BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let ctx = |what: &str| format!("event {i}: {what}");
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("no name"))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("no ph"))?;
        if !KNOWN_PHASES.contains(&ph) {
            return Err(ctx(&format!("unknown phase {ph:?}")));
        }
        let ts = e
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("no ts"))?;
        if ts < 0.0 {
            return Err(ctx(&format!("negative ts {ts}")));
        }
        let pid = e
            .get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("no pid"))? as u64;
        let tid = e
            .get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("no tid"))? as u64;
        let lane = (pid, tid);
        // Timestamps never run backwards within a lane (metadata events
        // are pinned at ts 0 and exempt).
        if ph != "M" {
            let last = last_ts_per_lane.entry(lane).or_insert(0.0);
            if ts < *last {
                return Err(ctx(&format!("ts {ts} before lane high-water {last}")));
            }
            *last = ts;
        }
        match ph {
            "B" => stacks.entry(lane).or_default().push(name.to_string()),
            "E" => {
                let open = stacks
                    .entry(lane)
                    .or_default()
                    .pop()
                    .ok_or_else(|| ctx("E with no open B in its lane"))?;
                if open != name {
                    return Err(ctx(&format!("E {name:?} does not match open B {open:?}")));
                }
            }
            _ => {}
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "lane ({pid}, {tid}) ends with span {open:?} still open"
            ));
        }
    }
    Ok((events.len(), stacks.len()))
}

/// Validates a flight-recorder postmortem dump: a versioned header line
/// with a `reason` and an `events` count that matches the number of
/// body lines; every body line a known record type. Returns (reason,
/// events).
fn check_flight_dump(text: &str) -> Result<(String, usize), String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty flight dump")?;
    let h = parse_json(header).map_err(|e| format!("header: {e}"))?;
    if h.get("t").and_then(Json::as_str) != Some("flight") {
        return Err("header is not a {\"t\":\"flight\"} record".to_string());
    }
    check_schema_version(&h).map_err(|e| format!("header {e}"))?;
    let reason = h
        .get("reason")
        .and_then(Json::as_str)
        .ok_or("header has no reason")?
        .to_string();
    let declared = h
        .get("events")
        .and_then(Json::as_num)
        .ok_or("header has no events count")? as usize;
    let mut body = 0usize;
    for (ln, line) in lines.enumerate() {
        let ln = ln + 2;
        let v = parse_json(line).map_err(|e| format!("line {ln}: {e}"))?;
        let t = v
            .get("t")
            .and_then(Json::as_str)
            .ok_or(format!("line {ln}: missing \"t\" tag"))?;
        // A dump is a raw ring snapshot: any record type except the
        // stream-final summary may appear, in any order.
        if !KNOWN_TYPES.contains(&t) || t == "summary" {
            return Err(format!("line {ln}: unknown record type {t:?}"));
        }
        body += 1;
    }
    if body != declared {
        return Err(format!(
            "header declares {declared} events but the body has {body}"
        ));
    }
    Ok((reason, body))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [path] => ("--stream", path.as_str()),
        [mode, path]
            if matches!(
                mode.as_str(),
                "--run" | "--bench" | "--flight" | "--serve" | "--stats" | "--chrome" | "--mem"
            ) =>
        {
            (mode.as_str(), path.as_str())
        }
        _ => {
            eprintln!(
                "usage: check_metrics \
                 [--run|--bench|--flight|--serve|--stats|--chrome|--mem] <file>"
            );
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match mode {
        "--run" => check_run_record(&text).map(|(bench, circuits)| {
            format!("run record for {bench:?}: {circuits} circuit(s) with quality blocks")
        }),
        "--bench" => check_bench_record(&text).map(|bench| format!("bench record for {bench:?}")),
        "--flight" => check_flight_dump(&text)
            .map(|(reason, events)| format!("flight dump ({reason:?}): {events} record(s)")),
        "--serve" => {
            check_serve_transcript(&text).map(|(responses, [ok, deg, err, rej, stats])| {
                format!(
                    "serve transcript: {responses} response(s) \
                     ({ok} ok, {deg} degraded, {err} error, {rej} rejected, {stats} stats)"
                )
            })
        }
        "--stats" => check_stats_lines(&text)
            .map(|snapshots| format!("stats snapshots: {snapshots} consistent snapshot(s)")),
        "--chrome" => check_chrome_trace(&text).map(|(events, lanes)| {
            format!("chrome trace: {events} event(s), {lanes} lane(s), B/E balanced")
        }),
        "--mem" => check_mem_stream(&text).map(|(closes, counters)| {
            format!(
                "memory contract: {closes} span close(s) with mem.* keys, \
                 peak >= live throughout, {counters} monotone mem.allocs sample(s)"
            )
        }),
        _ => check_stream(&text).map(|(records, spans, par_regions)| {
            format!(
                "{records} records, {spans} spans, \
                 {par_regions} parallel regions, summary present"
            )
        }),
    };
    match outcome {
        Ok(msg) => {
            println!("{path}: ok — {msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_stream() {
        let stream = "\
{\"t\":\"span_open\",\"us\":1,\"name\":\"a\",\"depth\":0,\"attrs\":{}}
{\"t\":\"counter\",\"us\":2,\"name\":\"c\",\"delta\":1,\"total\":1}
{\"t\":\"span_close\",\"us\":3,\"name\":\"a\",\"depth\":0,\"incl_us\":2,\"excl_us\":2}
{\"t\":\"summary\",\"schema_version\":1}
";
        assert_eq!(check_stream(stream).unwrap(), (4, 1, 0));
    }

    #[test]
    fn enforces_the_par_counter_contract() {
        // Well-formed region: items == summed par.tasks deltas, counters
        // inside the span, no par.steal at one thread.
        let good = "\
{\"t\":\"span_open\",\"us\":1,\"name\":\"par.region\",\"depth\":0,\"attrs\":{\"region\":\"r\",\"items\":3,\"threads\":2}}
{\"t\":\"counter\",\"us\":2,\"name\":\"par.tasks\",\"delta\":3,\"total\":3}
{\"t\":\"counter\",\"us\":3,\"name\":\"par.steal\",\"delta\":1,\"total\":1}
{\"t\":\"span_close\",\"us\":4,\"name\":\"par.region\",\"depth\":0,\"incl_us\":3,\"excl_us\":3}
{\"t\":\"summary\",\"schema_version\":1}
";
        assert_eq!(check_stream(good).unwrap(), (5, 1, 1));

        let short = "\
{\"t\":\"span_open\",\"us\":1,\"name\":\"par.region\",\"depth\":0,\"attrs\":{\"region\":\"r\",\"items\":3,\"threads\":1}}
{\"t\":\"counter\",\"us\":2,\"name\":\"par.tasks\",\"delta\":2,\"total\":2}
{\"t\":\"span_close\",\"us\":3,\"name\":\"par.region\",\"depth\":0,\"incl_us\":2,\"excl_us\":2}
{\"t\":\"summary\",\"schema_version\":1}
";
        assert!(check_stream(short).unwrap_err().contains("does not match"));

        let orphan_counter = "\
{\"t\":\"counter\",\"us\":1,\"name\":\"par.tasks\",\"delta\":1,\"total\":1}
{\"t\":\"summary\",\"schema_version\":1}
";
        assert!(check_stream(orphan_counter)
            .unwrap_err()
            .contains("outside any par.region"));

        let no_items = "\
{\"t\":\"span_open\",\"us\":1,\"name\":\"par.region\",\"depth\":0,\"attrs\":{\"region\":\"r\",\"threads\":2}}
{\"t\":\"span_close\",\"us\":2,\"name\":\"par.region\",\"depth\":0,\"incl_us\":1,\"excl_us\":1}
{\"t\":\"summary\",\"schema_version\":1}
";
        assert!(check_stream(no_items)
            .unwrap_err()
            .contains("without numeric items"));
    }

    #[test]
    fn enforces_the_retime_substrate_contract() {
        // Two probes: the first builds the substrate, the second hits
        // the cache. A cache hit outside the span (planner reuse) does
        // not count toward any search.
        let good = "\
{\"t\":\"span_open\",\"us\":1,\"name\":\"retime.min_period\",\"depth\":0,\"attrs\":{}}
{\"t\":\"counter\",\"us\":2,\"name\":\"retime.probe\",\"delta\":1,\"total\":1}
{\"t\":\"span_open\",\"us\":3,\"name\":\"retime.wd_build\",\"depth\":1,\"attrs\":{}}
{\"t\":\"span_close\",\"us\":4,\"name\":\"retime.wd_build\",\"depth\":1,\"incl_us\":1,\"excl_us\":1}
{\"t\":\"counter\",\"us\":5,\"name\":\"retime.probe\",\"delta\":1,\"total\":2}
{\"t\":\"counter\",\"us\":6,\"name\":\"retime.wd_cache_hits\",\"delta\":1,\"total\":1}
{\"t\":\"span_close\",\"us\":7,\"name\":\"retime.min_period\",\"depth\":0,\"incl_us\":6,\"excl_us\":5}
{\"t\":\"counter\",\"us\":8,\"name\":\"retime.wd_cache_hits\",\"delta\":1,\"total\":2}
{\"t\":\"summary\",\"schema_version\":1}
";
        assert_eq!(check_stream(good).unwrap(), (9, 2, 0));

        // A probe with neither a cache hit nor a build is a contract
        // violation (the substrate was silently bypassed).
        let bypassed = "\
{\"t\":\"span_open\",\"us\":1,\"name\":\"retime.min_period\",\"depth\":0,\"attrs\":{}}
{\"t\":\"counter\",\"us\":2,\"name\":\"retime.probe\",\"delta\":2,\"total\":2}
{\"t\":\"counter\",\"us\":3,\"name\":\"retime.wd_cache_hits\",\"delta\":1,\"total\":1}
{\"t\":\"span_close\",\"us\":4,\"name\":\"retime.min_period\",\"depth\":0,\"incl_us\":3,\"excl_us\":3}
{\"t\":\"summary\",\"schema_version\":1}
";
        let err = check_stream(bypassed).unwrap_err();
        assert!(err.contains("2 substrate probe(s)"), "{err}");

        // Host-free searches: FEAS probes only, both sides zero.
        let host_free = "\
{\"t\":\"span_open\",\"us\":1,\"name\":\"retime.min_period\",\"depth\":0,\"attrs\":{}}
{\"t\":\"counter\",\"us\":2,\"name\":\"retime.feas_probes\",\"delta\":4,\"total\":4}
{\"t\":\"span_close\",\"us\":3,\"name\":\"retime.min_period\",\"depth\":0,\"incl_us\":2,\"excl_us\":2}
{\"t\":\"summary\",\"schema_version\":1}
";
        assert!(check_stream(host_free).is_ok());
    }

    #[test]
    fn enforces_the_memory_contract() {
        // Well-formed: every close carries the mem keys, peak >= live,
        // and mem.allocs totals climb.
        let good = "\
{\"t\":\"span_open\",\"us\":1,\"name\":\"a\",\"depth\":0,\"attrs\":{}}
{\"t\":\"span_open\",\"us\":2,\"name\":\"b\",\"depth\":1,\"attrs\":{}}
{\"t\":\"span_close\",\"us\":3,\"name\":\"b\",\"depth\":1,\"incl_us\":1,\"excl_us\":1,\"mem.self_bytes\":128,\"mem.live_bytes\":4096,\"mem.peak_bytes\":8192,\"mem.allocs\":3}
{\"t\":\"counter\",\"us\":4,\"name\":\"mem.allocs\",\"delta\":3,\"total\":3}
{\"t\":\"span_close\",\"us\":5,\"name\":\"a\",\"depth\":0,\"incl_us\":4,\"excl_us\":3,\"mem.self_bytes\":-64,\"mem.live_bytes\":4000,\"mem.peak_bytes\":8192,\"mem.allocs\":5}
{\"t\":\"counter\",\"us\":6,\"name\":\"mem.allocs\",\"delta\":5,\"total\":8}
{\"t\":\"summary\",\"schema_version\":2}
";
        assert_eq!(check_mem_stream(good).unwrap(), (2, 2));

        // A close missing any mem key fails by name.
        let keyless = "\
{\"t\":\"span_close\",\"us\":1,\"name\":\"a\",\"depth\":0,\"incl_us\":1,\"excl_us\":1,\"mem.self_bytes\":0,\"mem.live_bytes\":0,\"mem.allocs\":0}
{\"t\":\"summary\",\"schema_version\":2}
";
        let err = check_mem_stream(keyless).unwrap_err();
        assert!(err.contains("missing mem.peak_bytes"), "{err}");

        // The allocator loads live before peak: peak < live at any
        // sample means the record was fabricated.
        let inverted = good.replace(
            "\"mem.peak_bytes\":8192,\"mem.allocs\":5",
            "\"mem.peak_bytes\":100,\"mem.allocs\":5",
        );
        let err = check_mem_stream(&inverted).unwrap_err();
        assert!(err.contains("below mem.live_bytes"), "{err}");

        // mem.allocs counter totals never run backwards.
        let rewound = good.replace("\"delta\":5,\"total\":8", "\"delta\":5,\"total\":1");
        let err = check_mem_stream(&rewound).unwrap_err();
        assert!(err.contains("went backwards"), "{err}");

        // Negative per-span alloc counts are impossible.
        let negative = good.replace("\"mem.allocs\":3}", "\"mem.allocs\":-3}");
        let err = check_mem_stream(&negative).unwrap_err();
        assert!(err.contains("negative mem.allocs"), "{err}");

        // A stream with no closes proves nothing — reject it.
        let empty = "{\"t\":\"summary\",\"schema_version\":2}\n";
        assert!(check_mem_stream(empty)
            .unwrap_err()
            .contains("no span_close"));
        assert!(check_mem_stream("").unwrap_err().contains("no summary"));
    }

    #[test]
    fn rejects_orphaned_open_and_mismatched_close() {
        let orphan = "{\"t\":\"span_open\",\"us\":1,\"name\":\"a\",\"depth\":0,\"attrs\":{}}\n{\"t\":\"summary\",\"schema_version\":1}\n";
        assert!(check_stream(orphan).unwrap_err().contains("still open"));
        let mismatch = "\
{\"t\":\"span_open\",\"us\":1,\"name\":\"a\",\"depth\":0,\"attrs\":{}}
{\"t\":\"span_close\",\"us\":2,\"name\":\"b\",\"depth\":0,\"incl_us\":1,\"excl_us\":1}
{\"t\":\"summary\",\"schema_version\":1}
";
        assert!(check_stream(mismatch)
            .unwrap_err()
            .contains("does not match"));
    }

    #[test]
    fn requires_summary_last() {
        assert!(check_stream("").unwrap_err().contains("no summary"));
        let after = "{\"t\":\"summary\",\"schema_version\":1}\n{\"t\":\"event\",\"us\":1,\"name\":\"x\",\"attrs\":{}}\n";
        assert!(check_stream(after)
            .unwrap_err()
            .contains("after the summary"));
    }

    #[test]
    fn rejects_unversioned_summaries() {
        let legacy = "{\"t\":\"summary\"}\n";
        assert!(check_stream(legacy).unwrap_err().contains("schema_version"));
        let future = "{\"t\":\"summary\",\"schema_version\":999}\n";
        assert!(check_stream(future).unwrap_err().contains("newer"));
    }

    #[test]
    fn validates_run_and_bench_records() {
        let run = include_str!("../../tests/fixtures/run_base.json");
        assert_eq!(check_run_record(run).unwrap(), ("table1".into(), 3));
        assert_eq!(check_bench_record(run).unwrap(), "table1");
        let unversioned = "{\"bench\":\"table1\",\"threads\":4,\"git_rev\":\"ab\",\"circuits\":[]}";
        assert!(check_run_record(unversioned)
            .unwrap_err()
            .contains("schema_version"));
        let no_quality = "{\"schema_version\":1,\"bench\":\"t\",\"threads\":1,\
                          \"git_rev\":\"ab\",\"circuits\":[{\"circuit\":\"s344\"}]}";
        assert!(check_run_record(no_quality)
            .unwrap_err()
            .contains("quality block"));
        let no_rev = "{\"schema_version\":1,\"bench\":\"t\",\"threads\":1,\"circuits\":[]}";
        assert!(check_bench_record(no_rev).unwrap_err().contains("git_rev"));
    }

    #[test]
    fn validates_serve_transcripts() {
        let good = "\
{\"id\":\"a\",\"status\":\"ok\",\"plan\":{\"text\":[\"s: T_init 1.00 ns\"]},\"queue_ms\":0,\"plan_ms\":3}
{\"id\":\"b\",\"status\":\"degraded\",\"plan\":{\"text\":[\"s: T_init 1.00 ns\"]},\"degradations\":[\"[lac] over budget\"]}
{\"id\":null,\"status\":\"error\",\"error\":{\"kind\":\"bad-request\",\"message\":\"no spec\"}}
{\"id\":\"c\",\"status\":\"error\",\"error\":{\"kind\":\"panic\",\"message\":\"boom\",\"flight\":\"req-c.jsonl\"}}
{\"id\":\"d\",\"status\":\"rejected\",\"reason\":\"overloaded\",\"queued\":4,\"capacity\":4}
{\"id\":null,\"status\":\"rejected\",\"reason\":\"connection-limit\",\"active\":64,\"max\":64}
";
        assert_eq!(check_serve_transcript(good).unwrap(), (6, [1, 1, 2, 2, 0]));

        // Each status must carry the payload it promises.
        let bare_ok = "{\"id\":\"a\",\"status\":\"ok\"}\n";
        assert!(check_serve_transcript(bare_ok)
            .unwrap_err()
            .contains("plan block"));
        let silent_degrade = "{\"id\":\"a\",\"status\":\"degraded\",\"plan\":{\"text\":[\"x\"]}}\n";
        assert!(check_serve_transcript(silent_degrade)
            .unwrap_err()
            .contains("without reasons"));
        let kindless = "{\"id\":\"a\",\"status\":\"error\",\"error\":{\"message\":\"m\"}}\n";
        assert!(check_serve_transcript(kindless)
            .unwrap_err()
            .contains("without kind"));
        let odd_reason = "{\"id\":\"a\",\"status\":\"rejected\",\"reason\":\"tuesday\"}\n";
        assert!(check_serve_transcript(odd_reason)
            .unwrap_err()
            .contains("unknown rejection reason"));
        let numeric_id = "{\"id\":7,\"status\":\"ok\",\"plan\":{\"text\":[\"x\"]}}\n";
        assert!(check_serve_transcript(numeric_id)
            .unwrap_err()
            .contains("string or null"));
        assert!(check_serve_transcript("")
            .unwrap_err()
            .contains("no response"));

        // A stats response is part of the taxonomy and must carry its
        // snapshot blocks.
        let with_stats = format!("{}{}", good, stats_snapshot(1, 1, 0, 0, 0));
        assert_eq!(
            check_serve_transcript(&with_stats).unwrap(),
            (7, [1, 1, 2, 2, 1])
        );
        // The snapshot must carry the cache and connection blocks too.
        let no_cache = stats_snapshot(1, 1, 0, 0, 0).replace("\"cache\"", "\"cachette\"");
        assert!(check_serve_transcript(&no_cache)
            .unwrap_err()
            .contains("without cache block"));
        let bare_stats = "{\"id\":null,\"status\":\"stats\",\"schema_version\":1}\n";
        assert!(check_serve_transcript(bare_stats)
            .unwrap_err()
            .contains("without requests block"));
    }

    /// One schema-valid stats snapshot line with the given request
    /// counts (received, ok, degraded, error, rejected).
    fn stats_snapshot(received: u64, ok: u64, degraded: u64, error: u64, rejected: u64) -> String {
        let completed = ok + degraded + error;
        format!(
            "{{\"id\":null,\"status\":\"stats\",\"schema_version\":1,\"uptime_us\":{},\
             \"requests\":{{\"received\":{received},\"ok\":{ok},\"degraded\":{degraded},\
             \"error\":{error},\"rejected\":{rejected},\"completed\":{completed}}},\
             \"pool\":{{\"workers\":2,\"capacity\":8,\"queued\":0,\"inflight\":0,\
             \"shed_total\":{rejected},\"completed_total\":{completed},\"panics\":0}},\
             \"latency\":{{\"window_us\":60000000,\
             \"queue_wait_us\":{{\"count\":{completed},\"rate_per_sec\":0.5,\"mean_us\":10,\
             \"p50\":8,\"p95\":16,\"p99\":16,\"max\":12}},\
             \"service_us\":{{\"count\":{completed},\"rate_per_sec\":0.5,\"mean_us\":900,\
             \"p50\":1024,\"p95\":1024,\"p99\":2048,\"max\":1400}}}},\
             \"cache\":{{\"entries\":1,\"bytes\":512,\"max_entries\":128,\
             \"max_bytes\":16777216,\"hits\":{degraded},\"misses\":{completed},\
             \"evictions\":0}},\
             \"connections\":{{\"active\":1,\"accepted_total\":{received},\
             \"shed_total\":0,\"max\":64}},\
             \"flight\":{{\"dumps\":0,\"capacity\":4096}}}}\n",
            1000 + received * 100
        )
    }

    /// Upgrades a v1 snapshot line to schema 2: the allocator block and
    /// the cache's audited byte count become mandatory there.
    fn upgrade_snapshot(line: &str) -> String {
        line.replace("\"schema_version\":1", "\"schema_version\":2")
            .replace("\"evictions\":0}", "\"evictions\":0,\"bytes_actual\":512}")
            .replace(
                "\"flight\":",
                "\"mem\":{\"live_bytes\":1048576,\"peak_bytes\":4194304,\
                 \"allocs\":1000,\"deallocs\":900,\"peak_rss_bytes\":8388608,\
                 \"cache_bytes_actual\":512},\"flight\":",
            )
    }

    #[test]
    fn schema_2_snapshots_must_carry_the_mem_block() {
        let good = format!(
            "{}{}",
            upgrade_snapshot(&stats_snapshot(2, 1, 0, 0, 0)),
            upgrade_snapshot(&stats_snapshot(5, 3, 1, 0, 1))
                .replace("\"allocs\":1000", "\"allocs\":2000")
        );
        assert_eq!(check_stats_lines(&good).unwrap(), 2);

        // A v2 snapshot without the allocator block is incomplete.
        let block_less =
            stats_snapshot(2, 1, 0, 0, 0).replace("\"schema_version\":1", "\"schema_version\":2");
        let err = check_stats_lines(&block_less).unwrap_err();
        assert!(err.contains("missing mem"), "{err}");

        // The snapshot loads live before peak: peak < live is broken.
        let inverted = upgrade_snapshot(&stats_snapshot(2, 1, 0, 0, 0))
            .replace("\"peak_bytes\":4194304", "\"peak_bytes\":1");
        let err = check_stats_lines(&inverted).unwrap_err();
        assert!(err.contains("below mem.live_bytes"), "{err}");

        // Allocator lifetime counters are monotone across snapshots.
        let rewound = format!(
            "{}{}",
            upgrade_snapshot(&stats_snapshot(2, 1, 0, 0, 0)),
            upgrade_snapshot(&stats_snapshot(5, 3, 1, 0, 1))
                .replace("\"allocs\":1000", "\"allocs\":10")
        );
        let err = check_stats_lines(&rewound).unwrap_err();
        assert!(err.contains("mem.allocs went backwards"), "{err}");

        // v1 archives predate the block and are exempt.
        assert_eq!(
            check_stats_lines(&stats_snapshot(2, 1, 0, 0, 0)).unwrap(),
            1
        );
    }

    #[test]
    fn validates_stats_snapshots() {
        let good = format!(
            "{}{}{}",
            stats_snapshot(2, 1, 0, 0, 0),
            stats_snapshot(5, 3, 1, 0, 1),
            stats_snapshot(9, 5, 2, 1, 1)
        );
        assert_eq!(check_stats_lines(&good).unwrap(), 3);

        // The status counts must partition completed.
        let inconsistent = stats_snapshot(4, 2, 1, 0, 0)
            .replace("\"completed\":3", "\"completed\":4")
            .replace("\"completed_total\":3", "\"completed_total\":4");
        let err = check_stats_lines(&inconsistent).unwrap_err();
        assert!(err.contains("completed 4 != ok 2"), "{err}");

        // Completed + rejected can never exceed received.
        let overcount = stats_snapshot(1, 2, 0, 0, 1);
        assert!(check_stats_lines(&overcount)
            .unwrap_err()
            .contains("exceeds"));

        // Percentiles must be ordered within each latency block.
        let disordered = stats_snapshot(2, 1, 0, 0, 0).replace("\"p95\":16", "\"p95\":4");
        assert!(check_stats_lines(&disordered)
            .unwrap_err()
            .contains("out of order"));

        // The cache never reports residency beyond its caps.
        let overfull = stats_snapshot(2, 1, 0, 0, 0).replace("\"entries\":1", "\"entries\":200");
        let err = check_stats_lines(&overfull).unwrap_err();
        assert!(err.contains("cache entries 200 > max_entries"), "{err}");
        let overweight =
            stats_snapshot(2, 1, 0, 0, 0).replace("\"bytes\":512", "\"bytes\":99999999");
        assert!(check_stats_lines(&overweight)
            .unwrap_err()
            .contains("max_bytes"));

        // Cache counters are lifetime totals: never backwards.
        let cache_rewind = format!(
            "{}{}",
            stats_snapshot(5, 3, 1, 0, 1),
            stats_snapshot(9, 5, 2, 1, 1).replace("\"misses\":8", "\"misses\":2")
        );
        let err = check_stats_lines(&cache_rewind).unwrap_err();
        assert!(err.contains("cache.misses went backwards"), "{err}");

        // Counters never run backwards across successive snapshots.
        let backwards = format!(
            "{}{}",
            stats_snapshot(5, 3, 1, 0, 1),
            stats_snapshot(4, 2, 1, 0, 1)
        );
        assert!(check_stats_lines(&backwards)
            .unwrap_err()
            .contains("went backwards"));

        // Missing keys and empty inputs are structural failures.
        let keyless = "{\"id\":null,\"status\":\"stats\",\"schema_version\":1}\n";
        assert!(check_stats_lines(keyless)
            .unwrap_err()
            .contains("missing requests"));
        assert!(check_stats_lines("").unwrap_err().contains("no stats"));
    }

    #[test]
    fn validates_chrome_traces() {
        let good = r#"{"traceEvents":[
{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"lacr"}},
{"name":"outer","ph":"B","ts":10,"pid":1,"tid":1,"args":{}},
{"name":"inner","ph":"B","ts":20,"pid":1,"tid":1,"args":{}},
{"name":"c","ph":"C","ts":25,"pid":1,"tid":0,"args":{"value":3}},
{"name":"inner","ph":"E","ts":30,"pid":1,"tid":1},
{"name":"mark","ph":"i","ts":35,"pid":1,"tid":1,"s":"t","args":{}},
{"name":"outer","ph":"E","ts":40,"pid":1,"tid":1}
],"displayTimeUnit":"ms"}"#;
        // Lanes with any B/E activity: tid 0 carries only counter and
        // metadata events, so only tid 1 opens a stack... but tid 0
        // still appears once `stacks.entry` is touched — it is not, so
        // one lane.
        assert_eq!(check_chrome_trace(good).unwrap(), (7, 1));

        // Interleaved (not nested) spans violate the stack discipline.
        let crossed = r#"{"traceEvents":[
{"name":"a","ph":"B","ts":1,"pid":1,"tid":1,"args":{}},
{"name":"b","ph":"B","ts":2,"pid":1,"tid":1,"args":{}},
{"name":"a","ph":"E","ts":3,"pid":1,"tid":1},
{"name":"b","ph":"E","ts":4,"pid":1,"tid":1}
]}"#;
        assert!(check_chrome_trace(crossed)
            .unwrap_err()
            .contains("does not match"));

        // A close with no open, and a dangling open, both fail.
        let orphan_close = r#"{"traceEvents":[{"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]}"#;
        assert!(check_chrome_trace(orphan_close)
            .unwrap_err()
            .contains("no open B"));
        let dangling =
            r#"{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":1,"tid":1,"args":{}}]}"#;
        assert!(check_chrome_trace(dangling)
            .unwrap_err()
            .contains("still open"));

        // Same-name spans on different lanes are independent.
        let lanes = r#"{"traceEvents":[
{"name":"a","ph":"B","ts":1,"pid":1,"tid":1,"args":{}},
{"name":"a","ph":"B","ts":2,"pid":1,"tid":2,"args":{}},
{"name":"a","ph":"E","ts":3,"pid":1,"tid":2},
{"name":"a","ph":"E","ts":4,"pid":1,"tid":1}
]}"#;
        assert_eq!(check_chrome_trace(lanes).unwrap(), (4, 2));

        // Timestamps must not run backwards within a lane.
        let rewound = r#"{"traceEvents":[
{"name":"a","ph":"B","ts":10,"pid":1,"tid":1,"args":{}},
{"name":"a","ph":"E","ts":5,"pid":1,"tid":1}
]}"#;
        assert!(check_chrome_trace(rewound)
            .unwrap_err()
            .contains("high-water"));

        assert!(check_chrome_trace("{}")
            .unwrap_err()
            .contains("traceEvents"));
        assert!(check_chrome_trace(r#"{"traceEvents":[]}"#)
            .unwrap_err()
            .contains("empty"));
    }

    #[test]
    fn validates_flight_dumps() {
        let good = "\
{\"t\":\"flight\",\"schema_version\":1,\"reason\":\"panic: boom\",\"events\":2,\"dropped\":0}
{\"t\":\"event\",\"us\":1,\"name\":\"route.pass\",\"attrs\":{}}
{\"t\":\"gauge\",\"us\":2,\"name\":\"lac.n_foa\",\"value\":3}
";
        assert_eq!(check_flight_dump(good).unwrap(), ("panic: boom".into(), 2));
        // Count mismatch between header and body.
        let short = "\
{\"t\":\"flight\",\"schema_version\":1,\"reason\":\"r\",\"events\":2,\"dropped\":0}
{\"t\":\"event\",\"us\":1,\"name\":\"x\",\"attrs\":{}}
";
        assert!(check_flight_dump(short).unwrap_err().contains("declares 2"));
        // A dump never contains a summary record.
        let with_summary = "\
{\"t\":\"flight\",\"schema_version\":1,\"reason\":\"r\",\"events\":1,\"dropped\":0}
{\"t\":\"summary\",\"schema_version\":1}
";
        assert!(check_flight_dump(with_summary)
            .unwrap_err()
            .contains("unknown record type"));
        // Header must be versioned.
        let legacy = "{\"t\":\"flight\",\"reason\":\"r\",\"events\":0,\"dropped\":0}\n";
        assert!(check_flight_dump(legacy)
            .unwrap_err()
            .contains("schema_version"));
        assert!(check_flight_dump("").unwrap_err().contains("empty"));
    }
}
