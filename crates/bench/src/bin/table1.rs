//! Regenerates the paper's **Table 1**: for each benchmark circuit, the
//! clock targets and the min-area vs LAC-retiming comparison
//! (`N_FOA`, `N_F`, `N_FN`, `N_wr`, execution times, `N_FOA` decrease, and
//! the second planning iteration's `N_FOA` in parentheses).
//!
//! ```text
//! cargo run --release -p lacr-bench --bin table1 [circuit ...]
//! ```

use lacr_core::experiment::{format_table, run_experiment, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ExperimentConfig {
        planner: lacr_bench::experiment_planner(),
        ..Default::default()
    };
    if !args.is_empty() {
        config.circuits = args;
    }
    eprintln!(
        "[table1] planning {} circuits (this reruns the full pipeline per circuit)...",
        config.circuits.len()
    );
    let rows = run_experiment(&config);
    println!("{}", format_table(&rows));
    println!(
        "shape checks: LAC beats or matches the baseline on every circuit: {}",
        rows.iter().all(|r| r.lac.n_foa <= r.min_area.n_foa)
    );
    let resolved = rows
        .iter()
        .filter(|r| r.lac.n_foa > 0)
        .filter(|r| matches!(r.second_iteration, Some(Ok(0))))
        .count();
    let unresolved = rows.iter().filter(|r| r.lac.n_foa > 0).count();
    println!(
        "second planning iteration resolved {resolved}/{unresolved} circuits that kept violations"
    );
}
