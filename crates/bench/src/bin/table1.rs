//! Regenerates the paper's **Table 1**: for each benchmark circuit, the
//! clock targets and the min-area vs LAC-retiming comparison
//! (`N_FOA`, `N_F`, `N_FN`, `N_wr`, execution times, `N_FOA` decrease, and
//! the second planning iteration's `N_FOA` in parentheses).
//!
//! Also writes two machine-readable perf records: `BENCH_table1.json`
//! (the historical shape — wall-clock plus per-circuit entries with
//! observability aggregates) and `RUN_table1.json`, whose per-circuit
//! `quality` blocks carry the solution-quality metrics the
//! `bench_compare` regression gate diffs. A `NullSink` collector is
//! installed when no explicit sink is requested, so the quality gauges
//! and histograms are aggregated (cheaply) on every run.
//!
//! ```text
//! cargo run --release -p lacr-bench --bin table1 \
//!     [--quiet] [--trace] [--metrics-out m.jsonl] [circuit ...]
//! ```

use lacr_bench::{quality_json, write_bench_record, write_run_record, ObsOptions};
use lacr_core::experiment::{format_table, run_circuit, ExperimentConfig};
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = ObsOptions::from_args(&mut args);
    obs.install();
    if !lacr_obs::is_enabled() {
        // No sink requested: aggregate quietly so the RUN record still
        // gets its quality blocks.
        lacr_obs::init(Box::new(lacr_obs::NullSink));
    }
    let mut config = ExperimentConfig {
        planner: lacr_bench::experiment_planner(),
        ..Default::default()
    };
    if !args.is_empty() {
        config.circuits = args;
    }
    lacr_obs::diag!(
        "table1: planning {} circuits (this reruns the full pipeline per circuit)...",
        config.circuits.len()
    );
    let t0 = Instant::now();
    let mut rows = Vec::new();
    let mut circuit_records = Vec::new();
    let mut run_records = Vec::new();
    for name in &config.circuits {
        let started = Instant::now();
        let mem_before = lacr_obs::mem::stats();
        match run_circuit(name, &config.planner) {
            Ok(row) => {
                // Per-circuit perf record: reading the aggregates here and
                // resetting them scopes each entry to one circuit's run.
                let report = lacr_obs::take_snapshot();
                let wall_s = started.elapsed().as_secs_f64();
                // Per-circuit memory: the allocator's deltas over this
                // circuit's run, plus the process peak so far (monotone —
                // the high-water mark as of this circuit finishing).
                let mem_after = lacr_obs::mem::stats();
                let mem_json = format!(
                    "\"mem\":{{\"peak_bytes\":{},\"net_bytes\":{},\"allocs\":{}}}",
                    mem_after.peak_bytes,
                    mem_after.live_bytes as i64 - mem_before.live_bytes as i64,
                    mem_after.allocs - mem_before.allocs,
                );
                let obs_json = report
                    .as_ref()
                    .map(|r| format!(",\"obs\":{}", r.to_json()))
                    .unwrap_or_default();
                circuit_records.push(format!(
                    "{{\"circuit\":\"{name}\",\"wall_s\":{wall_s:.3},\"t_clk_ns\":{:.2},\
                     \"base_n_foa\":{},\"lac_n_foa\":{},\"n_wr\":{},{mem_json}{obs_json}}}",
                    row.t_clk_ns, row.min_area.n_foa, row.lac.n_foa, row.n_wr,
                ));
                run_records.push(format!(
                    "{{\"circuit\":\"{name}\",\"wall_s\":{wall_s:.3},{mem_json},\"quality\":{}}}",
                    quality_json(&row, report.as_ref()),
                ));
                rows.push(row);
            }
            Err(e) => lacr_obs::diag!("{name}: {e}"),
        }
    }
    println!("{}", format_table(&rows));
    println!(
        "shape checks: LAC beats or matches the baseline on every circuit: {}",
        rows.iter().all(|r| r.lac.n_foa <= r.min_area.n_foa)
    );
    let resolved = rows
        .iter()
        .filter(|r| r.lac.n_foa > 0)
        .filter(|r| matches!(r.second_iteration, Some(Ok(0))))
        .count();
    let unresolved = rows.iter().filter(|r| r.lac.n_foa > 0).count();
    println!(
        "second planning iteration resolved {resolved}/{unresolved} circuits that kept violations"
    );
    let wall_s = format!("{:.3}", t0.elapsed().as_secs_f64());
    match write_bench_record(
        "table1",
        &[
            ("wall_s", wall_s.clone()),
            ("circuits", format!("[{}]", circuit_records.join(","))),
        ],
    ) {
        Ok(path) => lacr_obs::diag!("perf record written to {path}"),
        Err(e) => lacr_obs::diag!("cannot write perf record: {e}"),
    }
    match write_run_record(
        "table1",
        &[
            ("wall_s", wall_s),
            ("circuits", format!("[{}]", run_records.join(","))),
        ],
    ) {
        Ok(path) => lacr_obs::diag!("quality run record written to {path}"),
        Err(e) => lacr_obs::diag!("cannot write run record: {e}"),
    }
    lacr_obs::finish();
}
