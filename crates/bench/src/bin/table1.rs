//! Regenerates the paper's **Table 1**: for each benchmark circuit, the
//! clock targets and the min-area vs LAC-retiming comparison
//! (`N_FOA`, `N_F`, `N_FN`, `N_wr`, execution times, `N_FOA` decrease, and
//! the second planning iteration's `N_FOA` in parentheses).
//!
//! Also writes a machine-readable perf record to `BENCH_table1.json`,
//! with one entry per circuit (its metrics plus the observability
//! aggregates of its planning run when a sink is installed).
//!
//! ```text
//! cargo run --release -p lacr-bench --bin table1 \
//!     [--quiet] [--trace] [--metrics-out m.jsonl] [circuit ...]
//! ```

use lacr_bench::{write_bench_record, ObsOptions};
use lacr_core::experiment::{format_table, run_circuit, ExperimentConfig};
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = ObsOptions::from_args(&mut args);
    obs.install();
    let mut config = ExperimentConfig {
        planner: lacr_bench::experiment_planner(),
        ..Default::default()
    };
    if !args.is_empty() {
        config.circuits = args;
    }
    lacr_obs::diag!(
        "table1: planning {} circuits (this reruns the full pipeline per circuit)...",
        config.circuits.len()
    );
    let t0 = Instant::now();
    let mut rows = Vec::new();
    let mut circuit_records = Vec::new();
    for name in &config.circuits {
        let started = Instant::now();
        match run_circuit(name, &config.planner) {
            Ok(row) => {
                // Per-circuit perf record: reading the aggregates here and
                // resetting them scopes each entry to one circuit's run.
                let obs_json = lacr_obs::take_snapshot()
                    .map(|r| format!(",\"obs\":{}", r.to_json()))
                    .unwrap_or_default();
                circuit_records.push(format!(
                    "{{\"circuit\":\"{name}\",\"wall_s\":{:.3},\"t_clk_ns\":{:.2},\
                     \"base_n_foa\":{},\"lac_n_foa\":{},\"n_wr\":{}{obs_json}}}",
                    started.elapsed().as_secs_f64(),
                    row.t_clk_ns,
                    row.min_area.n_foa,
                    row.lac.n_foa,
                    row.n_wr,
                ));
                rows.push(row);
            }
            Err(e) => lacr_obs::diag!("{name}: {e}"),
        }
    }
    println!("{}", format_table(&rows));
    println!(
        "shape checks: LAC beats or matches the baseline on every circuit: {}",
        rows.iter().all(|r| r.lac.n_foa <= r.min_area.n_foa)
    );
    let resolved = rows
        .iter()
        .filter(|r| r.lac.n_foa > 0)
        .filter(|r| matches!(r.second_iteration, Some(Ok(0))))
        .count();
    let unresolved = rows.iter().filter(|r| r.lac.n_foa > 0).count();
    println!(
        "second planning iteration resolved {resolved}/{unresolved} circuits that kept violations"
    );
    match write_bench_record(
        "table1",
        &[
            ("wall_s", format!("{:.3}", t0.elapsed().as_secs_f64())),
            ("circuits", format!("[{}]", circuit_records.join(","))),
        ],
    ) {
        Ok(path) => lacr_obs::diag!("perf record written to {path}"),
        Err(e) => lacr_obs::diag!("cannot write perf record: {e}"),
    }
    lacr_obs::finish();
}
