//! The scale campaign: retiming on seeded synthetic netlists far beyond
//! the bench89 suite, proving the sparse W/D substrate and FEAS-probe
//! search hold up at 10^5–10^6 cells.
//!
//! ```text
//! cargo run --release -p lacr-bench --bin bench_scale -- \
//!     [--seed N] [ring:<cells>|mesh:<cells> ...]
//! ```
//!
//! Each spec generates a deterministic abstract netlist
//! ([`lacr_prng::synth`]), lowers it to a host-free [`RetimeGraph`], and
//! runs the full retiming stack under the default (unlimited)
//! [`Budget`]: unretimed period, `min_period_retiming`, pruned
//! constraint generation at the optimum, and one
//! `weighted_min_area_retiming` solve. Per-circuit wall times for every
//! stage land in `BENCH_scale.json` alongside a `quality` block
//! (`t_clk_ns`, `min_area_flops`) so the `bench_compare` gate can diff
//! scale artifacts exactly like Table-1 runs — the topology is a pure
//! function of `(spec, seed)`, so quality is bit-identical across runs.
//!
//! With no specs the default campaign runs: two fast-subset sizes (the
//! ones `scripts/verify.sh --regress` regenerates and gates) plus the
//! flagship >= 100k-cell runs recorded in the committed artifact.

use lacr_core::budget::Budget;
use lacr_prng::synth::{pipelined_mesh, ring_of_rings, SynthNetlist};
use lacr_retime::{
    generate_period_constraints, try_min_period_retiming, weighted_min_area_retiming, RetimeGraph,
    VertexKind,
};
use std::time::Instant;

/// Default campaign: fast-subset sizes first (CI regenerates these),
/// then the flagship scale points.
const DEFAULT_SPECS: &[&str] = &["ring:4096", "mesh:4096", "ring:20000", "mesh:102400"];

fn parse_spec(spec: &str, seed: u64) -> Result<SynthNetlist, String> {
    let (topology, cells) = spec
        .split_once(':')
        .ok_or_else(|| format!("{spec}: expected <topology>:<cells>"))?;
    let cells: usize = cells
        .parse()
        .map_err(|_| format!("{spec}: cell count is not a number"))?;
    match topology {
        "ring" => Ok(ring_of_rings(cells, seed)),
        "mesh" => Ok(pipelined_mesh(cells, seed)),
        other => Err(format!("{other}: unknown topology (ring|mesh)")),
    }
}

/// Lowers an abstract netlist to a host-free retiming graph.
fn lower(net: &SynthNetlist) -> RetimeGraph {
    let mut g = RetimeGraph::new();
    let ids: Vec<_> = net
        .delays_ps
        .iter()
        .map(|&d| g.add_vertex(VertexKind::Functional, d, 1.0, None))
        .collect();
    for e in &net.edges {
        g.add_edge(ids[e.from as usize], ids[e.to as usize], i64::from(e.flops));
    }
    g
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = lacr_bench::ObsOptions::from_args(&mut args);
    obs.install();
    if !lacr_obs::is_enabled() {
        lacr_obs::init(Box::new(lacr_obs::NullSink));
    }
    let mut seed = 2003; // the paper's year; any fixed value works
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        args.remove(pos);
        seed = args
            .get(pos)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--seed needs an integer");
                std::process::exit(2);
            });
        args.remove(pos);
    }
    let specs: Vec<String> = if args.is_empty() {
        DEFAULT_SPECS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    let budget = Budget::unlimited();
    println!(
        "{:<12} | {:>8} {:>8} | {:>8} {:>8} | {:>10} {:>10} | {:>8} {:>8} {:>8} {:>8}",
        "circuit",
        "cells",
        "edges",
        "T_init",
        "T_min",
        "flops_0",
        "flops_min",
        "gen t/s",
        "mp t/s",
        "wd t/s",
        "ma t/s"
    );
    let t0 = Instant::now();
    let mut records = Vec::new();
    for spec in &specs {
        let t_gen = Instant::now();
        let mem_before = lacr_obs::mem::stats();
        let net = match parse_spec(spec, seed) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        let graph = lower(&net);
        let gen_s = t_gen.elapsed().as_secs_f64();
        let started = Instant::now();
        let t_init = graph
            .clock_period(&graph.weights())
            .expect("synthetic netlists never have combinational cycles");
        let t_mp = Instant::now();
        let mp = try_min_period_retiming(&graph, 0).expect("synthetic netlists retime cleanly");
        let mp_s = t_mp.elapsed().as_secs_f64();
        let t_wd = Instant::now();
        // Host-free searches probe with arrival-time FEAS, so this is
        // the run's single W/D build: the pruned constraint system at
        // the optimum that weighted min-area re-solves.
        let pc = generate_period_constraints(&graph, mp.result.period).expect("no overflow");
        let wd_s = t_wd.elapsed().as_secs_f64();
        let areas: Vec<f64> = graph.vertex_ids().map(|v| graph.area(v)).collect();
        let t_ma = Instant::now();
        let out = weighted_min_area_retiming(&graph, &pc, &areas).expect("optimum is feasible");
        let ma_s = t_ma.elapsed().as_secs_f64();
        let wall_s = started.elapsed().as_secs_f64();
        assert!(!budget.expired(), "{}: blew the default budget", net.name);
        println!(
            "{:<12} | {:>8} {:>8} | {:>8} {:>8} | {:>10} {:>10} | {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            net.name,
            graph.num_vertices(),
            graph.num_edges(),
            t_init,
            mp.result.period,
            graph.total_flops(),
            out.total_flops,
            gen_s,
            mp_s,
            wd_s,
            ma_s,
        );
        let obs_json = lacr_obs::take_snapshot()
            .map(|r| format!(",\"obs\":{}", r.to_json()))
            .unwrap_or_default();
        // Per-size-point memory curve: allocator deltas over this spec
        // (generation through min-area), plus the process peak so far
        // (monotone — the high-water mark as of this point finishing).
        let mem_after = lacr_obs::mem::stats();
        let mem_json = format!(
            "\"mem\":{{\"peak_bytes\":{},\"net_bytes\":{},\"allocs\":{}}}",
            mem_after.peak_bytes,
            mem_after.live_bytes as i64 - mem_before.live_bytes as i64,
            mem_after.allocs - mem_before.allocs,
        );
        records.push(format!(
            "{{\"circuit\":\"{}\",\"wall_s\":{wall_s:.3},\"cells\":{},\"edges\":{},\
             \"t_init_ns\":{:.3},\"min_period_s\":{mp_s:.3},\"wd_build_s\":{wd_s:.3},\
             \"min_area_s\":{ma_s:.3},\"constraints\":{},\"pairs\":{},{mem_json},\
             \"quality\":{{\"t_clk_ns\":{:.3},\"min_area_flops\":{},\"flops_before\":{}}}\
             {obs_json}}}",
            net.name,
            graph.num_vertices(),
            graph.num_edges(),
            t_init as f64 / 1000.0,
            pc.constraints.len(),
            pc.pairs_before_pruning,
            mp.result.period as f64 / 1000.0,
            out.total_flops,
            graph.total_flops(),
        ));
    }
    match lacr_bench::write_bench_record(
        "scale",
        &[
            ("seed", seed.to_string()),
            ("wall_s", format!("{:.3}", t0.elapsed().as_secs_f64())),
            ("circuits", format!("[{}]", records.join(","))),
        ],
    ) {
        Ok(path) => lacr_obs::diag!("scale record written to {path}"),
        Err(e) => lacr_obs::diag!("cannot write scale record: {e}"),
    }
    lacr_obs::finish();
}
