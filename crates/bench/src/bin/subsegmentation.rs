//! Ablation **A3**: interconnect sub-segmentation (§3.2).
//!
//! "Even more flexibility can be introduced if we further divide the
//! interconnect segment between two repeaters into several interconnect
//! units. ... An approach around this problem is to find out the maximum
//! delay of an interconnect segment under all possible ways of inserting
//! flip-flops and assign that delay to the segment. The drawback is that
//! the accuracy of interconnect delay is sacrificed."
//!
//! This ablation compares units-per-span ∈ {1, 2, 4} with conservative
//! (max) delays against the natural segmentation, reporting `T_min`,
//! `T_clk` feasibility, `N_FOA` and the graph size.
//!
//! ```text
//! cargo run --release -p lacr-bench --bin subsegmentation [circuit ...]
//! ```

use lacr_core::expand::ExpandOptions;
use lacr_core::planner::{build_physical_plan, plan_retimings, PlannerConfig};

fn main() {
    let mut circuits: Vec<String> = std::env::args().skip(1).collect();
    let obs = lacr_bench::ObsOptions::from_args(&mut circuits);
    obs.install();
    if circuits.is_empty() {
        circuits = vec!["s953".into(), "s1196".into()];
    }
    let base = lacr_bench::experiment_planner();
    println!(
        "{:<8} {:>5} {:>12} | {:>8} {:>9} {:>9} | {:>6} {:>6}",
        "circuit", "subs", "delays", "vertices", "Tmin/ns", "Tclk/ns", "base", "lac"
    );
    for name in &circuits {
        let circuit = match lacr_netlist::bench89::generate(name) {
            Ok(c) => c,
            Err(e) => {
                lacr_obs::diag!("{e}");
                continue;
            }
        };
        for (subs, conservative) in [(1usize, false), (2, true), (4, true)] {
            let config = PlannerConfig {
                expand: ExpandOptions {
                    units_per_span: subs,
                    conservative_delays: conservative,
                    ..base.expand
                },
                ..base.clone()
            };
            let plan = build_physical_plan(&circuit, &config, &[]);
            match plan_retimings(&plan, &config) {
                Ok(report) => println!(
                    "{name:<8} {subs:>5} {:>12} | {:>8} {:>9.2} {:>9.2} | {:>6} {:>6}",
                    if conservative {
                        "conservative"
                    } else {
                        "exact"
                    },
                    plan.expanded.graph.num_vertices(),
                    plan.t_min as f64 / 1000.0,
                    plan.t_clk as f64 / 1000.0,
                    report.min_area.result.n_foa,
                    report.lac.result.n_foa,
                ),
                Err(e) => println!("{name:<8} {subs:>5}: error: {e}"),
            }
        }
    }
}
