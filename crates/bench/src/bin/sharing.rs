//! Ablation **A5** (extension): fanout register sharing.
//!
//! The paper's min-area objective counts flip-flops per connection
//! (`Σ_e w_r(e)`), treating parallel fanout registers as distinct. The
//! Leiserson–Saxe sharing model counts `Σ_u max_i w_r(u, v_i)` instead —
//! all fanouts of one driver tap a single register chain. This ablation
//! compares both models on the planned circuits: the per-connection
//! optimum scored under sharing, versus the sharing-aware optimum.
//!
//! ```text
//! cargo run --release -p lacr-bench --bin sharing [circuit ...]
//! ```

use lacr_core::planner::{build_physical_plan, plan_constraints};
use lacr_retime::{shared_min_area_retiming, shared_register_count, weighted_min_area_retiming};

fn main() {
    let mut circuits: Vec<String> = std::env::args().skip(1).collect();
    let obs = lacr_bench::ObsOptions::from_args(&mut circuits);
    obs.install();
    if circuits.is_empty() {
        circuits = vec!["s344".into(), "s641".into(), "s953".into()];
    }
    let config = lacr_bench::experiment_planner();
    println!(
        "{:<8} | {:>10} {:>13} | {:>10} {:>13} | {:>7}",
        "circuit", "sum N_F", "scored shared", "shared N_F", "shared regs", "saving"
    );
    for name in &circuits {
        let circuit = match lacr_netlist::bench89::generate(name) {
            Ok(c) => c,
            Err(e) => {
                lacr_obs::diag!("{e}");
                continue;
            }
        };
        let plan = build_physical_plan(&circuit, &config, &[]);
        let pc = plan_constraints(&plan);
        let graph = &plan.expanded.graph;
        let areas: Vec<f64> = graph.vertex_ids().map(|v| graph.area(v)).collect();
        let sum_opt = match weighted_min_area_retiming(graph, &pc, &areas) {
            Ok(o) => o,
            Err(e) => {
                lacr_obs::diag!("{name}: {e}");
                continue;
            }
        };
        let shared_opt = match shared_min_area_retiming(graph, &pc, &areas) {
            Ok(o) => o,
            Err(e) => {
                lacr_obs::diag!("{name}: {e}");
                continue;
            }
        };
        let scored = shared_register_count(graph, &sum_opt.weights);
        let saving = 100.0 * (scored - shared_opt.shared_registers) as f64 / scored.max(1) as f64;
        println!(
            "{name:<8} | {:>10} {:>13} | {:>10} {:>13} | {saving:>6.1}%",
            sum_opt.total_flops,
            scored,
            shared_opt.outcome.total_flops,
            shared_opt.shared_registers,
        );
    }
}
