//! Ablation **A1**: sweep the LAC weight-update coefficient α.
//!
//! The paper reports that "a value of around 0.2 typically produces the
//! best results" (§4.2). This sweep fixes the physical plan and target
//! period and reruns only the LAC loop per α, reporting `N_FOA`, `N_wr`
//! and the flip-flop count.
//!
//! ```text
//! cargo run --release -p lacr-bench --bin alpha_sweep [circuit ...]
//! ```

use lacr_core::lac::{lac_retiming, LacConfig};
use lacr_core::planner::{build_physical_plan, plan_constraints};

fn main() {
    let mut circuits: Vec<String> = std::env::args().skip(1).collect();
    let obs = lacr_bench::ObsOptions::from_args(&mut circuits);
    obs.install();
    if circuits.is_empty() {
        circuits = vec!["s1196".into(), "s1423".into()];
    }
    let config = lacr_bench::experiment_planner();
    let alphas = [0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
    println!(
        "{:<8} {:>5} | {:>6} {:>5} {:>5}",
        "circuit", "alpha", "N_FOA", "N_wr", "N_F"
    );
    for name in &circuits {
        let circuit = match lacr_netlist::bench89::generate(name) {
            Ok(c) => c,
            Err(e) => {
                lacr_obs::diag!("{e}");
                continue;
            }
        };
        let plan = build_physical_plan(&circuit, &config, &[]);
        let pc = plan_constraints(&plan);
        for &alpha in &alphas {
            let lac_cfg = LacConfig {
                alpha,
                ..config.lac
            };
            match lac_retiming(&plan.expanded.graph, &pc, &plan.expanded.caps_ff, &lac_cfg) {
                Ok(res) => println!(
                    "{name:<8} {alpha:>5.1} | {:>6} {:>5} {:>5}",
                    res.n_foa, res.n_wr, res.n_f
                ),
                Err(e) => println!("{name:<8} {alpha:>5.1} | error: {e}"),
            }
        }
    }
}
