//! Regenerates the paper's **Figure 2**: the tile graph for LAC-retiming,
//! with hard blocks, soft blocks and dead-space/channel regions.
//!
//! Prints the ASCII tile map to stdout and writes
//! `target/fig2_tilegraph.svg` with the floorplan overlay and per-tile
//! flip-flop occupancy after LAC-retiming.
//!
//! ```text
//! cargo run --release -p lacr-bench --bin fig2_tilegraph [circuit]
//! ```

use lacr_core::planner::{build_physical_plan, plan_retimings};
use lacr_core::render::{congestion_ascii, tile_ascii, tile_ascii_legend, tile_svg};
use std::fs;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = lacr_bench::ObsOptions::from_args(&mut args);
    obs.install();
    let circuit_name = args.first().cloned().unwrap_or_else(|| "s953".to_string());
    let config = lacr_bench::experiment_planner();
    let circuit = match lacr_netlist::bench89::generate(&circuit_name) {
        Ok(c) => c,
        Err(e) => {
            lacr_obs::diag!("{e}");
            std::process::exit(1);
        }
    };
    let plan = build_physical_plan(&circuit, &config, &[]);
    println!(
        "{}: chip {:.1} x {:.1} mm, {} x {} cells, {} tiles ({} merged soft)",
        circuit_name,
        plan.floorplan.chip_w / 1000.0,
        plan.floorplan.chip_h / 1000.0,
        plan.grid.nx(),
        plan.grid.ny(),
        plan.grid.num_tiles(),
        plan.partitioning.blocks.len(),
    );
    println!("{}", tile_ascii(&plan));
    println!("{}", tile_ascii_legend(&plan));
    println!("\nrouting congestion (worst adjacent edge / capacity):");
    println!("{}", congestion_ascii(&plan, config.route.edge_capacity));

    let report = match plan_retimings(&plan, &config) {
        Ok(r) => r,
        Err(e) => {
            lacr_obs::diag!("retiming failed: {e}");
            std::process::exit(1);
        }
    };
    let svg = tile_svg(&plan, Some(&report.lac.result.occupancy));
    let path = "target/fig2_tilegraph.svg";
    if let Err(e) = fs::write(path, svg) {
        lacr_obs::diag!("could not write {path}: {e}");
        std::process::exit(1);
    }
    println!(
        "\nLAC occupancy rendered to {path} (green = occupied within capacity, red = violating); N_FOA = {}",
        report.lac.result.n_foa
    );
}
