//! Ablation **A2**: sweep the LAC convergence patience `N_max`.
//!
//! The LAC loop "terminates either when all local area constraints are met
//! or when there is no improvement after some pre-specified number
//! (`N_max`) of consecutive iterations" (§4.2). This sweep shows the
//! quality/run-time trade-off of that knob.
//!
//! ```text
//! cargo run --release -p lacr-bench --bin nmax_sweep [circuit ...]
//! ```

use lacr_core::lac::{lac_retiming, LacConfig};
use lacr_core::planner::{build_physical_plan, plan_constraints};
use std::time::Instant;

fn main() {
    let mut circuits: Vec<String> = std::env::args().skip(1).collect();
    let obs = lacr_bench::ObsOptions::from_args(&mut circuits);
    obs.install();
    if circuits.is_empty() {
        circuits = vec!["s1196".into(), "s1269".into()];
    }
    let config = lacr_bench::experiment_planner();
    let patience = [1usize, 2, 5, 10, 20];
    println!(
        "{:<8} {:>5} | {:>6} {:>5} {:>5} {:>9}",
        "circuit", "N_max", "N_FOA", "N_wr", "N_F", "t/s"
    );
    for name in &circuits {
        let circuit = match lacr_netlist::bench89::generate(name) {
            Ok(c) => c,
            Err(e) => {
                lacr_obs::diag!("{e}");
                continue;
            }
        };
        let plan = build_physical_plan(&circuit, &config, &[]);
        let pc = plan_constraints(&plan);
        for &n_max in &patience {
            let lac_cfg = LacConfig {
                n_max,
                ..config.lac
            };
            let t0 = Instant::now();
            match lac_retiming(&plan.expanded.graph, &pc, &plan.expanded.caps_ff, &lac_cfg) {
                Ok(res) => println!(
                    "{name:<8} {n_max:>5} | {:>6} {:>5} {:>5} {:>9.2}",
                    res.n_foa,
                    res.n_wr,
                    res.n_f,
                    t0.elapsed().as_secs_f64()
                ),
                Err(e) => println!("{name:<8} {n_max:>5} | error: {e}"),
            }
        }
    }
}
