//! The benchmark-regression gate as a standalone binary.
//!
//! ```text
//! cargo run --release -p lacr-bench --bin bench_compare -- \
//!     <base.json> <current.json> [--no-wall] [--wall-tolerance <pct>] \
//!     [--subset] [--json <out>]
//! ```
//!
//! Diffs two `RUN_*.json` / `BENCH_*.json` artifacts: hard gates on the
//! solution-quality metrics (`lac_n_foa`, `n_wr`, `t_clk_ns`,
//! `route_overflow` must not increase), a noise-tolerant soft gate on
//! wall-clock (±15 % by default; `--no-wall` disables it). Baseline
//! circuits absent from the current artifact fail as DROPPED coverage
//! unless `--subset` declares a deliberate subset run. Prints a human
//! table; `--json` additionally writes the machine verdict.
//!
//! Exits 0 when the gate passes, 1 on a regression, 2 on usage or I/O
//! errors. `scripts/verify.sh --regress` and CI drive it against the
//! committed baseline.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lacr_bench::compare::cli_main(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
