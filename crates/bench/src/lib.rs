//! Benchmark harness reproducing the paper's experimental artifacts.
//!
//! Binaries (run with `cargo run --release -p lacr-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |--------|-----------|
//! | `table1` | Table 1: per-circuit min-area vs LAC-retiming metrics |
//! | `fig2_tilegraph` | Figure 2: the tile graph (ASCII to stdout, SVG to a file) |
//! | `alpha_sweep` | ablation: the α coefficient of the LAC weight update |
//! | `nmax_sweep` | ablation: the `N_max` convergence patience |
//! | `subsegmentation` | ablation: interconnect sub-segmentation (§3.2) |
//! | `constraint_pruning` | ablation: W/D constraint reduction on/off |
//!
//! Criterion benches (`cargo bench -p lacr-bench`): `retiming`
//! (min-period / min-area / LAC kernels), `substrates` (flow, floorplan,
//! routing, repeater DP), `planning` (end-to-end planning of one circuit).

use lacr_core::planner::PlannerConfig;
use std::io::Write as _;

/// Observability flags shared by every artifact binary: `--quiet`
/// silences the `[lacr]` stderr diagnostics, `--trace` streams spans to
/// stderr, `--metrics-out <path>` writes the full JSONL record stream,
/// `--threads <n>` caps the parallel-region worker pool (results are
/// bit-identical at any thread count).
#[derive(Debug, Default)]
pub struct ObsOptions {
    /// Suppress `[lacr]` diagnostics on stderr.
    pub quiet: bool,
    /// Stream spans/counters to stderr as they happen.
    pub trace: bool,
    /// Write every record to this JSONL file.
    pub metrics_out: Option<String>,
    /// Worker-pool cap for parallel regions.
    pub threads: Option<usize>,
}

impl ObsOptions {
    /// Extracts the observability flags from `args`, removing them so
    /// only the binary's own positional arguments remain.
    pub fn from_args(args: &mut Vec<String>) -> Self {
        let mut opts = Self::default();
        let mut rest = Vec::with_capacity(args.len());
        let mut it = std::mem::take(args).into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quiet" => opts.quiet = true,
                "--trace" => opts.trace = true,
                "--metrics-out" => opts.metrics_out = it.next(),
                "--threads" => {
                    opts.threads = it.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0);
                }
                _ => rest.push(a),
            }
        }
        *args = rest;
        opts
    }

    /// Installs the requested diagnostics level and sink. When both
    /// `--metrics-out` and `--trace` are given the JSONL file wins (one
    /// sink at a time).
    pub fn install(&self) {
        if let Some(n) = self.threads {
            lacr_par::set_threads(n);
        }
        if self.quiet {
            lacr_obs::set_diag_level(lacr_obs::DiagLevel::Silent);
        }
        if let Some(path) = &self.metrics_out {
            match lacr_obs::sink::JsonlSink::create(path) {
                Ok(sink) => lacr_obs::init(Box::new(sink)),
                Err(e) => lacr_obs::diag!("cannot open {path}: {e}"),
            }
        } else if self.trace {
            lacr_obs::init(Box::new(lacr_obs::sink::StderrSink));
        }
    }
}

/// Writes a machine-readable perf record to `BENCH_<bench>.json`.
///
/// `fields` are pre-rendered JSON fragments (`("wall_s", "1.25")`,
/// `("rows", "[...]")`); the aggregated observability report — when a
/// sink is installed — is appended under `"obs"`. Every record carries a
/// `"threads"` field — the worker-pool width the run executed with — so
/// wall-clock numbers from different machines/configurations stay
/// comparable. Returns the path written.
pub fn write_bench_record(bench: &str, fields: &[(&str, String)]) -> std::io::Result<String> {
    let path = format!("BENCH_{bench}.json");
    let mut body = String::new();
    body.push_str(&format!(
        "{{\"bench\":\"{bench}\",\"threads\":{}",
        lacr_par::max_threads()
    ));
    for (k, v) in fields {
        body.push_str(&format!(",\"{k}\":{v}"));
    }
    if let Some(report) = lacr_obs::snapshot() {
        body.push_str(&format!(",\"obs\":{}", report.to_json()));
    }
    body.push_str("}\n");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(body.as_bytes())?;
    Ok(path)
}

/// The planner configuration every artifact binary uses, identical to the
/// library default so numbers printed by different binaries agree.
pub fn experiment_planner() -> PlannerConfig {
    PlannerConfig::default()
}

/// A smaller, faster configuration for Criterion kernels (fewer annealing
/// moves; everything else at experiment settings).
pub fn quick_planner() -> PlannerConfig {
    PlannerConfig {
        floorplan: lacr_floorplan::anneal::FloorplanConfig {
            moves: 1_000,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_flags_are_stripped_from_args() {
        let mut args: Vec<String> = ["s344", "--quiet", "--metrics-out", "m.jsonl", "s1423"]
            .map(String::from)
            .to_vec();
        let o = ObsOptions::from_args(&mut args);
        assert!(o.quiet && !o.trace);
        assert_eq!(o.metrics_out.as_deref(), Some("m.jsonl"));
        assert_eq!(args, ["s344", "s1423"]);
    }

    #[test]
    fn configs_are_buildable() {
        let a = experiment_planner();
        let b = quick_planner();
        assert!(a.technology.validate().is_empty());
        assert!(b.floorplan.moves < a.floorplan.moves);
    }
}
