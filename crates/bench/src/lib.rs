//! Benchmark harness reproducing the paper's experimental artifacts.
//!
//! Binaries (run with `cargo run --release -p lacr-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |--------|-----------|
//! | `table1` | Table 1: per-circuit min-area vs LAC-retiming metrics |
//! | `fig2_tilegraph` | Figure 2: the tile graph (ASCII to stdout, SVG to a file) |
//! | `alpha_sweep` | ablation: the α coefficient of the LAC weight update |
//! | `nmax_sweep` | ablation: the `N_max` convergence patience |
//! | `subsegmentation` | ablation: interconnect sub-segmentation (§3.2) |
//! | `constraint_pruning` | ablation: W/D constraint reduction on/off |
//! | `check_metrics` | validator for JSONL streams, perf records, flight dumps |
//! | `bench_compare` | regression gate: diffs two run artifacts |
//!
//! Criterion benches (`cargo bench -p lacr-bench`): `retiming`
//! (min-period / min-area / LAC kernels), `substrates` (flow, floorplan,
//! routing, repeater DP), `planning` (end-to-end planning of one circuit).
//!
//! # Run artifacts
//!
//! Every artifact binary writes a versioned perf record. `BENCH_<bench>
//! .json` keeps the historical shape (wall-clock + per-circuit entries);
//! `table1` additionally writes `RUN_<bench>.json`, whose per-circuit
//! `quality` blocks carry the paper's solution-quality numbers (`N_FOA`,
//! `N_wr`, `T_clk`, router overflow, repeater count, the per-round
//! `N_FOA` trajectory, occupancy histograms). Both carry provenance
//! (`schema_version`, `threads`, `git_rev`) so [`compare`] can refuse
//! artifacts it does not understand. Records land in the directory named
//! by `LACR_RECORD_DIR` (default: the working directory), so CI can
//! regenerate artifacts without clobbering committed baselines.

pub mod compare;
pub mod json;

use lacr_core::experiment::TableRow;
use lacr_core::planner::PlannerConfig;
use std::io::Write as _;

/// Observability flags shared by every artifact binary: `--quiet`
/// silences the `[lacr]` stderr diagnostics, `--trace` streams spans to
/// stderr, `--metrics-out <path>` writes the full JSONL record stream,
/// `--trace-chrome <path>` writes a Chrome trace-event JSON file,
/// `--threads <n>` caps the parallel-region worker pool (results are
/// bit-identical at any thread count), `--flight-recorder-out <path>`
/// arms the always-on flight recorder to dump its postmortem there.
#[derive(Debug, Default)]
pub struct ObsOptions {
    /// Suppress `[lacr]` diagnostics on stderr.
    pub quiet: bool,
    /// Stream spans/counters to stderr as they happen.
    pub trace: bool,
    /// Write every record to this JSONL file.
    pub metrics_out: Option<String>,
    /// Write a Chrome trace-event JSON file here on exit.
    pub trace_chrome: Option<String>,
    /// Worker-pool cap for parallel regions.
    pub threads: Option<usize>,
    /// Arm the flight recorder to dump its ring here on panic or
    /// budget expiry.
    pub flight_out: Option<String>,
}

impl ObsOptions {
    /// Extracts the observability flags from `args`, removing them so
    /// only the binary's own positional arguments remain.
    pub fn from_args(args: &mut Vec<String>) -> Self {
        let mut opts = Self::default();
        let mut rest = Vec::with_capacity(args.len());
        let mut it = std::mem::take(args).into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quiet" => opts.quiet = true,
                "--trace" => opts.trace = true,
                "--metrics-out" => opts.metrics_out = it.next(),
                "--trace-chrome" => opts.trace_chrome = it.next(),
                "--flight-recorder-out" => opts.flight_out = it.next(),
                "--threads" => {
                    opts.threads = it.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0);
                }
                _ => rest.push(a),
            }
        }
        *args = rest;
        opts
    }

    /// Installs the requested diagnostics level and sinks. Several
    /// sinks at once fan out through a [`lacr_obs::sink::TeeSink`].
    /// Always installs the flight recorder's panic hook;
    /// `--flight-recorder-out` additionally arms an automatic dump
    /// path.
    pub fn install(&self) {
        // Allocation counting honors `LACR_MEM=0|off`; applied here (not
        // inside the allocator, which must never read the environment).
        lacr_obs::mem::init_tracking_from_env();
        if let Some(n) = self.threads {
            lacr_par::set_threads(n);
        }
        if self.quiet {
            lacr_obs::set_diag_level(lacr_obs::DiagLevel::Silent);
        }
        let mut sinks: Vec<Box<dyn lacr_obs::sink::Sink + Send>> = Vec::new();
        if let Some(path) = &self.metrics_out {
            match lacr_obs::sink::JsonlSink::create(path) {
                Ok(sink) => sinks.push(Box::new(sink)),
                Err(e) => lacr_obs::diag!("cannot open {path}: {e}"),
            }
        }
        if self.trace {
            sinks.push(Box::new(lacr_obs::sink::StderrSink));
        }
        if let Some(path) = &self.trace_chrome {
            sinks.push(Box::new(lacr_obs::ChromeTraceSink::create(path)));
        }
        match sinks.len() {
            0 => {}
            1 => lacr_obs::init(sinks.pop().expect("one sink")),
            _ => lacr_obs::init(Box::new(lacr_obs::sink::TeeSink::new(sinks))),
        }
        if let Some(path) = &self.flight_out {
            lacr_obs::flight::arm(path);
        }
        lacr_obs::flight::install_panic_hook();
    }
}

/// The short commit hash of the repository `HEAD`, read straight from
/// `.git` (no `git` subprocess, so it works in sandboxes without one).
/// Walks up from the working directory; follows one level of `ref:`
/// indirection and falls back to `packed-refs`. Returns `"unknown"`
/// when anything is missing — provenance must never fail a run.
pub fn git_rev() -> String {
    fn lookup() -> Option<String> {
        let mut dir = std::env::current_dir().ok()?;
        let git = loop {
            let candidate = dir.join(".git");
            if candidate.join("HEAD").is_file() {
                break candidate;
            }
            if !dir.pop() {
                return None;
            }
        };
        let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
        let head = head.trim();
        let sha = if let Some(refname) = head.strip_prefix("ref: ") {
            match std::fs::read_to_string(git.join(refname)) {
                Ok(s) => s.trim().to_string(),
                // Not a loose ref — scan packed-refs for it.
                Err(_) => std::fs::read_to_string(git.join("packed-refs"))
                    .ok()?
                    .lines()
                    .find_map(|l| l.strip_suffix(refname).map(|sha| sha.trim().to_string()))?,
            }
        } else {
            head.to_string()
        };
        if sha.len() >= 12 && sha.bytes().all(|b| b.is_ascii_hexdigit()) {
            Some(sha[..12].to_string())
        } else {
            None
        }
    }
    lookup().unwrap_or_else(|| "unknown".to_string())
}

/// The directory perf records are written to: `LACR_RECORD_DIR`, or the
/// working directory when unset. Created on demand.
pub fn record_dir() -> std::path::PathBuf {
    let dir = std::env::var("LACR_RECORD_DIR").unwrap_or_else(|_| ".".to_string());
    std::path::PathBuf::from(dir)
}

fn write_record(
    kind: &str,
    prefix: &str,
    bench: &str,
    fields: &[(&str, String)],
) -> std::io::Result<String> {
    let dir = record_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{prefix}_{bench}.json"));
    let mut body = String::new();
    body.push_str(&format!(
        "{{\"t\":\"{kind}\",\"schema_version\":{},\"bench\":\"{bench}\",\
         \"threads\":{},\"git_rev\":\"{}\"",
        lacr_obs::SCHEMA_VERSION,
        lacr_par::max_threads(),
        git_rev(),
    ));
    for (k, v) in fields {
        body.push_str(&format!(",\"{k}\":{v}"));
    }
    if let Some(report) = lacr_obs::snapshot() {
        body.push_str(&format!(",\"obs\":{}", report.to_json()));
    }
    // Process-level memory provenance: the counting allocator's totals
    // plus kernel peak RSS, so `bench_compare` can gate peak footprint
    // the same way it gates wall-clock.
    let mem = lacr_obs::mem::stats();
    body.push_str(&format!(
        ",\"mem\":{{\"live_bytes\":{},\"peak_bytes\":{},\"allocs\":{},\"deallocs\":{},\"peak_rss_bytes\":{}}}",
        mem.live_bytes,
        mem.peak_bytes,
        mem.allocs,
        mem.deallocs,
        lacr_obs::mem::peak_rss_bytes().unwrap_or(0)
    ));
    body.push_str("}\n");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(body.as_bytes())?;
    Ok(path.display().to_string())
}

/// Writes a machine-readable perf record to `BENCH_<bench>.json` (in
/// [`record_dir`]).
///
/// `fields` are pre-rendered JSON fragments (`("wall_s", "1.25")`,
/// `("rows", "[...]")`); the aggregated observability report — when a
/// sink is installed — is appended under `"obs"`. Every record carries
/// provenance — `schema_version`, `threads` (the worker-pool width the
/// run executed with) and `git_rev` — so wall-clock numbers from
/// different machines/configurations stay comparable and the
/// `bench_compare` gate can reject artifacts it does not understand.
/// Returns the path written.
pub fn write_bench_record(bench: &str, fields: &[(&str, String)]) -> std::io::Result<String> {
    write_record("bench", "BENCH", bench, fields)
}

/// Writes a solution-quality run artifact to `RUN_<bench>.json` (in
/// [`record_dir`]): same provenance header as [`write_bench_record`],
/// but the `fields` are expected to include a `"circuits"` array whose
/// entries carry `quality` blocks (see [`quality_json`]). This is the
/// artifact `bench_compare` diffs. Returns the path written.
pub fn write_run_record(bench: &str, fields: &[(&str, String)]) -> std::io::Result<String> {
    write_record("run", "RUN", bench, fields)
}

/// Renders one circuit's solution-quality block as a JSON object: the
/// paper's Table-1 quantities from the [`TableRow`] plus — when the
/// per-circuit observability snapshot is supplied — the quality gauges
/// and histograms emitted by the planner (`quality.*` names, stripped
/// of their prefix here).
pub fn quality_json(row: &TableRow, report: Option<&lacr_obs::Report>) -> String {
    let mut q = String::from("{");
    q.push_str(&format!(
        "\"base_n_foa\":{},\"lac_n_foa\":{},\"n_f\":{},\"n_fn\":{},\"n_wr\":{},\
         \"t_clk_ns\":{:.3},\"t_init_ns\":{:.3},\"t_min_ns\":{:.3}",
        row.min_area.n_foa,
        row.lac.n_foa,
        row.lac.n_f,
        row.lac.n_fn,
        row.n_wr,
        row.t_clk_ns,
        row.t_init_ns,
        row.t_min_ns,
    ));
    if let Some(p) = row.decrease_pct {
        q.push_str(&format!(",\"decrease_pct\":{p:.1}"));
    }
    let trajectory = row
        .n_foa_trajectory
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    q.push_str(&format!(",\"n_foa_trajectory\":[{trajectory}]"));
    if let Some(r) = report {
        for (gauge, field) in [
            ("quality.route_overflow", "route_overflow"),
            ("quality.repeaters", "repeaters"),
            ("quality.t_clk_slack_ps", "t_clk_slack_ps"),
            ("quality.relocated_vertices", "relocated_vertices"),
        ] {
            if let Some(v) = r.gauge(gauge) {
                q.push_str(&format!(
                    ",\"{field}\":{}",
                    lacr_obs::Value::Float(v).to_json()
                ));
            }
        }
        for (hist, field) in [
            ("quality.tile_occupancy_ff", "tile_occupancy"),
            ("quality.tile_capacity_ff", "tile_capacity"),
            ("quality.ff_relocation", "ff_relocation"),
        ] {
            if let Some(h) = r.hist(hist) {
                q.push_str(&format!(",\"{field}\":{}", h.to_json()));
            }
        }
    }
    q.push('}');
    q
}

/// The planner configuration every artifact binary uses, identical to the
/// library default so numbers printed by different binaries agree.
pub fn experiment_planner() -> PlannerConfig {
    PlannerConfig::default()
}

/// A smaller, faster configuration for Criterion kernels (fewer annealing
/// moves; everything else at experiment settings).
pub fn quick_planner() -> PlannerConfig {
    PlannerConfig {
        floorplan: lacr_floorplan::anneal::FloorplanConfig {
            moves: 1_000,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_flags_are_stripped_from_args() {
        let mut args: Vec<String> = [
            "s344",
            "--quiet",
            "--metrics-out",
            "m.jsonl",
            "--flight-recorder-out",
            "f.jsonl",
            "s1423",
        ]
        .map(String::from)
        .to_vec();
        let o = ObsOptions::from_args(&mut args);
        assert!(o.quiet && !o.trace);
        assert_eq!(o.metrics_out.as_deref(), Some("m.jsonl"));
        assert_eq!(o.flight_out.as_deref(), Some("f.jsonl"));
        assert_eq!(args, ["s344", "s1423"]);
    }

    #[test]
    fn configs_are_buildable() {
        let a = experiment_planner();
        let b = quick_planner();
        assert!(a.technology.validate().is_empty());
        assert!(b.floorplan.moves < a.floorplan.moves);
    }

    #[test]
    fn git_rev_is_hex_or_unknown() {
        let rev = git_rev();
        assert!(
            rev == "unknown" || (rev.len() == 12 && rev.bytes().all(|b| b.is_ascii_hexdigit())),
            "{rev}"
        );
    }

    #[test]
    fn quality_json_is_parseable_and_carries_the_row() {
        use lacr_core::experiment::RetimerMetrics;
        use std::time::Duration;
        let row = TableRow {
            circuit: "s344".into(),
            t_clk_ns: 2.5,
            t_init_ns: 3.0,
            t_min_ns: 2.0,
            min_area: RetimerMetrics {
                n_foa: 10,
                n_f: 20,
                n_fn: 4,
                t_exec: Duration::from_millis(5),
            },
            lac: RetimerMetrics {
                n_foa: 2,
                n_f: 22,
                n_fn: 6,
                t_exec: Duration::from_millis(9),
            },
            n_wr: 4,
            decrease_pct: Some(80.0),
            second_iteration: None,
            n_foa_trajectory: vec![5, 3, 2],
        };
        let q = quality_json(&row, None);
        let v = json::parse_json(&q).expect("quality block parses");
        assert_eq!(v.get("lac_n_foa").and_then(json::Json::as_num), Some(2.0));
        assert_eq!(v.get("n_wr").and_then(json::Json::as_num), Some(4.0));
        assert_eq!(
            v.get("n_foa_trajectory")
                .and_then(json::Json::as_arr)
                .map(<[json::Json]>::len),
            Some(3)
        );
    }
}
