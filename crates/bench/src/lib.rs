//! Benchmark harness reproducing the paper's experimental artifacts.
//!
//! Binaries (run with `cargo run --release -p lacr-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |--------|-----------|
//! | `table1` | Table 1: per-circuit min-area vs LAC-retiming metrics |
//! | `fig2_tilegraph` | Figure 2: the tile graph (ASCII to stdout, SVG to a file) |
//! | `alpha_sweep` | ablation: the α coefficient of the LAC weight update |
//! | `nmax_sweep` | ablation: the `N_max` convergence patience |
//! | `subsegmentation` | ablation: interconnect sub-segmentation (§3.2) |
//! | `constraint_pruning` | ablation: W/D constraint reduction on/off |
//!
//! Criterion benches (`cargo bench -p lacr-bench`): `retiming`
//! (min-period / min-area / LAC kernels), `substrates` (flow, floorplan,
//! routing, repeater DP), `planning` (end-to-end planning of one circuit).

use lacr_core::planner::PlannerConfig;

/// The planner configuration every artifact binary uses, identical to the
/// library default so numbers printed by different binaries agree.
pub fn experiment_planner() -> PlannerConfig {
    PlannerConfig::default()
}

/// A smaller, faster configuration for Criterion kernels (fewer annealing
/// moves; everything else at experiment settings).
pub fn quick_planner() -> PlannerConfig {
    PlannerConfig {
        floorplan: lacr_floorplan::anneal::FloorplanConfig {
            moves: 1_000,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_buildable() {
        let a = experiment_planner();
        let b = quick_planner();
        assert!(a.technology.validate().is_empty());
        assert!(b.floorplan.moves < a.floorplan.moves);
    }
}
