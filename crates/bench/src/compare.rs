//! The benchmark-regression gate: diffs two run artifacts.
//!
//! [`compare`] takes a committed baseline `RUN_<bench>.json` and a
//! freshly generated one and checks, per circuit:
//!
//! - **hard quality gates** ([`GATED_METRICS`]): `lac_n_foa`, `n_wr`,
//!   `t_clk_ns` and `route_overflow` are lower-is-better and must not
//!   increase at all — the pipeline is deterministic, so any increase
//!   is a real quality regression, not noise. A gated metric present in
//!   the baseline but missing from the current artifact also fails (the
//!   telemetry contract regressed).
//! - **soft wall-clock gate**: `wall_s` may drift up to the configured
//!   tolerance (±15 % by default) before it counts as a regression,
//!   because wall-clock is machine-noisy. CI disables it entirely
//!   (`check_wall = false`) and relies on Criterion for perf tracking.
//! - **soft memory gate**: peak heap bytes — the artifact-level
//!   `mem.peak_bytes` from the counting allocator, and any per-circuit
//!   `peak_bytes` — may grow up to the configured tolerance (±15 % by
//!   default, `--no-mem` / `--mem-tolerance` on the CLI). Allocation is
//!   deterministic but allocator-version sensitive, so the gate is soft
//!   like wall-clock, not hard like quality. Artifacts predating the
//!   memory schema (v1) carry no `mem` block and are simply not gated.
//!
//! Coverage direction is explicit. By default every baseline circuit
//! must be present in the current artifact — a circuit that silently
//! vanishes from a run is a *dropped* gate failure, not a skip. When the
//! caller declares a deliberate subset comparison ([`CompareConfig::
//! allow_subset`], `--subset` on the CLI) those circuits are *skipped*
//! instead — that is how CI compares a fast subset against the full
//! committed baseline. Circuits only in the current artifact (a superset
//! run) are never failures in either mode. Artifacts without a
//! `schema_version`, or with one newer than this tool understands, are
//! rejected outright.

use crate::json::{parse_json, Json};

/// Lower-is-better quality metrics that must not increase at all.
/// `min_area_flops` only appears in `BENCH_scale.json` artifacts;
/// metrics a baseline never carried are not gated, so the table1 gate
/// is unaffected.
pub const GATED_METRICS: &[&str] = &[
    "lac_n_foa",
    "n_wr",
    "t_clk_ns",
    "route_overflow",
    "min_area_flops",
];

/// Relative slack for "did not increase" on gated metrics — covers
/// decimal round-tripping, nothing more.
const REL_EPS: f64 = 1e-9;

/// One circuit's flattened metrics: top-level numeric fields overlaid
/// with the numeric fields of its `quality` block (quality wins).
#[derive(Debug, Clone)]
pub struct CircuitMetrics {
    /// Circuit name.
    pub name: String,
    /// Metric name → value, in artifact order.
    pub metrics: Vec<(String, f64)>,
}

impl CircuitMetrics {
    /// A metric by name.
    pub fn get(&self, metric: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == metric)
            .map(|(_, v)| *v)
    }
}

/// A parsed `RUN_*.json` / `BENCH_*.json` artifact.
#[derive(Debug, Clone)]
pub struct RunArtifact {
    /// Benchmark name (`"table1"`).
    pub bench: String,
    /// Artifact schema version.
    pub schema_version: u32,
    /// Worker-pool width of the recorded run, when present.
    pub threads: Option<u64>,
    /// Commit the run was built from, when present.
    pub git_rev: Option<String>,
    /// Process peak heap bytes from the artifact's `mem` block (absent
    /// in schema-v1 artifacts, which predate memory observability).
    pub mem_peak_bytes: Option<f64>,
    /// Per-circuit metrics.
    pub circuits: Vec<CircuitMetrics>,
}

impl RunArtifact {
    /// A circuit by name.
    pub fn circuit(&self, name: &str) -> Option<&CircuitMetrics> {
        self.circuits.iter().find(|c| c.name == name)
    }
}

/// Parses a run artifact, rejecting unversioned or too-new ones.
///
/// # Errors
///
/// A one-line message: JSON syntax errors, a missing/unsupported
/// `schema_version`, or a missing `circuits` array.
pub fn parse_artifact(text: &str) -> Result<RunArtifact, String> {
    let v = parse_json(text)?;
    let version = v
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or("artifact has no schema_version (regenerate it with this tree's binaries)")?
        as u32;
    if version > lacr_obs::SCHEMA_VERSION {
        return Err(format!(
            "artifact schema_version {version} is newer than this tool's {}",
            lacr_obs::SCHEMA_VERSION
        ));
    }
    let bench = v
        .get("bench")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    let threads = v.get("threads").and_then(Json::as_num).map(|n| n as u64);
    let git_rev = v.get("git_rev").and_then(Json::as_str).map(str::to_string);
    let mem_peak_bytes = v
        .get("mem")
        .and_then(|m| m.get("peak_bytes"))
        .and_then(Json::as_num);
    let circuits = v
        .get("circuits")
        .and_then(Json::as_arr)
        .ok_or("artifact has no circuits array")?
        .iter()
        .map(|c| {
            let name = c
                .get("circuit")
                .and_then(Json::as_str)
                .ok_or("circuit entry without a \"circuit\" name")?
                .to_string();
            let mut metrics: Vec<(String, f64)> = Vec::new();
            let mut absorb = |obj: &Json| {
                if let Json::Obj(fields) = obj {
                    for (k, val) in fields {
                        if let Some(n) = val.as_num() {
                            if let Some(slot) = metrics.iter_mut().find(|(m, _)| m == k) {
                                slot.1 = n;
                            } else {
                                metrics.push((k.clone(), n));
                            }
                        }
                    }
                }
            };
            absorb(c);
            if let Some(q) = c.get("quality") {
                absorb(q);
            }
            if let Some(m) = c.get("mem") {
                absorb(m); // flattens per-circuit peak_bytes for gating
            }
            Ok(CircuitMetrics { name, metrics })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(RunArtifact {
        bench,
        schema_version: version,
        threads,
        git_rev,
        mem_peak_bytes,
        circuits,
    })
}

/// Tuning knobs of the gate.
#[derive(Debug, Clone)]
pub struct CompareConfig {
    /// Allowed relative wall-clock growth, percent.
    pub wall_tolerance_pct: f64,
    /// Whether wall-clock is checked at all (CI turns this off).
    pub check_wall: bool,
    /// Allowed relative peak-heap growth, percent.
    pub mem_tolerance_pct: f64,
    /// Whether peak heap bytes are checked at all.
    pub check_mem: bool,
    /// Whether the current artifact is a declared subset run: baseline
    /// circuits absent from it are skipped instead of failing as
    /// dropped. Off by default — coverage loss must be opted into.
    pub allow_subset: bool,
}

impl Default for CompareConfig {
    fn default() -> Self {
        Self {
            wall_tolerance_pct: 15.0,
            check_wall: true,
            mem_tolerance_pct: 15.0,
            check_mem: true,
            allow_subset: false,
        }
    }
}

/// Verdict on one (circuit, metric) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Unchanged (within epsilon / tolerance).
    Ok,
    /// Strictly better than the baseline.
    Improved,
    /// Worse than the baseline — fails the gate.
    Regressed,
    /// Present in the baseline, missing from the current artifact —
    /// fails the gate (the telemetry contract regressed).
    Missing,
    /// Circuit not in the current artifact of a *declared* subset run
    /// ([`CompareConfig::allow_subset`]) — informational.
    Skipped,
    /// Circuit not in the current artifact of a run that should cover
    /// the whole baseline — fails the gate (coverage silently shrank).
    Dropped,
}

impl Status {
    fn label(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Improved => "improved",
            Status::Regressed => "REGRESSED",
            Status::Missing => "MISSING",
            Status::Skipped => "skipped",
            Status::Dropped => "DROPPED",
        }
    }

    fn fails(self) -> bool {
        matches!(self, Status::Regressed | Status::Missing | Status::Dropped)
    }
}

/// One line of the diff.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Circuit name.
    pub circuit: String,
    /// Metric name (`"-"` for circuit-level notes).
    pub metric: String,
    /// Baseline value.
    pub base: Option<f64>,
    /// Current value.
    pub current: Option<f64>,
    /// Verdict.
    pub status: Status,
}

/// The full diff of two artifacts.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// One finding per checked (circuit, metric) pair.
    pub findings: Vec<Finding>,
    /// Circuits compared (present in both artifacts).
    pub compared: usize,
    /// Baseline circuits skipped (absent from a declared subset run).
    pub skipped: usize,
}

impl Comparison {
    /// Whether the gate passes: no regressed and no missing metrics.
    pub fn pass(&self) -> bool {
        !self.findings.iter().any(|f| f.status.fails())
    }

    /// The human-readable table: every failing finding, plus improved
    /// metrics, plus a one-line summary.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:<16} {:>12} {:>12}  {}\n",
            "circuit", "metric", "base", "current", "status"
        ));
        let fmt = |v: Option<f64>| match v {
            Some(n) => format!("{n:.3}"),
            None => "-".to_string(),
        };
        let mut shown = 0;
        for f in &self.findings {
            if matches!(f.status, Status::Ok) {
                continue;
            }
            shown += 1;
            out.push_str(&format!(
                "{:<10} {:<16} {:>12} {:>12}  {}\n",
                f.circuit,
                f.metric,
                fmt(f.base),
                fmt(f.current),
                f.status.label()
            ));
        }
        if shown == 0 {
            out.push_str("(all metrics unchanged)\n");
        }
        let failures = self.findings.iter().filter(|f| f.status.fails()).count();
        out.push_str(&format!(
            "{} circuit(s) compared, {} skipped, {} finding(s) checked, {} failure(s): {}\n",
            self.compared,
            self.skipped,
            self.findings.len(),
            failures,
            if self.pass() { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// The machine-readable verdict as one JSON object.
    pub fn to_json(&self) -> String {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                let num = |v: Option<f64>| match v {
                    Some(n) => lacr_obs::Value::Float(n).to_json(),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"circuit\":\"{}\",\"metric\":\"{}\",\"base\":{},\
                     \"current\":{},\"status\":\"{}\"}}",
                    lacr_obs::json_escape(&f.circuit),
                    lacr_obs::json_escape(&f.metric),
                    num(f.base),
                    num(f.current),
                    f.status.label()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"t\":\"bench_compare\",\"schema_version\":{},\"pass\":{},\
             \"compared\":{},\"skipped\":{},\"findings\":[{findings}]}}",
            lacr_obs::SCHEMA_VERSION,
            self.pass(),
            self.compared,
            self.skipped
        )
    }
}

/// The soft-gate verdict: growth beyond `tolerance_pct` regresses, any
/// shrink is an improvement, drift inside the band is Ok.
fn soft_status(b: f64, c: f64, tolerance_pct: f64) -> Status {
    if c > b * (1.0 + tolerance_pct / 100.0) {
        Status::Regressed
    } else if c < b {
        Status::Improved
    } else {
        Status::Ok
    }
}

/// Diffs `current` against `base` under `config`.
pub fn compare(base: &RunArtifact, current: &RunArtifact, config: &CompareConfig) -> Comparison {
    let mut findings = Vec::new();
    let mut compared = 0;
    let mut skipped = 0;
    for bc in &base.circuits {
        let Some(cc) = current.circuit(&bc.name) else {
            // The direction matters: absence from a *declared* subset
            // run is a skip; absence from a run that should cover the
            // baseline means coverage silently shrank — fail the gate.
            let status = if config.allow_subset {
                skipped += 1;
                Status::Skipped
            } else {
                Status::Dropped
            };
            findings.push(Finding {
                circuit: bc.name.clone(),
                metric: "-".into(),
                base: None,
                current: None,
                status,
            });
            continue;
        };
        compared += 1;
        for &metric in GATED_METRICS {
            let Some(b) = bc.get(metric) else {
                continue; // the baseline never had it — nothing to gate
            };
            let status = match cc.get(metric) {
                None => Status::Missing,
                Some(c) if c > b + b.abs() * REL_EPS => Status::Regressed,
                Some(c) if c < b - b.abs() * REL_EPS => Status::Improved,
                Some(_) => Status::Ok,
            };
            findings.push(Finding {
                circuit: bc.name.clone(),
                metric: metric.into(),
                base: Some(b),
                current: cc.get(metric),
                status,
            });
        }
        if config.check_wall {
            if let (Some(b), Some(c)) = (bc.get("wall_s"), cc.get("wall_s")) {
                findings.push(Finding {
                    circuit: bc.name.clone(),
                    metric: "wall_s".into(),
                    base: Some(b),
                    current: Some(c),
                    status: soft_status(b, c, config.wall_tolerance_pct),
                });
            }
        }
        // Per-circuit peak footprint, where the artifact carries it
        // (schema ≥ 2): soft like wall-clock, since allocation volume is
        // allocator-version sensitive even when planning is bit-stable.
        if config.check_mem {
            if let (Some(b), Some(c)) = (bc.get("peak_bytes"), cc.get("peak_bytes")) {
                findings.push(Finding {
                    circuit: bc.name.clone(),
                    metric: "peak_bytes".into(),
                    base: Some(b),
                    current: Some(c),
                    status: soft_status(b, c, config.mem_tolerance_pct),
                });
            }
        }
    }
    // Artifact-level process peak: the whole run's high-water mark, from
    // the record's `mem` block. Baselines without one are not gated.
    if config.check_mem {
        if let (Some(b), Some(c)) = (base.mem_peak_bytes, current.mem_peak_bytes) {
            findings.push(Finding {
                circuit: "(process)".into(),
                metric: "mem.peak_bytes".into(),
                base: Some(b),
                current: Some(c),
                status: soft_status(b, c, config.mem_tolerance_pct),
            });
        }
    }
    Comparison {
        findings,
        compared,
        skipped,
    }
}

/// The shared CLI driver behind the `bench_compare` binary and
/// `lacr compare`: parses `<base> <current> [--no-wall]
/// [--wall-tolerance <pct>] [--no-mem] [--mem-tolerance <pct>]
/// [--subset] [--json <out>]`, prints the human table, and returns
/// whether the gate passed. `--subset` declares the current artifact a
/// deliberate subset run, so baseline circuits it omits are skipped
/// instead of failing as dropped.
///
/// # Errors
///
/// A usage or I/O message suitable for stderr.
pub fn cli_main(args: &[String]) -> Result<bool, String> {
    let mut paths = Vec::new();
    let mut config = CompareConfig::default();
    let mut json_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-wall" => config.check_wall = false,
            "--no-mem" => config.check_mem = false,
            "--subset" => config.allow_subset = true,
            "--wall-tolerance" => {
                config.wall_tolerance_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--wall-tolerance needs a numeric percentage")?;
            }
            "--mem-tolerance" => {
                config.mem_tolerance_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--mem-tolerance needs a numeric percentage")?;
            }
            "--json" => json_out = it.next().cloned(),
            other => paths.push(other.to_string()),
        }
    }
    let [base_path, cur_path] = paths.as_slice() else {
        return Err("usage: bench_compare <base.json> <current.json> \
             [--no-wall] [--wall-tolerance <pct>] [--no-mem] \
             [--mem-tolerance <pct>] [--subset] [--json <out>]"
            .to_string());
    };
    let load = |path: &str| -> Result<RunArtifact, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        parse_artifact(&text).map_err(|e| format!("{path}: {e}"))
    };
    let base = load(base_path)?;
    let current = load(cur_path)?;
    if base.bench != current.bench {
        return Err(format!(
            "artifacts are different benches ({} vs {})",
            base.bench, current.bench
        ));
    }
    let cmp = compare(&base, &current, &config);
    println!(
        "bench_compare: {} ({} @ {}) vs ({} @ {})",
        base.bench,
        base_path,
        base.git_rev.as_deref().unwrap_or("?"),
        cur_path,
        current.git_rev.as_deref().unwrap_or("?"),
    );
    print!("{}", cmp.table());
    if let Some(out) = json_out {
        std::fs::write(&out, format!("{}\n", cmp.to_json())).map_err(|e| format!("{out}: {e}"))?;
    }
    Ok(cmp.pass())
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = include_str!("../tests/fixtures/run_base.json");
    const REGRESSED: &str = include_str!("../tests/fixtures/run_regressed.json");

    #[test]
    fn parses_the_fixture_artifact() {
        let a = parse_artifact(BASE).expect("base fixture parses");
        assert_eq!(a.bench, "table1");
        assert_eq!(a.schema_version, 1);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.git_rev.as_deref(), Some("0123456789ab"));
        assert_eq!(a.circuits.len(), 3);
        let s344 = a.circuit("s344").expect("s344 present");
        // quality-block value wins over any top-level duplicate.
        assert_eq!(s344.get("lac_n_foa"), Some(2.0));
        assert_eq!(s344.get("wall_s"), Some(1.0));
    }

    #[test]
    fn rejects_unversioned_and_future_artifacts() {
        let unversioned = "{\"bench\":\"table1\",\"circuits\":[]}";
        assert!(parse_artifact(unversioned)
            .unwrap_err()
            .contains("schema_version"));
        let future = "{\"schema_version\":999,\"bench\":\"t\",\"circuits\":[]}";
        assert!(parse_artifact(future).unwrap_err().contains("newer"));
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = parse_artifact(BASE).unwrap();
        let cmp = compare(&a, &a, &CompareConfig::default());
        assert!(cmp.pass(), "{}", cmp.table());
        assert_eq!(cmp.compared, 3);
        assert_eq!(cmp.skipped, 0);
    }

    #[test]
    fn quality_regressions_fail_the_gate() {
        let base = parse_artifact(BASE).unwrap();
        let bad = parse_artifact(REGRESSED).unwrap();
        let cmp = compare(&base, &bad, &CompareConfig::default());
        assert!(!cmp.pass(), "{}", cmp.table());
        // s344's lac_n_foa went 2 → 5: a hard quality failure.
        assert!(cmp.findings.iter().any(|f| {
            f.circuit == "s344" && f.metric == "lac_n_foa" && f.status == Status::Regressed
        }));
        // s382 dropped its route_overflow metric entirely.
        assert!(cmp.findings.iter().any(|f| {
            f.circuit == "s382" && f.metric == "route_overflow" && f.status == Status::Missing
        }));
        // s526's wall_s grew 1.0 → 1.5, beyond the ±15% tolerance.
        assert!(cmp.findings.iter().any(|f| {
            f.circuit == "s526" && f.metric == "wall_s" && f.status == Status::Regressed
        }));
    }

    #[test]
    fn wall_clock_gate_is_soft_and_optional() {
        let base = parse_artifact(BASE).unwrap();
        let bad = parse_artifact(REGRESSED).unwrap();
        // Without the wall gate, only the two quality failures remain.
        let cmp = compare(
            &base,
            &bad,
            &CompareConfig {
                check_wall: false,
                ..Default::default()
            },
        );
        assert!(!cmp.findings.iter().any(|f| f.metric == "wall_s"));
        assert!(!cmp.pass());
        // A generous tolerance forgives the 50% slowdown.
        let cmp = compare(
            &base,
            &bad,
            &CompareConfig {
                wall_tolerance_pct: 100.0,
                check_wall: true,
                ..Default::default()
            },
        );
        assert!(!cmp
            .findings
            .iter()
            .any(|f| f.metric == "wall_s" && f.status.fails()));
    }

    #[test]
    fn memory_gate_is_soft_and_fails_inflated_peaks() {
        // Schema-v1 fixtures carry no mem block: nothing to gate.
        let base = parse_artifact(BASE).unwrap();
        assert_eq!(base.mem_peak_bytes, None);
        let cmp = compare(&base, &base, &CompareConfig::default());
        assert!(!cmp.findings.iter().any(|f| f.metric == "mem.peak_bytes"));
        // Grow peaks onto clones: within tolerance passes, beyond fails.
        let mut with_mem = base.clone();
        with_mem.mem_peak_bytes = Some(100.0e6);
        with_mem.circuits[0]
            .metrics
            .push(("peak_bytes".into(), 10.0e6));
        let mut ok = with_mem.clone();
        ok.mem_peak_bytes = Some(110.0e6); // +10% < 15% tolerance
        ok.circuits[0].metrics.last_mut().unwrap().1 = 11.0e6;
        let cmp = compare(&with_mem, &ok, &CompareConfig::default());
        assert!(cmp.pass(), "{}", cmp.table());
        // The negative control: an inflated peak must FAIL the gate.
        let mut bad = with_mem.clone();
        bad.mem_peak_bytes = Some(200.0e6); // +100% ≫ 15% tolerance
        let cmp = compare(&with_mem, &bad, &CompareConfig::default());
        assert!(!cmp.pass(), "inflated process peak must fail");
        assert!(cmp.findings.iter().any(|f| {
            f.circuit == "(process)"
                && f.metric == "mem.peak_bytes"
                && f.status == Status::Regressed
        }));
        // Per-circuit inflation fails the same way.
        let mut bad_circuit = with_mem.clone();
        bad_circuit.circuits[0].metrics.last_mut().unwrap().1 = 20.0e6;
        let cmp = compare(&with_mem, &bad_circuit, &CompareConfig::default());
        assert!(!cmp.pass());
        assert!(cmp
            .findings
            .iter()
            .any(|f| f.metric == "peak_bytes" && f.status == Status::Regressed));
        // `--no-mem` semantics: the gate disappears entirely.
        let cmp = compare(
            &with_mem,
            &bad,
            &CompareConfig {
                check_mem: false,
                ..Default::default()
            },
        );
        assert!(cmp.pass());
        assert!(!cmp.findings.iter().any(|f| f.metric.contains("peak")));
        // A generous tolerance forgives the doubling, mirroring wall_s.
        let cmp = compare(
            &with_mem,
            &bad,
            &CompareConfig {
                mem_tolerance_pct: 150.0,
                ..Default::default()
            },
        );
        assert!(cmp.pass());
    }

    #[test]
    fn mem_blocks_parse_from_artifacts() {
        let text = r#"{"t":"run","schema_version":2,"bench":"table1",
            "mem":{"live_bytes":1,"peak_bytes":5000000,"allocs":9,"deallocs":8,"peak_rss_bytes":0},
            "circuits":[{"circuit":"s344","wall_s":1.0,
                "mem":{"peak_bytes":2000000,"net_bytes":100,"allocs":50}}]}"#;
        let a = parse_artifact(text).expect("schema-2 artifact parses");
        assert_eq!(a.mem_peak_bytes, Some(5_000_000.0));
        let c = a.circuit("s344").expect("s344 present");
        assert_eq!(c.get("peak_bytes"), Some(2_000_000.0));
        assert_eq!(c.get("allocs"), Some(50.0));
    }

    #[test]
    fn declared_subset_runs_skip_missing_circuits() {
        let base = parse_artifact(BASE).unwrap();
        let mut subset = base.clone();
        subset.circuits.retain(|c| c.name == "s344");
        let cmp = compare(
            &base,
            &subset,
            &CompareConfig {
                allow_subset: true,
                ..Default::default()
            },
        );
        assert!(cmp.pass(), "declared-subset skips are not failures");
        assert_eq!(cmp.compared, 1);
        assert_eq!(cmp.skipped, 2);
        assert_eq!(
            cmp.findings
                .iter()
                .filter(|f| f.status == Status::Skipped)
                .count(),
            2
        );
    }

    #[test]
    fn silently_dropped_circuits_fail_the_gate() {
        // Same shrunken artifact, but without declaring a subset run:
        // the missing circuits are dropped coverage, a hard failure.
        let base = parse_artifact(BASE).unwrap();
        let mut shrunk = base.clone();
        shrunk.circuits.retain(|c| c.name == "s344");
        let cmp = compare(&base, &shrunk, &CompareConfig::default());
        assert!(!cmp.pass(), "dropped circuits must fail: {}", cmp.table());
        assert_eq!(cmp.compared, 1);
        assert_eq!(cmp.skipped, 0, "drops are not counted as skips");
        for name in ["s382", "s526"] {
            assert!(cmp
                .findings
                .iter()
                .any(|f| f.circuit == name && f.status == Status::Dropped));
        }
    }

    #[test]
    fn superset_runs_pass_in_both_modes() {
        // The other direction: the current artifact covers *more* than
        // the baseline. Extra circuits are never failures.
        let full = parse_artifact(BASE).unwrap();
        let mut baseline = full.clone();
        baseline.circuits.retain(|c| c.name == "s344");
        for config in [
            CompareConfig::default(),
            CompareConfig {
                allow_subset: true,
                ..Default::default()
            },
        ] {
            let cmp = compare(&baseline, &full, &config);
            assert!(cmp.pass(), "superset run failed: {}", cmp.table());
            assert_eq!(cmp.compared, 1);
            assert_eq!(cmp.skipped, 0);
        }
    }

    #[test]
    fn verdict_json_is_parseable() {
        let base = parse_artifact(BASE).unwrap();
        let bad = parse_artifact(REGRESSED).unwrap();
        let cmp = compare(&base, &bad, &CompareConfig::default());
        let v = parse_json(&cmp.to_json()).expect("verdict parses");
        assert_eq!(v.get("t").and_then(Json::as_str), Some("bench_compare"));
        assert_eq!(v.get("pass"), Some(&Json::Bool(false)));
        assert!(v
            .get("findings")
            .and_then(Json::as_arr)
            .is_some_and(|f| !f.is_empty()));
    }
}
