//! A minimal recursive-descent JSON parser — just enough structure for
//! validating and diffing the workspace's machine-readable artifacts
//! (JSONL metric streams, `BENCH_*.json` / `RUN_*.json` perf records,
//! flight-recorder postmortems). Shared by `check_metrics` and
//! `bench_compare`; kept in-repo so the workspace stays dependency-free.

/// A parsed JSON value.
#[derive(Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a field of an object (`None` for other variants).
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Recursive-descent JSON parser over a byte slice.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected {lit:?} at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("unterminated escape")? {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape \\{}", char::from(other))),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 character (already validated by &str).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = std::str::from_utf8(rest)
                        .map_err(|e| e.to_string())?
                        .chars()
                        .next()
                        .ok_or("unterminated string")?
                        .len_utf8();
                    s.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// A one-line message with the byte offset of the first problem.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after value at {}", p.pos));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json("true").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            parse_json("\"a\\n\\u0041\"").unwrap(),
            Json::Str("a\nA".into())
        );
        let v = parse_json("{\"a\":[1,2],\"b\":{\"c\":\"d\"}}").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]))
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
        assert_eq!(v.get("a").unwrap().as_arr().map(<[Json]>::len), Some(2));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }
}
