//! The retiming graph `G(V, E)`.
//!
//! Vertices are functional units (and, in interconnect retiming,
//! *interconnect units*) with fixed propagation delays; edge weights are
//! flip-flop counts. A retiming is a vertex labelling `r : V → ℤ` that
//! transforms each edge weight to `w_r(e) = w(e) + r(head) − r(tail)`.

use crate::minarea::RetimeError;
use lacr_netlist::{Circuit, UnitKind};
use std::collections::HashMap;

/// Identifier of a retiming-graph vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a retiming-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One edge of the retiming graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphEdge {
    /// Tail (driving vertex).
    pub from: VertexId,
    /// Head (receiving vertex).
    pub to: VertexId,
    /// Flip-flop count.
    pub weight: i64,
}

/// What a vertex models; interconnect units are the paper's §3.2 addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexKind {
    /// An RT-level functional unit.
    Functional,
    /// A repeater-driven wire segment (delay, no logic).
    Interconnect,
    /// The host vertex modelling the environment (primary I/O).
    Host,
}

/// A retiming graph.
///
/// # Examples
///
/// ```
/// use lacr_retime::{RetimeGraph, VertexKind};
///
/// let mut g = RetimeGraph::new();
/// let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
/// let b = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
/// g.add_edge(a, b, 1);
/// g.add_edge(b, a, 0);
/// assert_eq!(g.total_flops(), 1);
/// assert_eq!(g.clock_period(&g.weights()), Some(10));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RetimeGraph {
    kinds: Vec<VertexKind>,
    delays: Vec<u64>,
    /// Area weight `A(v)` of the flip-flops charged to this vertex's tile
    /// (weighted min-area retiming, §4.2). 1.0 reproduces plain min-area.
    areas: Vec<f64>,
    /// Tile each vertex lives in, if the floorplan is known.
    tiles: Vec<Option<usize>>,
    edges: Vec<GraphEdge>,
    out_edges: Vec<Vec<u32>>,
    in_edges: Vec<Vec<u32>>,
    host: Option<VertexId>,
}

impl RetimeGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex with the given kind, delay (integer picoseconds), FF
    /// area weight and optional tile.
    pub fn add_vertex(
        &mut self,
        kind: VertexKind,
        delay_ps: u64,
        area: f64,
        tile: Option<usize>,
    ) -> VertexId {
        self.kinds.push(kind);
        self.delays.push(delay_ps);
        self.areas.push(area);
        self.tiles.push(tile);
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        VertexId((self.kinds.len() - 1) as u32)
    }

    /// Adds an edge with `weight` flip-flops.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `weight < 0`.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, weight: i64) -> EdgeId {
        assert!(from.index() < self.kinds.len() && to.index() < self.kinds.len());
        assert!(weight >= 0, "initial edge weight must be non-negative");
        let id = self.edges.len() as u32;
        self.edges.push(GraphEdge { from, to, weight });
        self.out_edges[from.index()].push(id);
        self.in_edges[to.index()].push(id);
        EdgeId(id)
    }

    /// Marks `v` as the host vertex. The host models the environment; LAC
    /// retiming charges flip-flops on host fanout to the pad ring (no tile
    /// capacity limit).
    pub fn set_host(&mut self, v: VertexId) {
        self.host = Some(v);
    }

    /// The host vertex, if one was designated.
    pub fn host(&self) -> Option<VertexId> {
        self.host
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.kinds.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Vertex kind.
    pub fn kind(&self, v: VertexId) -> VertexKind {
        self.kinds[v.index()]
    }

    /// Vertex delay in integer picoseconds.
    pub fn delay(&self, v: VertexId) -> u64 {
        self.delays[v.index()]
    }

    /// FF area weight `A(v)`.
    pub fn area(&self, v: VertexId) -> f64 {
        self.areas[v.index()]
    }

    /// Sets the FF area weight of one vertex (the LAC loop re-weights by
    /// tile).
    pub fn set_area(&mut self, v: VertexId, area: f64) {
        assert!(area > 0.0 && area.is_finite(), "bad area weight {area}");
        self.areas[v.index()] = area;
    }

    /// Tile of a vertex.
    pub fn tile(&self, v: VertexId) -> Option<usize> {
        self.tiles[v.index()]
    }

    /// Sets the tile of a vertex.
    pub fn set_tile(&mut self, v: VertexId, tile: Option<usize>) {
        self.tiles[v.index()] = tile;
    }

    /// All edges, indexable by [`EdgeId::index`].
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// The edge with the given id.
    pub fn edge(&self, e: EdgeId) -> GraphEdge {
        self.edges[e.index()]
    }

    /// Ids of vertices.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.kinds.len() as u32).map(VertexId)
    }

    /// Outgoing edge ids of `v`.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_edges[v.index()].iter().map(|&i| EdgeId(i))
    }

    /// Incoming edge ids of `v`.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_edges[v.index()].iter().map(|&i| EdgeId(i))
    }

    /// The original edge weights, as a vector parallel to [`Self::edges`].
    pub fn weights(&self) -> Vec<i64> {
        self.edges.iter().map(|e| e.weight).collect()
    }

    /// Total flip-flops on the original weights.
    pub fn total_flops(&self) -> i64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Edge weights after applying retiming `r`:
    /// `w_r(e) = w(e) + r(head) − r(tail)`.
    ///
    /// # Panics
    ///
    /// Panics if `r.len() != num_vertices()`.
    pub fn retimed_weights(&self, r: &[i64]) -> Vec<i64> {
        assert_eq!(r.len(), self.num_vertices());
        self.edges
            .iter()
            .map(|e| e.weight + r[e.to.index()] - r[e.from.index()])
            .collect()
    }

    /// Checks that `weights` is a legal assignment (non-negative
    /// everywhere).
    pub fn weights_legal(&self, weights: &[i64]) -> bool {
        weights.len() == self.edges.len() && weights.iter().all(|&w| w >= 0)
    }

    /// Clock period achieved by the given edge weights: the longest
    /// vertex-delay path through zero-weight edges. Returns `None` when the
    /// zero-weight subgraph is cyclic (illegal for a valid circuit).
    ///
    /// # Panics
    ///
    /// Panics when path-delay accumulation overflows `u64` (see
    /// [`Self::try_clock_period`] for the checked variant).
    pub fn clock_period(&self, weights: &[i64]) -> Option<u64> {
        match self.try_clock_period(weights) {
            Ok(p) => Some(p),
            Err(RetimeError::CombinationalCycle) => None,
            Err(e) => panic!("clock period computation failed: {e}"),
        }
    }

    /// Checked variant of [`Self::clock_period`] with a typed error for
    /// both failure modes.
    ///
    /// # Errors
    ///
    /// * [`RetimeError::CombinationalCycle`] — the zero-weight subgraph is
    ///   cyclic.
    /// * [`RetimeError::DelayOverflow`] — a path-delay sum overflowed
    ///   `u64` (million-cell synthetic graphs can chain enough delay to
    ///   wrap silently in release builds without this check).
    pub fn try_clock_period(&self, weights: &[i64]) -> Result<u64, RetimeError> {
        self.try_arrival_times(weights)
            .map(|arr| arr.into_iter().max().unwrap_or(0))
    }

    /// Combinational arrival time `Δ(v)` of every vertex under the given
    /// edge weights: `Δ(v) = d(v) + max(0, max {Δ(u) : e_{u,v}, w(e)=0})`.
    /// Returns `None` when the zero-weight subgraph is cyclic.
    ///
    /// The host vertex does not propagate combinational signals — the
    /// environment registers primary outputs before they can influence
    /// primary inputs — so zero-weight edges *into* the host terminate
    /// there (their arrival is still checked at the driving vertex), and
    /// apparent combinational cycles through the host are not cycles.
    ///
    /// # Panics
    ///
    /// Panics when path-delay accumulation overflows `u64` (see
    /// [`Self::try_arrival_times`] for the checked variant).
    pub fn arrival_times(&self, weights: &[i64]) -> Option<Vec<u64>> {
        match self.try_arrival_times(weights) {
            Ok(arr) => Some(arr),
            Err(RetimeError::CombinationalCycle) => None,
            Err(e) => panic!("arrival time computation failed: {e}"),
        }
    }

    /// Checked variant of [`Self::arrival_times`] with a typed error for
    /// both failure modes (see [`Self::try_clock_period`]).
    ///
    /// # Errors
    ///
    /// * [`RetimeError::CombinationalCycle`] — the zero-weight subgraph is
    ///   cyclic.
    /// * [`RetimeError::DelayOverflow`] — a path-delay sum overflowed
    ///   `u64`.
    pub fn try_arrival_times(&self, weights: &[i64]) -> Result<Vec<u64>, RetimeError> {
        assert_eq!(weights.len(), self.edges.len());
        let n = self.num_vertices();
        let host = self.host.map(|h| h.index());
        let mut indeg = vec![0usize; n];
        for (i, e) in self.edges.iter().enumerate() {
            if weights[i] == 0 && Some(e.to.index()) != host {
                indeg[e.to.index()] += 1;
            }
        }
        let mut arr: Vec<u64> = self.delays.clone();
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &ei in &self.out_edges[v] {
                if weights[ei as usize] != 0 {
                    continue;
                }
                let to = self.edges[ei as usize].to.index();
                if Some(to) == host {
                    continue;
                }
                let cand = arr[v]
                    .checked_add(self.delays[to])
                    .ok_or(RetimeError::DelayOverflow)?;
                arr[to] = arr[to].max(cand);
                indeg[to] -= 1;
                if indeg[to] == 0 {
                    queue.push(to);
                }
            }
        }
        if seen == n {
            Ok(arr)
        } else {
            Err(RetimeError::CombinationalCycle)
        }
    }

    /// Builds a retiming graph from a [`Circuit`].
    ///
    /// Primary inputs and outputs are merged into a single *host* vertex of
    /// zero delay, the classic Leiserson–Saxe construction that pins I/O
    /// latency: any flip-flops borrowed from input connections must be
    /// repaid on output connections. `delay_of` maps a unit's raw delay to
    /// integer picoseconds (typically technology scaling plus
    /// quantisation).
    ///
    /// Returns the graph and a map from circuit units to graph vertices
    /// (PIs and POs all map to the host).
    pub fn from_circuit_with(
        circuit: &Circuit,
        mut delay_of: impl FnMut(&lacr_netlist::Unit) -> u64,
    ) -> (Self, HashMap<lacr_netlist::UnitId, VertexId>) {
        let mut g = RetimeGraph::new();
        let host = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        g.set_host(host);
        let mut map = HashMap::new();
        for uid in circuit.unit_ids() {
            let unit = circuit.unit(uid);
            let v = match unit.kind {
                UnitKind::Input | UnitKind::Output => host,
                UnitKind::Logic => g.add_vertex(VertexKind::Functional, delay_of(unit), 1.0, None),
            };
            map.insert(uid, v);
        }
        for e in circuit.edges() {
            let from = map[&e.from];
            let to = map[&e.to];
            g.add_edge(from, to, i64::from(e.flops));
        }
        (g, map)
    }

    /// Builds a retiming graph from a circuit using raw unit delays rounded
    /// up to whole picoseconds.
    pub fn from_circuit(circuit: &Circuit) -> (Self, HashMap<lacr_netlist::UnitId, VertexId>) {
        Self::from_circuit_with(circuit, |u| u.delay_ps.ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacr_netlist::{Sink, Unit};

    fn ring3() -> RetimeGraph {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let c = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 0);
        g.add_edge(c, a, 0);
        g
    }

    #[test]
    fn period_of_ring() {
        let g = ring3();
        // zero-weight chain b→c→a: delay 1+1+1 = 3.
        assert_eq!(g.clock_period(&g.weights()), Some(3));
    }

    #[test]
    fn retiming_shifts_weights() {
        let g = ring3();
        // r = (0, -1, -1): w(a→b)=1-1-0=0, w(b→c)=0-1+1=0, w(c→a)=0+0+1=1
        let w = g.retimed_weights(&[0, -1, -1]);
        assert_eq!(w, vec![0, 0, 1]);
        assert!(g.weights_legal(&w));
        assert_eq!(g.clock_period(&w), Some(3)); // a→b→c chain
    }

    #[test]
    fn cycle_weight_is_invariant() {
        let g = ring3();
        for r in [[0, 0, 0], [1, -2, 3], [-5, -5, -5]] {
            let w = g.retimed_weights(&r);
            assert_eq!(w.iter().sum::<i64>(), 1);
        }
    }

    #[test]
    fn illegal_weights_detected() {
        let g = ring3();
        let w = g.retimed_weights(&[0, 2, 0]); // a→b weight 3, b→c −2
        assert!(!g.weights_legal(&w));
    }

    #[test]
    fn zero_weight_cycle_has_no_period() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 0);
        assert_eq!(g.clock_period(&g.weights()), None);
    }

    #[test]
    fn try_clock_period_reports_cycle_as_typed_error() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 0);
        assert_eq!(
            g.try_clock_period(&g.weights()),
            Err(RetimeError::CombinationalCycle)
        );
    }

    #[test]
    fn overflowing_delay_chain_is_a_typed_error() {
        // Two near-max delays on one zero-weight edge: the arrival sum
        // wraps u64, which must surface as DelayOverflow, not a silent
        // wrap in release builds.
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, u64::MAX - 1, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, u64::MAX - 1, 1.0, None);
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 1);
        assert_eq!(
            g.try_arrival_times(&g.weights()).unwrap_err(),
            RetimeError::DelayOverflow
        );
        assert_eq!(
            g.try_clock_period(&g.weights()),
            Err(RetimeError::DelayOverflow)
        );
    }

    #[test]
    fn arrival_times_accumulate() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 2, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 3, 1.0, None);
        let c = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
        g.add_edge(a, b, 0);
        g.add_edge(b, c, 0);
        let arr = g.arrival_times(&g.weights()).unwrap();
        assert_eq!(arr, vec![2, 5, 9]);
    }

    #[test]
    fn from_circuit_merges_io_into_host() {
        let mut c = Circuit::new("t");
        let a = c.add_unit(Unit::input("a"));
        let g1 = c.add_unit(Unit::logic("g1", 3.0, 1.0));
        let z = c.add_unit(Unit::output("z"));
        c.add_net(a, vec![Sink::new(g1, 0)]);
        c.add_net(g1, vec![Sink::new(z, 2)]);
        let (g, map) = RetimeGraph::from_circuit(&c);
        assert_eq!(g.num_vertices(), 2); // host + g1
        assert_eq!(map[&a], map[&z]);
        assert_eq!(map[&a], g.host().unwrap());
        assert_eq!(g.total_flops(), 2);
        assert_eq!(g.delay(map[&g1]), 3);
    }

    #[test]
    fn from_circuit_with_scaling() {
        let mut c = Circuit::new("t");
        let a = c.add_unit(Unit::input("a"));
        let g1 = c.add_unit(Unit::logic("g1", 3.0, 1.0));
        let z = c.add_unit(Unit::output("z"));
        c.add_net(a, vec![Sink::new(g1, 0)]);
        c.add_net(g1, vec![Sink::new(z, 0)]);
        let (g, map) = RetimeGraph::from_circuit_with(&c, |u| (u.delay_ps * 10.0) as u64);
        assert_eq!(g.delay(map[&g1]), 30);
    }

    #[test]
    fn interconnect_vertices_carry_kind() {
        let mut g = RetimeGraph::new();
        let v = g.add_vertex(VertexKind::Interconnect, 50, 1.0, Some(3));
        assert_eq!(g.kind(v), VertexKind::Interconnect);
        assert_eq!(g.tile(v), Some(3));
        g.set_tile(v, Some(4));
        assert_eq!(g.tile(v), Some(4));
    }

    #[test]
    #[should_panic]
    fn negative_initial_weight_panics() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        g.add_edge(a, b, -1);
    }

    #[test]
    #[should_panic]
    fn zero_area_weight_panics() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        g.set_area(a, 0.0);
    }
}
