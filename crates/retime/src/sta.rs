//! Static timing analysis over a retiming graph.
//!
//! The planner's purpose is "to provide more accurate interconnect delay
//! information to early design steps" (§1) — this module is that
//! reporting surface: combinational arrival and required times, per-vertex
//! and per-edge slacks against a target period, and extraction of the
//! critical path, all under a given edge-weight assignment (registers cut
//! the combinational graph exactly where their weights are non-zero).

use crate::graph::{RetimeGraph, VertexId};

/// A full timing report for one edge-weight assignment and target period.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Target clock period (ps).
    pub target: u64,
    /// Arrival time of each vertex (ps): worst launch-to-here delay,
    /// including the vertex's own delay.
    pub arrival: Vec<u64>,
    /// Required time of each vertex (ps): the latest arrival that still
    /// meets the target at every downstream register/output boundary.
    pub required: Vec<i64>,
    /// Slack of each vertex: `required − arrival` (negative = violating).
    pub slack: Vec<i64>,
    /// Achieved period: the largest arrival time.
    pub period: u64,
}

impl TimingReport {
    /// Worst (most negative) slack in the design.
    pub fn worst_slack(&self) -> i64 {
        self.slack.iter().copied().min().unwrap_or(0)
    }

    /// Whether every vertex meets the target.
    pub fn meets_target(&self) -> bool {
        self.period <= self.target
    }

    /// Vertices with negative slack, worst first.
    pub fn violating_vertices(&self) -> Vec<VertexId> {
        let mut v: Vec<(i64, usize)> = self
            .slack
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, s)| s < 0)
            .map(|(i, s)| (s, i))
            .collect();
        v.sort();
        v.into_iter().map(|(_, i)| VertexId(i as u32)).collect()
    }
}

/// Computes a timing report for `weights` against `target`.
///
/// Returns `None` when the zero-weight subgraph is cyclic (no valid
/// timing exists).
///
/// # Panics
///
/// Panics if `weights` is not parallel to the graph's edges.
///
/// # Examples
///
/// ```
/// use lacr_retime::{analyze_timing, RetimeGraph, VertexKind};
///
/// let mut g = RetimeGraph::new();
/// let a = g.add_vertex(VertexKind::Functional, 3, 1.0, None);
/// let b = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
/// g.add_edge(a, b, 0);
/// g.add_edge(b, a, 1);
/// let report = analyze_timing(&g, &g.weights(), 10).expect("acyclic");
/// assert_eq!(report.period, 7);
/// assert!(report.meets_target());
/// assert_eq!(report.worst_slack(), 3);
/// ```
pub fn analyze_timing(graph: &RetimeGraph, weights: &[i64], target: u64) -> Option<TimingReport> {
    assert_eq!(weights.len(), graph.num_edges());
    let arrival = graph.arrival_times(weights)?;
    let period = arrival.iter().copied().max().unwrap_or(0);
    let n = graph.num_vertices();
    let host = graph.host();

    // Required times, computed backwards over the zero-weight subgraph:
    // a vertex that launches into a register (or has no zero-weight
    // fanout) must settle by `target`; otherwise by the minimum over
    // fanouts of `required(f) − d(f)`.
    //
    // Reverse-topological order = reverse of a forward Kahn order.
    let mut indeg = vec![0usize; n];
    for (i, e) in graph.edges().iter().enumerate() {
        if weights[i] == 0 && Some(e.to) != host {
            indeg[e.to.index()] += 1;
        }
    }
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    while let Some(v) = queue.pop() {
        order.push(v);
        for e in graph.out_edges(VertexId(v as u32)) {
            let i = e.index();
            if weights[i] != 0 {
                continue;
            }
            let to = graph.edge(e).to;
            if Some(to) == host {
                continue;
            }
            indeg[to.index()] -= 1;
            if indeg[to.index()] == 0 {
                queue.push(to.index());
            }
        }
    }
    if order.len() != n {
        return None;
    }
    let mut required = vec![target as i64; n];
    for &v in order.iter().rev() {
        if Some(VertexId(v as u32)) == host {
            continue;
        }
        let mut req = i64::MAX;
        let mut has_comb_fanout = false;
        for e in graph.out_edges(VertexId(v as u32)) {
            let edge = graph.edge(e);
            if weights[e.index()] != 0 || Some(edge.to) == host {
                continue;
            }
            has_comb_fanout = true;
            req = req.min(required[edge.to.index()] - graph.delay(edge.to) as i64);
        }
        if has_comb_fanout {
            required[v] = req.min(target as i64);
        }
    }
    let slack: Vec<i64> = (0..n).map(|v| required[v] - arrival[v] as i64).collect();
    Some(TimingReport {
        target,
        arrival,
        required,
        slack,
        period,
    })
}

/// Extracts one critical path (a longest zero-weight delay path) as a
/// vertex sequence, ending at a vertex whose arrival equals the achieved
/// period. Returns an empty vector for an empty graph.
///
/// # Panics
///
/// Panics if `weights` is not parallel to the graph's edges or the
/// zero-weight subgraph is cyclic.
pub fn critical_path(graph: &RetimeGraph, weights: &[i64]) -> Vec<VertexId> {
    let arrival = graph
        .arrival_times(weights)
        .expect("zero-weight subgraph must be acyclic");
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let host = graph.host();
    // End at a maximum-arrival vertex, walk backwards greedily.
    let end = (0..n).max_by_key(|&v| arrival[v]).expect("non-empty");
    let mut path = vec![VertexId(end as u32)];
    let mut cur = VertexId(end as u32);
    loop {
        let need = arrival[cur.index()].saturating_sub(graph.delay(cur));
        if need == 0 {
            break;
        }
        let mut pred = None;
        for e in graph.in_edges(cur) {
            let edge = graph.edge(e);
            if weights[e.index()] != 0 || Some(edge.from) == host {
                continue;
            }
            if arrival[edge.from.index()] == need {
                pred = Some(edge.from);
                break;
            }
        }
        match pred {
            Some(p) => {
                path.push(p);
                cur = p;
            }
            None => break,
        }
    }
    path.reverse();
    path
}

/// Per-edge timing criticality in `[0, 1]`: 1 on the critical path, 0 on
/// the loosest edges. Registered edges have criticality 0 (the register
/// isolates them). Useful for ordering nets in timing-driven routing.
///
/// # Panics
///
/// Panics if `weights` mismatches the graph edges.
pub fn edge_criticality(graph: &RetimeGraph, weights: &[i64], target: u64) -> Option<Vec<f64>> {
    let report = analyze_timing(graph, weights, target)?;
    let worst = report.worst_slack().min(0);
    let span = (target as i64 - worst).max(1) as f64;
    let crit = graph
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| {
            if weights[i] != 0 {
                return 0.0;
            }
            // Edge slack: required(head) − d(head) − arrival(tail).
            let s = report.required[e.to.index()]
                - graph.delay(e.to) as i64
                - report.arrival[e.from.index()] as i64;
            (1.0 - (s - worst) as f64 / span).clamp(0.0, 1.0)
        })
        .collect();
    Some(crit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexKind;

    /// a(2) → b(3) → c(4), registered back-edge c→a.
    fn chain() -> RetimeGraph {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 2, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 3, 1.0, None);
        let c = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
        g.add_edge(a, b, 0);
        g.add_edge(b, c, 0);
        g.add_edge(c, a, 1);
        g
    }

    #[test]
    fn arrivals_and_requireds() {
        let g = chain();
        let r = analyze_timing(&g, &g.weights(), 10).expect("acyclic");
        assert_eq!(r.arrival, vec![2, 5, 9]);
        assert_eq!(r.period, 9);
        // required(c) = 10, required(b) = 10 − 4 = 6, required(a) = 6 − 3 = 3.
        assert_eq!(r.required, vec![3, 6, 10]);
        assert_eq!(r.slack, vec![1, 1, 1]);
        assert_eq!(r.worst_slack(), 1);
        assert!(r.meets_target());
        assert!(r.violating_vertices().is_empty());
    }

    #[test]
    fn negative_slack_reported() {
        let g = chain();
        let r = analyze_timing(&g, &g.weights(), 7).expect("acyclic");
        assert!(!r.meets_target());
        assert_eq!(r.worst_slack(), -2);
        let viol = r.violating_vertices();
        assert!(!viol.is_empty());
        // the worst vertex is on the critical path
        let cp = critical_path(&g, &g.weights());
        assert!(cp.contains(&viol[0]));
    }

    #[test]
    fn critical_path_is_the_chain() {
        let g = chain();
        let cp = critical_path(&g, &g.weights());
        assert_eq!(cp.len(), 3);
        assert_eq!(cp[0].index(), 0);
        assert_eq!(cp[2].index(), 2);
    }

    #[test]
    fn registers_cut_the_path() {
        let g = chain();
        // Move the register from c→a to a→b: the zero-weight chain is now
        // b→c→a with delay 3+4+2 = 9.
        let w = vec![1, 0, 0];
        let r = analyze_timing(&g, &w, 10).expect("acyclic");
        assert_eq!(r.period, 9);
        let cp = critical_path(&g, &w);
        assert_eq!(cp.len(), 3);
        assert_eq!(cp[0].index(), 1);
        assert_eq!(cp[2].index(), 0);
    }

    #[test]
    fn criticality_orders_edges() {
        let mut g = RetimeGraph::new();
        // Two parallel paths to c: a slow one through b, a fast one direct.
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 8, 1.0, None);
        let c = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let e_slow1 = g.add_edge(a, b, 0);
        let e_slow2 = g.add_edge(b, c, 0);
        let e_fast = g.add_edge(a, c, 0);
        let e_back = g.add_edge(c, a, 1);
        let crit = edge_criticality(&g, &g.weights(), 12).expect("acyclic");
        assert!(crit[e_slow1.index()] > crit[e_fast.index()]);
        assert!(crit[e_slow2.index()] > crit[e_fast.index()]);
        assert_eq!(crit[e_back.index()], 0.0);
    }

    #[test]
    fn host_does_not_constrain_required_times() {
        let mut g = RetimeGraph::new();
        let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        g.set_host(h);
        let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        g.add_edge(h, a, 1);
        g.add_edge(a, h, 0);
        let r = analyze_timing(&g, &g.weights(), 9).expect("acyclic");
        // a's only zero-weight fanout is the host: treated as a capture
        // boundary, so required(a) = target.
        assert_eq!(r.required[a.index()], 9);
        assert_eq!(r.slack[a.index()], 4);
    }

    #[test]
    fn cyclic_zero_weights_yield_none() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 0);
        assert!(analyze_timing(&g, &g.weights(), 5).is_none());
        assert!(edge_criticality(&g, &g.weights(), 5).is_none());
    }

    #[test]
    fn empty_graph() {
        let g = RetimeGraph::new();
        let r = analyze_timing(&g, &[], 5).expect("vacuously acyclic");
        assert_eq!(r.period, 0);
        assert!(critical_path(&g, &[]).is_empty());
    }
}
