//! Retiming of logic and interconnects (§3 of the paper).
//!
//! This crate implements the full classical retiming stack the paper's
//! LAC-retiming heuristic is built on:
//!
//! * [`RetimeGraph`] — the weighted graph `G(V, E)` with vertex delays,
//!   per-vertex flip-flop area weights and tile assignments, including
//!   *interconnect units* (repeater-driven wire segments modelled as
//!   zero-logic vertices, §3.2);
//! * [`min_period_retiming`] / [`feasible_retiming`] — Leiserson–Saxe FEAS
//!   with binary search, producing the paper's `T_min`;
//! * [`generate_period_constraints`] / [`WdSubstrate`] — the W/D
//!   computation with Maheshwari–Sapatnekar-style constraint pruning,
//!   generated **once** per search bracket and re-emitted per target with
//!   a linear scan;
//! * [`min_area_retiming`] / [`weighted_min_area_retiming`] — the LP dual /
//!   min-cost-flow solve (§3.1, §4.2).
//!
//! # Examples
//!
//! Retiming a two-stage pipeline to its optimum:
//!
//! ```
//! use lacr_retime::{min_area_retiming, min_period_retiming, RetimeGraph, VertexKind};
//!
//! let mut g = RetimeGraph::new();
//! let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
//! g.set_host(h);
//! let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
//! let b = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
//! g.add_edge(h, a, 2);
//! g.add_edge(a, b, 0);
//! g.add_edge(b, h, 0);
//!
//! let mp = min_period_retiming(&g);
//! assert_eq!(mp.period, 5);
//! let out = min_area_retiming(&g, mp.period)?;
//! assert_eq!(out.total_flops, 2);
//! # Ok::<(), lacr_retime::RetimeError>(())
//! ```

mod constraints;
mod feas;
mod graph;
mod minarea;
mod sharing;
mod sta;
mod verify;

pub use constraints::{
    edge_constraints, generate_period_constraints, PeriodConstraints, WdSubstrate,
};
pub use feas::{
    feasible_retiming, min_period_retiming, min_period_retiming_with_tolerance,
    try_feasible_retiming, try_min_period_retiming, MinPeriodOutcome, MinPeriodResult,
};
pub use graph::{EdgeId, GraphEdge, RetimeGraph, VertexId, VertexKind};
pub use minarea::{
    feasible_min_area_fallback, min_area_retiming, weighted_flop_cost, weighted_min_area_retiming,
    MinAreaSolver, RetimeError, RetimingOutcome,
};
pub use sharing::{shared_min_area_retiming, shared_register_count, SharedRetimingOutcome};
pub use sta::{analyze_timing, critical_path, edge_criticality, TimingReport};
pub use verify::{verify_retiming, VerifyError};
