//! Minimum-area and weighted minimum-area retiming via min-cost flow.
//!
//! Plain min-area retiming (§3.1) minimises the total flip-flop count
//! `N(G_r) = Σ_e w_r(e)` under the clock-period constraint. Weighted
//! min-area retiming (§4.2) scores the flip-flops on edge `e` by the area
//! weight `A(tail(e))` of the driving unit — the unit whose tile the
//! flip-flops will be charged to — so the objective becomes
//! `N'(G_r) = Σ_e A(tail(e)) · w_r(e)`, with vertex coefficients
//! `fi(v) − fo(v)` exactly as the paper derives. Both reduce to the same
//! LP dual, solved by [`lacr_mcmf::solve_dual_program`].

use crate::constraints::{edge_constraints, generate_period_constraints, PeriodConstraints};
use crate::graph::RetimeGraph;
use lacr_mcmf::{Constraint, DualError, DualSolver};
use std::fmt;

/// Fixed-point scale used to quantise real-valued area weights to integer
/// milli-units so the flow problem stays integral.
const AREA_SCALE: f64 = 4194304.0;

/// Error from the min-area retiming entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetimeError {
    /// The target clock period cannot be met by any retiming.
    PeriodInfeasible {
        /// The requested period (ps).
        target: u64,
    },
    /// A path-delay sum overflowed `u64` (adversarially large vertex
    /// delays on very long combinational chains).
    DelayOverflow,
    /// The zero-weight subgraph is cyclic: some directed cycle carries no
    /// flip-flop, so the circuit has no defined clock period.
    CombinationalCycle,
    /// The underlying LP solve failed in an unexpected way (indicates an
    /// internal inconsistency; should not occur for valid circuits).
    Internal(String),
}

impl fmt::Display for RetimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetimeError::PeriodInfeasible { target } => {
                write!(f, "no retiming achieves a clock period of {target} ps")
            }
            RetimeError::DelayOverflow => {
                write!(f, "path delay accumulation overflowed u64 picoseconds")
            }
            RetimeError::CombinationalCycle => {
                write!(
                    f,
                    "a directed cycle carries no flip-flop (no valid clock period)"
                )
            }
            RetimeError::Internal(msg) => write!(f, "internal retiming error: {msg}"),
        }
    }
}

impl std::error::Error for RetimeError {}

/// The outcome of a (weighted) min-area retiming.
#[derive(Debug, Clone, PartialEq)]
pub struct RetimingOutcome {
    /// The retiming vector (one label per vertex).
    pub retiming: Vec<i64>,
    /// The retimed edge weights, parallel to [`RetimeGraph::edges`].
    pub weights: Vec<i64>,
    /// Total flip-flops after retiming.
    pub total_flops: i64,
    /// Clock period achieved (ps); always `≤` the requested target.
    pub period: u64,
}

/// Minimum-area retiming: minimise the total number of flip-flops subject
/// to the clock-period constraint, assuming unit flip-flop area.
///
/// # Errors
///
/// [`RetimeError::PeriodInfeasible`] when `target` is unattainable.
///
/// # Examples
///
/// ```
/// use lacr_retime::{min_area_retiming, RetimeGraph, VertexKind};
///
/// let mut g = RetimeGraph::new();
/// let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
/// let b = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
/// g.add_edge(a, b, 1);
/// g.add_edge(b, a, 1);
/// let out = min_area_retiming(&g, 10)?;
/// assert_eq!(out.total_flops, 2); // cycle weight is invariant
/// assert!(out.period <= 10);
/// # Ok::<(), lacr_retime::RetimeError>(())
/// ```
pub fn min_area_retiming(graph: &RetimeGraph, target: u64) -> Result<RetimingOutcome, RetimeError> {
    let pc = generate_period_constraints(graph, target)?;
    let areas = vec![1.0; graph.num_vertices()];
    weighted_min_area_retiming(graph, &pc, &areas)
}

/// Weighted minimum-area retiming with per-vertex flip-flop area weights
/// `areas[v] = A(v)` and pre-generated period constraints.
///
/// Generating [`PeriodConstraints`] once and re-solving with updated
/// weights is exactly how the paper keeps LAC-retiming's run time in the
/// same order as a single min-area retiming (§4.2).
///
/// # Errors
///
/// [`RetimeError::PeriodInfeasible`] when the constraint system is
/// infeasible.
///
/// # Panics
///
/// Panics if `areas.len() != graph.num_vertices()` or any weight is not a
/// positive finite number.
pub fn weighted_min_area_retiming(
    graph: &RetimeGraph,
    period_constraints: &PeriodConstraints,
    areas: &[f64],
) -> Result<RetimingOutcome, RetimeError> {
    MinAreaSolver::new(graph, period_constraints)?.solve(areas)
}

/// A reusable weighted min-area solver for one graph and one target
/// period.
///
/// LAC-retiming re-solves the same constraint system with slowly changing
/// area weights; this solver keeps the min-cost-flow residual network warm
/// between rounds ([`lacr_mcmf::DualSolver`]), so each round after the
/// first only routes the imbalance *deltas*. This is what keeps the whole
/// LAC loop "in the same order as that of min-area retiming" (§4.2).
///
/// # Examples
///
/// ```
/// use lacr_retime::{generate_period_constraints, MinAreaSolver, RetimeGraph, VertexKind};
///
/// let mut g = RetimeGraph::new();
/// let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
/// let b = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
/// g.add_edge(a, b, 1);
/// g.add_edge(b, a, 0);
/// let pc = generate_period_constraints(&g, 10)?;
/// let mut solver = MinAreaSolver::new(&g, &pc)?;
/// let cheap_b = solver.solve(&[10.0, 1.0])?;
/// let cheap_a = solver.solve(&[1.0, 10.0])?;
/// assert_eq!(cheap_b.total_flops, 1);
/// assert_ne!(cheap_b.weights, cheap_a.weights);
/// # Ok::<(), lacr_retime::RetimeError>(())
/// ```
#[derive(Debug)]
pub struct MinAreaSolver<'g> {
    graph: &'g RetimeGraph,
    target: u64,
    dual: DualSolver,
}

impl<'g> MinAreaSolver<'g> {
    /// Builds the solver from pre-generated period constraints.
    ///
    /// # Errors
    ///
    /// [`RetimeError::PeriodInfeasible`] when the combined constraint
    /// system has no solution.
    pub fn new(
        graph: &'g RetimeGraph,
        period_constraints: &PeriodConstraints,
    ) -> Result<Self, RetimeError> {
        // A single vertex slower than the target is not expressible as a
        // pairwise W/D constraint; reject it here.
        if graph
            .vertex_ids()
            .any(|v| graph.delay(v) > period_constraints.target)
        {
            return Err(RetimeError::PeriodInfeasible {
                target: period_constraints.target,
            });
        }
        let mut cons: Vec<Constraint> = edge_constraints(graph);
        cons.extend(period_constraints.constraints.iter().copied());
        let dual = match DualSolver::new(graph.num_vertices(), &cons) {
            Ok(d) => d,
            Err(DualError::Infeasible) => {
                return Err(RetimeError::PeriodInfeasible {
                    target: period_constraints.target,
                })
            }
            Err(e) => return Err(RetimeError::Internal(e.to_string())),
        };
        Ok(Self {
            graph,
            target: period_constraints.target,
            dual,
        })
    }

    /// Solves the weighted min-area retiming for the given area weights.
    ///
    /// # Errors
    ///
    /// [`RetimeError::Internal`] on an unexpected solver failure.
    ///
    /// # Panics
    ///
    /// Panics if `areas.len()` mismatches the graph or a weight is not a
    /// positive finite number.
    pub fn solve(&mut self, areas: &[f64]) -> Result<RetimingOutcome, RetimeError> {
        let graph = self.graph;
        let n = graph.num_vertices();
        let _span = lacr_obs::span!("retime.minarea_solve", vertices = n);
        assert_eq!(areas.len(), n);
        assert!(
            areas.iter().all(|a| *a > 0.0 && a.is_finite()),
            "area weights must be positive and finite"
        );
        // Quantise A(v) first so fi/fo sums cancel exactly (Σ cost = 0).
        let qa: Vec<i64> = areas
            .iter()
            .map(|a| (a * AREA_SCALE).round().max(1.0) as i64)
            .collect();
        // cost[v] = fi(v) − fo(v): fi sums the quantised areas of fanin
        // tails, fo charges A(v) per fanout edge.
        let mut cost = vec![0i64; n];
        for e in graph.edges() {
            cost[e.to.index()] += qa[e.from.index()];
            cost[e.from.index()] -= qa[e.from.index()];
        }
        let (r, _obj) = self
            .dual
            .solve(&cost)
            .map_err(|e| RetimeError::Internal(e.to_string()))?;

        let weights = graph.retimed_weights(&r);
        debug_assert!(graph.weights_legal(&weights));
        let period = graph
            .clock_period(&weights)
            .ok_or_else(|| RetimeError::Internal("retimed zero-weight subgraph cyclic".into()))?;
        debug_assert!(
            period <= self.target,
            "period {period} exceeds target {}",
            self.target
        );
        Ok(RetimingOutcome {
            total_flops: weights.iter().sum(),
            retiming: r,
            weights,
            period,
        })
    }
}

/// Degradation-ladder fallback: a *feasible* (not area-minimal) retiming
/// at `target`, computed by the Bellman-Ford-based FEAS solver instead of
/// min-cost flow. Used when the dual solve fails unexpectedly — the plan
/// keeps a legal, period-meeting retiming rather than aborting.
///
/// Returns `None` when no retiming meets `target` (the caller should then
/// surface [`RetimeError::PeriodInfeasible`]).
pub fn feasible_min_area_fallback(graph: &RetimeGraph, target: u64) -> Option<RetimingOutcome> {
    let retiming = crate::feas::feasible_retiming(graph, target)?;
    let weights = graph.retimed_weights(&retiming);
    let period = graph.clock_period(&weights)?;
    Some(RetimingOutcome {
        total_flops: weights.iter().sum(),
        retiming,
        weights,
        period,
    })
}

/// The weighted flip-flop cost `Σ_e A(tail(e)) · w(e)` of an edge-weight
/// assignment — the objective the weighted retiming minimises.
pub fn weighted_flop_cost(graph: &RetimeGraph, weights: &[i64], areas: &[f64]) -> f64 {
    assert_eq!(weights.len(), graph.num_edges());
    graph
        .edges()
        .iter()
        .zip(weights)
        .map(|(e, &w)| areas[e.from.index()] * w as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexKind;
    use lacr_prng::Rng;

    /// host→a→b→host pipeline, two flops on the front edge.
    fn pipeline() -> RetimeGraph {
        let mut g = RetimeGraph::new();
        let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        g.set_host(h);
        let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        g.add_edge(h, a, 2);
        g.add_edge(a, b, 0);
        g.add_edge(b, h, 0);
        g
    }

    #[test]
    fn min_area_meets_period() {
        let g = pipeline();
        let out = min_area_retiming(&g, 5).expect("5 feasible");
        assert!(out.period <= 5);
        assert_eq!(out.total_flops, 2, "host path weight is conserved");
    }

    #[test]
    fn min_area_reports_infeasible() {
        let g = pipeline();
        assert_eq!(
            min_area_retiming(&g, 4),
            Err(RetimeError::PeriodInfeasible { target: 4 })
        );
    }

    #[test]
    fn min_area_reduces_flop_count_when_possible() {
        // Fork-join: h →(1) a →(1) b →(0) h and a →(1) c →(0) h... use a
        // shape where moving a flop from two fanout edges back to the
        // shared fanin edge saves one flop.
        let mut g = RetimeGraph::new();
        let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        g.set_host(h);
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let c = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        g.add_edge(h, a, 0);
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 1);
        g.add_edge(b, h, 0);
        g.add_edge(c, h, 0);
        // Loose period: both fanout flops can retreat onto h→a (one flop).
        let out = min_area_retiming(&g, 100).expect("loose period feasible");
        assert_eq!(out.total_flops, 1, "weights {:?}", out.weights);
    }

    #[test]
    fn weighted_retiming_avoids_expensive_tiles() {
        // a ring a→b→a. One flop must live somewhere on the cycle. With
        // A(a) ≫ A(b), the flop should sit on the edge driven by b.
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let e_ab = g.add_edge(a, b, 1);
        let e_ba = g.add_edge(b, a, 0);
        let pc = generate_period_constraints(&g, 100).unwrap();
        let areas = vec![10.0, 1.0];
        let out = weighted_min_area_retiming(&g, &pc, &areas).expect("feasible");
        assert_eq!(out.weights[e_ba.index()], 1, "flop moved to cheap tail b");
        assert_eq!(out.weights[e_ab.index()], 0);
        // And the opposite weighting keeps it in place.
        let areas = vec![1.0, 10.0];
        let out = weighted_min_area_retiming(&g, &pc, &areas).expect("feasible");
        assert_eq!(out.weights[e_ab.index()], 1);
    }

    #[test]
    fn weighted_cost_helper_matches_definition() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        g.add_edge(a, b, 2);
        g.add_edge(b, a, 1);
        let cost = weighted_flop_cost(&g, &[2, 1], &[3.0, 5.0]);
        assert!((cost - (3.0 * 2.0 + 5.0 * 1.0)).abs() < 1e-12);
    }

    /// Optimality cross-check against brute force on random small graphs.
    #[test]
    fn min_area_is_optimal_on_random_small_graphs() {
        let mut rng = Rng::seed_from_u64(7);
        for case in 0..60 {
            let n = rng.gen_range(2..5usize);
            let mut g = RetimeGraph::new();
            let vs: Vec<_> = (0..n)
                .map(|_| g.add_vertex(VertexKind::Functional, rng.gen_range(1..5), 1.0, None))
                .collect();
            for i in 0..n {
                g.add_edge(vs[i], vs[(i + 1) % n], rng.gen_range(1..3));
            }
            for _ in 0..rng.gen_range(0..3) {
                let x = rng.gen_range(0..n);
                let y = rng.gen_range(0..n);
                g.add_edge(vs[x], vs[y], rng.gen_range(1..3));
            }
            let t0 = g.clock_period(&g.weights()).expect("valid");
            let target = t0; // always feasible
            let out = min_area_retiming(&g, target).expect("feasible at t0");
            let best = brute_force_min_flops(&g, target);
            assert_eq!(
                out.total_flops, best,
                "case {case}: solver {} vs brute {best}",
                out.total_flops
            );
        }
    }

    fn brute_force_min_flops(g: &RetimeGraph, t: u64) -> i64 {
        let n = g.num_vertices();
        let mut r = vec![0i64; n];
        let mut best = i64::MAX;
        fn rec(g: &RetimeGraph, t: u64, r: &mut Vec<i64>, i: usize, best: &mut i64) {
            if i == r.len() {
                let w = g.retimed_weights(r);
                if g.weights_legal(&w) {
                    if let Some(p) = g.clock_period(&w) {
                        if p <= t {
                            *best = (*best).min(w.iter().sum());
                        }
                    }
                }
                return;
            }
            for v in -4..=4 {
                r[i] = v;
                rec(g, t, r, i + 1, best);
            }
            r[i] = 0;
        }
        rec(g, t, &mut r, 1, &mut best);
        best
    }

    /// Weighted optimality cross-check with random positive weights.
    #[test]
    fn weighted_min_area_is_optimal_on_random_small_graphs() {
        let mut rng = Rng::seed_from_u64(11);
        for case in 0..40 {
            let n = rng.gen_range(2..4usize);
            let mut g = RetimeGraph::new();
            let vs: Vec<_> = (0..n)
                .map(|_| g.add_vertex(VertexKind::Functional, rng.gen_range(1..4), 1.0, None))
                .collect();
            for i in 0..n {
                g.add_edge(vs[i], vs[(i + 1) % n], rng.gen_range(1..3));
            }
            let areas: Vec<f64> = (0..n).map(|_| rng.gen_range(1..8) as f64).collect();
            let t0 = g.clock_period(&g.weights()).expect("valid");
            let pc = generate_period_constraints(&g, t0).unwrap();
            let out = weighted_min_area_retiming(&g, &pc, &areas).expect("feasible");
            let got = weighted_flop_cost(&g, &out.weights, &areas);
            let best = brute_force_weighted(&g, t0, &areas);
            assert!(
                (got - best).abs() < 1e-6,
                "case {case}: solver {got} vs brute {best}"
            );
        }
    }

    fn brute_force_weighted(g: &RetimeGraph, t: u64, areas: &[f64]) -> f64 {
        let n = g.num_vertices();
        let mut r = vec![0i64; n];
        let mut best = f64::INFINITY;
        fn rec(g: &RetimeGraph, t: u64, areas: &[f64], r: &mut Vec<i64>, i: usize, best: &mut f64) {
            if i == r.len() {
                let w = g.retimed_weights(r);
                if g.weights_legal(&w) {
                    if let Some(p) = g.clock_period(&w) {
                        if p <= t {
                            let c = weighted_flop_cost(g, &w, areas);
                            if c < *best {
                                *best = c;
                            }
                        }
                    }
                }
                return;
            }
            for v in -4..=4 {
                r[i] = v;
                rec(g, t, areas, r, i + 1, best);
            }
            r[i] = 0;
        }
        rec(g, t, areas, &mut r, 1, &mut best);
        best
    }

    #[test]
    fn fallback_matches_feasibility_and_verifies() {
        let g = pipeline();
        let out = feasible_min_area_fallback(&g, 5).expect("5 feasible");
        assert!(out.period <= 5);
        assert!(g.weights_legal(&out.weights));
        assert_eq!(out.weights, g.retimed_weights(&out.retiming));
        assert!(feasible_min_area_fallback(&g, 4).is_none());
    }

    #[test]
    #[should_panic]
    fn non_positive_area_weight_panics() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        g.add_edge(a, a, 1);
        let pc = generate_period_constraints(&g, 10).unwrap();
        let _ = weighted_min_area_retiming(&g, &pc, &[0.0]);
    }
}
