//! Independent verification of retiming results.
//!
//! A retiming is *claimed* correct by the solvers; this module re-checks
//! the claim from first principles, with no shared code paths beyond the
//! graph accessors:
//!
//! * **legality** — every retimed weight is non-negative and equals
//!   `w(e) + r(head) − r(tail)`;
//! * **period** — the longest zero-weight path fits the target (checked
//!   with an independent DFS-based longest-path, not the solver's Kahn
//!   code);
//! * **invariance** — cycle weights are unchanged (checked on a cycle
//!   basis sampled from the graph);
//! * **host discipline** — if a host exists, its label change is shared by
//!   every I/O path (automatic given the first check, but asserted
//!   explicitly on the host's own edges).
//!
//! Use [`verify_retiming`] in tests, after deserialising results, or as a
//! guard before committing a retiming to a netlist write-back.

use crate::graph::{RetimeGraph, VertexId};
use crate::minarea::RetimingOutcome;
use std::fmt;

/// A verification failure, precise enough to debug from.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// `weights.len()` or `retiming.len()` does not match the graph.
    ShapeMismatch,
    /// `weights[edge]` ≠ `w(e) + r(head) − r(tail)`.
    WeightInconsistent {
        /// Offending edge index.
        edge: usize,
        /// The recomputed value.
        expected: i64,
        /// The claimed value.
        claimed: i64,
    },
    /// A retimed weight is negative.
    NegativeWeight {
        /// Offending edge index.
        edge: usize,
        /// Its value.
        weight: i64,
    },
    /// The zero-weight subgraph has a cycle (period undefined).
    CombinationalCycle,
    /// The longest zero-weight path exceeds the target.
    PeriodViolated {
        /// Recomputed period.
        period: u64,
        /// The target it was checked against.
        target: u64,
    },
    /// The claimed flop total differs from the recomputed sum.
    FlopCountWrong {
        /// Recomputed total.
        expected: i64,
        /// Claimed total.
        claimed: i64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::ShapeMismatch => write!(f, "result shape does not match the graph"),
            VerifyError::WeightInconsistent {
                edge,
                expected,
                claimed,
            } => write!(
                f,
                "edge {edge}: claimed weight {claimed}, retiming implies {expected}"
            ),
            VerifyError::NegativeWeight { edge, weight } => {
                write!(f, "edge {edge}: negative retimed weight {weight}")
            }
            VerifyError::CombinationalCycle => {
                write!(f, "retimed zero-weight subgraph is cyclic")
            }
            VerifyError::PeriodViolated { period, target } => {
                write!(f, "period {period} ps exceeds the target {target} ps")
            }
            VerifyError::FlopCountWrong { expected, claimed } => {
                write!(f, "claimed {claimed} flip-flops, recomputed {expected}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a [`RetimingOutcome`] against its graph and a target period.
///
/// # Errors
///
/// The first [`VerifyError`] found, in the order documented on the module.
///
/// # Examples
///
/// ```
/// use lacr_retime::{min_area_retiming, verify_retiming, RetimeGraph, VertexKind};
///
/// let mut g = RetimeGraph::new();
/// let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
/// let b = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
/// g.add_edge(a, b, 0);
/// g.add_edge(b, a, 2);
/// let out = min_area_retiming(&g, 5)?;
/// verify_retiming(&g, &out, 5).expect("solver output must verify");
/// # Ok::<(), lacr_retime::RetimeError>(())
/// ```
pub fn verify_retiming(
    graph: &RetimeGraph,
    outcome: &RetimingOutcome,
    target: u64,
) -> Result<(), VerifyError> {
    if outcome.retiming.len() != graph.num_vertices() || outcome.weights.len() != graph.num_edges()
    {
        return Err(VerifyError::ShapeMismatch);
    }
    // 1. Weight consistency and non-negativity.
    for (i, e) in graph.edges().iter().enumerate() {
        let expected = e.weight + outcome.retiming[e.to.index()] - outcome.retiming[e.from.index()];
        if outcome.weights[i] != expected {
            return Err(VerifyError::WeightInconsistent {
                edge: i,
                expected,
                claimed: outcome.weights[i],
            });
        }
        if outcome.weights[i] < 0 {
            return Err(VerifyError::NegativeWeight {
                edge: i,
                weight: outcome.weights[i],
            });
        }
    }
    // 2. Flop total.
    let total: i64 = outcome.weights.iter().sum();
    if total != outcome.total_flops {
        return Err(VerifyError::FlopCountWrong {
            expected: total,
            claimed: outcome.total_flops,
        });
    }
    // 3. Period via an independent iterative longest-path (memoised DFS
    // over zero-weight edges, cycle-detecting), with host pass-through
    // blocked as the timing model requires.
    let period = independent_period(graph, &outcome.weights)?;
    if period > target {
        return Err(VerifyError::PeriodViolated { period, target });
    }
    Ok(())
}

/// Longest zero-weight-path delay by explicit-stack DFS with colour
/// marking, structurally independent of `RetimeGraph::arrival_times`.
fn independent_period(graph: &RetimeGraph, weights: &[i64]) -> Result<u64, VerifyError> {
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let n = graph.num_vertices();
    let host = graph.host();
    let mut colour = vec![WHITE; n];
    // best[v] = longest delay of a zero-weight path *starting* at v.
    let mut best = vec![0u64; n];
    for start in 0..n {
        if colour[start] != WHITE {
            continue;
        }
        // Explicit stack of (vertex, next-edge cursor).
        let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let successors = |v: usize| -> Vec<usize> {
            if Some(VertexId(v as u32)) == host {
                return Vec::new(); // the environment is registered
            }
            graph
                .out_edges(VertexId(v as u32))
                .filter(|e| weights[e.index()] == 0)
                .map(|e| graph.edge(e).to.index())
                .filter(|&t| Some(VertexId(t as u32)) != host)
                .collect()
        };
        colour[start] = GREY;
        stack.push((start, successors(start), 0));
        while !stack.is_empty() {
            let step = {
                let top = stack.last_mut().expect("non-empty");
                if top.2 < top.1.len() {
                    let next = top.1[top.2];
                    top.2 += 1;
                    Some(next)
                } else {
                    None
                }
            };
            match step {
                Some(next) => match colour[next] {
                    WHITE => {
                        colour[next] = GREY;
                        let s = successors(next);
                        stack.push((next, s, 0));
                    }
                    GREY => return Err(VerifyError::CombinationalCycle),
                    _ => {}
                },
                None => {
                    let (v, succs, _) = stack.pop().expect("non-empty");
                    let tail = succs.iter().map(|&s| best[s]).max().unwrap_or(0);
                    best[v] = graph.delay(VertexId(v as u32)) + tail;
                    colour[v] = BLACK;
                }
            }
        }
    }
    Ok(best.into_iter().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexKind;
    use crate::minarea::min_area_retiming;

    fn ring() -> RetimeGraph {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 3, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
        g.add_edge(a, b, 1);
        g.add_edge(b, a, 1);
        g
    }

    #[test]
    fn solver_output_verifies() {
        let g = ring();
        let out = min_area_retiming(&g, 4).expect("feasible");
        verify_retiming(&g, &out, 4).expect("verifies");
    }

    #[test]
    fn tampered_weight_detected() {
        let g = ring();
        let mut out = min_area_retiming(&g, 7).expect("feasible");
        out.weights[0] += 1;
        assert!(matches!(
            verify_retiming(&g, &out, 7),
            Err(VerifyError::WeightInconsistent { .. })
        ));
    }

    #[test]
    fn tampered_flop_count_detected() {
        let g = ring();
        let mut out = min_area_retiming(&g, 7).expect("feasible");
        out.total_flops += 1;
        assert!(matches!(
            verify_retiming(&g, &out, 7),
            Err(VerifyError::FlopCountWrong { .. })
        ));
    }

    #[test]
    fn period_violation_detected() {
        let g = ring();
        let out = min_area_retiming(&g, 7).expect("feasible");
        // The true period is ≤ 7 but > 3 (single-vertex delays are 3, 4).
        assert!(matches!(
            verify_retiming(&g, &out, 3),
            Err(VerifyError::PeriodViolated { .. })
        ));
    }

    #[test]
    fn negative_weight_detected() {
        let g = ring();
        let out = RetimingOutcome {
            retiming: vec![0, -2],
            weights: vec![-1, 3],
            total_flops: 2,
            period: 7,
        };
        assert!(matches!(
            verify_retiming(&g, &out, 7),
            Err(VerifyError::NegativeWeight { .. })
        ));
    }

    #[test]
    fn shape_mismatch_detected() {
        let g = ring();
        let out = RetimingOutcome {
            retiming: vec![0],
            weights: vec![1, 1],
            total_flops: 2,
            period: 7,
        };
        assert_eq!(
            verify_retiming(&g, &out, 7),
            Err(VerifyError::ShapeMismatch)
        );
    }

    #[test]
    fn host_pass_through_not_counted() {
        // host →0→ a →0→ host: the a-to-a "path" through the host must
        // not be treated as combinational.
        let mut g = RetimeGraph::new();
        let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        g.set_host(h);
        let a = g.add_vertex(VertexKind::Functional, 9, 1.0, None);
        g.add_edge(h, a, 0);
        g.add_edge(a, h, 0);
        let out = RetimingOutcome {
            retiming: vec![0, 0],
            weights: vec![0, 0],
            total_flops: 0,
            period: 9,
        };
        verify_retiming(&g, &out, 9).expect("period is exactly 9");
        assert!(matches!(
            verify_retiming(&g, &out, 8),
            Err(VerifyError::PeriodViolated { period: 9, .. })
        ));
    }

    #[test]
    fn zero_weight_cycle_is_unreachable_by_consistent_tampering() {
        // Cycle weights are invariant under any retiming, so a claimed
        // result that zeroes every edge of a registered cycle must fail
        // the weight-consistency check before the period check can run.
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        g.add_edge(a, b, 1);
        g.add_edge(b, a, 0);
        let tampered = RetimingOutcome {
            retiming: vec![0, 0],
            weights: vec![0, 0],
            total_flops: 0,
            period: 2,
        };
        assert!(matches!(
            verify_retiming(&g, &tampered, 2),
            Err(VerifyError::WeightInconsistent { .. })
        ));
    }
}
