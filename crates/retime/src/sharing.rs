//! Register-sharing-aware minimum-area retiming (the Leiserson–Saxe §8
//! "mirror vertex" model).
//!
//! The paper (and [`crate::min_area_retiming`]) counts flip-flops per
//! *connection*: `N(G_r) = Σ_e w_r(e)`. Physically, a multi-fanout unit
//! can drive all its fanouts from one shared register chain, so the
//! registers actually needed at `u`'s output are
//! `max_i w_r(u, v_i)`, not the sum. Minimising
//!
//! ```text
//! Σ_u A(u) · max_i w_r(u, v_i)
//! ```
//!
//! is still an LP over difference constraints: for every multi-fanout
//! vertex `u`, introduce a *mirror* variable `û` encoding the chain length
//! via `m_u = w_max(u) + r(û) − r(u)`; then `m_u ≥ w_r(u, v_i)` becomes
//! the difference constraint `r(v_i) − r(û) ≤ w_max(u) − w(u, v_i)`, and
//! `m_u ≥ 0` becomes `r(u) − r(û) ≤ w_max(u)`. The objective swaps the
//! per-edge fanout terms of `u` for one `A(u)·m_u` term. Everything else
//! (edge non-negativity, clock-period constraints) is untouched, so the
//! same [`lacr_mcmf::DualSolver`] machinery applies.

use crate::constraints::{edge_constraints, PeriodConstraints};
use crate::graph::RetimeGraph;
use crate::minarea::{RetimeError, RetimingOutcome};
use lacr_mcmf::{Constraint, DualError, DualSolver};

/// Fixed-point scale matching [`crate::minarea`]'s quantisation.
const AREA_SCALE: f64 = 1024.0;

/// Outcome of a sharing-aware min-area retiming.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedRetimingOutcome {
    /// The retiming itself (weights, period, per-connection flip-flops).
    pub outcome: RetimingOutcome,
    /// Registers needed under the sharing model:
    /// `Σ_u max_i w_r(u, v_i)` (what the optimiser minimised).
    pub shared_registers: i64,
}

/// Registers needed by an edge-weight assignment under maximal fanout
/// sharing: `Σ_u max over u's out-edges of w(e)`.
///
/// # Panics
///
/// Panics if `weights` is not parallel to the graph's edges.
pub fn shared_register_count(graph: &RetimeGraph, weights: &[i64]) -> i64 {
    assert_eq!(weights.len(), graph.num_edges());
    graph
        .vertex_ids()
        .map(|u| {
            graph
                .out_edges(u)
                .map(|e| weights[e.index()])
                .max()
                .unwrap_or(0)
        })
        .sum()
}

/// Sharing-aware weighted minimum-area retiming.
///
/// Minimises `Σ_u A(u) · max_i w_r(u, v_i)` subject to the usual edge and
/// clock-period constraints. Compared with [`crate::weighted_min_area_retiming`],
/// this can pick a retiming with a *larger* per-connection sum when that
/// lets multi-fanout registers be shared.
///
/// # Errors
///
/// [`RetimeError::PeriodInfeasible`] when the constraint system has no
/// solution; [`RetimeError::Internal`] on unexpected solver failures.
///
/// # Panics
///
/// Panics if `areas` mismatches the graph or a weight is not positive and
/// finite.
///
/// # Examples
///
/// ```
/// use lacr_retime::{
///     generate_period_constraints, min_area_retiming, shared_min_area_retiming,
///     shared_register_count, RetimeGraph, VertexKind,
/// };
///
/// // One driver with two registered fanouts closing back to it.
/// let mut g = RetimeGraph::new();
/// let u = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
/// let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
/// let b = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
/// g.add_edge(u, a, 2);
/// g.add_edge(u, b, 2);
/// g.add_edge(a, u, 0);
/// g.add_edge(b, u, 0);
/// let pc = generate_period_constraints(&g, 100).unwrap();
/// let shared = shared_min_area_retiming(&g, &pc, &[1.0; 3])?;
/// // Two parallel 2-register chains share into one chain of 2.
/// assert_eq!(shared.shared_registers, 2);
/// # Ok::<(), lacr_retime::RetimeError>(())
/// ```
pub fn shared_min_area_retiming(
    graph: &RetimeGraph,
    period_constraints: &PeriodConstraints,
    areas: &[f64],
) -> Result<SharedRetimingOutcome, RetimeError> {
    let n = graph.num_vertices();
    let _span = lacr_obs::span!("retime.sharing_solve", vertices = n);
    assert_eq!(areas.len(), n);
    assert!(
        areas.iter().all(|a| *a > 0.0 && a.is_finite()),
        "area weights must be positive and finite"
    );
    // A single vertex slower than the target is not expressible as a
    // pairwise W/D constraint; reject it here.
    if graph
        .vertex_ids()
        .any(|v| graph.delay(v) > period_constraints.target)
    {
        return Err(RetimeError::PeriodInfeasible {
            target: period_constraints.target,
        });
    }

    // Mirror variables for multi-fanout vertices.
    let mut mirror_of = vec![usize::MAX; n];
    let mut num_vars = n;
    let mut w_max = vec![0i64; n];
    for u in graph.vertex_ids() {
        let fanout = graph.out_edges(u).count();
        if fanout >= 2 {
            mirror_of[u.index()] = num_vars;
            num_vars += 1;
            w_max[u.index()] = graph
                .out_edges(u)
                .map(|e| graph.edge(e).weight)
                .max()
                .unwrap_or(0);
        }
    }

    let mut cons: Vec<Constraint> = edge_constraints(graph);
    cons.extend(period_constraints.constraints.iter().copied());
    for u in graph.vertex_ids() {
        let ui = u.index();
        let m = mirror_of[ui];
        if m == usize::MAX {
            continue;
        }
        // m_u ≥ 0  ⇔  r(u) − r(û) ≤ w_max(u)
        cons.push(Constraint::new(ui, m, w_max[ui]));
        // m_u ≥ w_r(u, v_i)  ⇔  r(v_i) − r(û) ≤ w_max(u) − w(u, v_i)
        for e in graph.out_edges(u) {
            let edge = graph.edge(e);
            cons.push(Constraint::new(edge.to.index(), m, w_max[ui] - edge.weight));
        }
    }

    let qa: Vec<i64> = areas
        .iter()
        .map(|a| (a * AREA_SCALE).round().max(1.0) as i64)
        .collect();
    let mut cost = vec![0i64; num_vars];
    for u in graph.vertex_ids() {
        let ui = u.index();
        match mirror_of[ui] {
            usize::MAX => {
                // Single-fanout (or sink): the classic per-edge terms.
                for e in graph.out_edges(u) {
                    let edge = graph.edge(e);
                    cost[edge.to.index()] += qa[ui];
                    cost[ui] -= qa[ui];
                }
            }
            m => {
                // One A(u)·m_u term: +A(u) on û, −A(u) on u.
                cost[m] += qa[ui];
                cost[ui] -= qa[ui];
            }
        }
    }

    let mut solver = match DualSolver::new(num_vars, &cons) {
        Ok(s) => s,
        Err(DualError::Infeasible) => {
            return Err(RetimeError::PeriodInfeasible {
                target: period_constraints.target,
            })
        }
        Err(e) => return Err(RetimeError::Internal(e.to_string())),
    };
    let (r_all, _obj) = solver
        .solve(&cost)
        .map_err(|e| RetimeError::Internal(e.to_string()))?;

    let r = r_all[..n].to_vec();
    let weights = graph.retimed_weights(&r);
    debug_assert!(graph.weights_legal(&weights));
    let period = graph
        .clock_period(&weights)
        .ok_or_else(|| RetimeError::Internal("retimed zero-weight subgraph cyclic".into()))?;
    debug_assert!(period <= period_constraints.target);
    let shared = shared_register_count(graph, &weights);
    Ok(SharedRetimingOutcome {
        outcome: RetimingOutcome {
            total_flops: weights.iter().sum(),
            retiming: r,
            weights,
            period,
        },
        shared_registers: shared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::generate_period_constraints;
    use crate::graph::VertexKind;
    use crate::minarea::weighted_min_area_retiming;
    use lacr_prng::Rng;

    /// Fork where sharing matters: u drives a and b, both paths carry two
    /// registers back to u.
    fn fork() -> RetimeGraph {
        let mut g = RetimeGraph::new();
        let u = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        g.add_edge(u, a, 2);
        g.add_edge(u, b, 2);
        g.add_edge(a, u, 0);
        g.add_edge(b, u, 0);
        g
    }

    #[test]
    fn sharing_halves_the_fork_cost() {
        let g = fork();
        let pc = generate_period_constraints(&g, 100).unwrap();
        let unshared = weighted_min_area_retiming(&g, &pc, &[1.0; 3]).unwrap();
        let shared = shared_min_area_retiming(&g, &pc, &[1.0; 3]).unwrap();
        // Sum model cannot beat 4 (cycle sums are invariant: each of the
        // two u→x→u cycles carries 2).
        assert_eq!(unshared.total_flops, 4);
        assert_eq!(shared.shared_registers, 2);
        // And the sharing-aware solution is one chain of 2 at u's output.
        assert_eq!(shared.outcome.weights[0], shared.outcome.weights[1]);
    }

    #[test]
    fn shared_count_helper() {
        let g = fork();
        assert_eq!(shared_register_count(&g, &[2, 2, 0, 0]), 2);
        assert_eq!(shared_register_count(&g, &[2, 0, 0, 2]), 4);
        assert_eq!(shared_register_count(&g, &[0, 0, 1, 1]), 2);
    }

    #[test]
    fn sharing_never_worse_than_sum_model() {
        // The sharing optimum is ≤ the shared cost of the sum-model
        // optimum (it optimises that metric directly).
        let mut rng = Rng::seed_from_u64(23);
        for case in 0..40 {
            let n = rng.gen_range(3..6usize);
            let mut g = RetimeGraph::new();
            let vs: Vec<_> = (0..n)
                .map(|_| g.add_vertex(VertexKind::Functional, rng.gen_range(1..4), 1.0, None))
                .collect();
            for i in 0..n {
                g.add_edge(vs[i], vs[(i + 1) % n], rng.gen_range(1..3));
            }
            for _ in 0..rng.gen_range(1..4) {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                g.add_edge(vs[a], vs[b], rng.gen_range(1..3));
            }
            let t = g.clock_period(&g.weights()).expect("valid");
            let pc = generate_period_constraints(&g, t).unwrap();
            let unshared = weighted_min_area_retiming(&g, &pc, &vec![1.0; n]).unwrap();
            let shared = shared_min_area_retiming(&g, &pc, &vec![1.0; n]).unwrap();
            assert!(
                shared.shared_registers <= shared_register_count(&g, &unshared.weights),
                "case {case}"
            );
            assert!(shared.outcome.period <= t, "case {case}");
        }
    }

    #[test]
    fn sharing_optimum_matches_brute_force() {
        let mut rng = Rng::seed_from_u64(31);
        for case in 0..30 {
            let n = rng.gen_range(2..4usize);
            let mut g = RetimeGraph::new();
            let vs: Vec<_> = (0..n)
                .map(|_| g.add_vertex(VertexKind::Functional, rng.gen_range(1..4), 1.0, None))
                .collect();
            for i in 0..n {
                g.add_edge(vs[i], vs[(i + 1) % n], rng.gen_range(1..3));
            }
            for _ in 0..rng.gen_range(1..3) {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                g.add_edge(vs[a], vs[b], rng.gen_range(0..2));
            }
            if g.clock_period(&g.weights()).is_none() {
                continue; // chord created a zero-weight cycle
            }
            let t = g.clock_period(&g.weights()).expect("valid");
            let pc = generate_period_constraints(&g, t).unwrap();
            let shared = match shared_min_area_retiming(&g, &pc, &vec![1.0; n]) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let best = brute_force_shared(&g, t);
            assert_eq!(shared.shared_registers, best, "case {case}");
        }
    }

    fn brute_force_shared(g: &RetimeGraph, t: u64) -> i64 {
        let n = g.num_vertices();
        let mut r = vec![0i64; n];
        let mut best = i64::MAX;
        fn rec(g: &RetimeGraph, t: u64, r: &mut Vec<i64>, i: usize, best: &mut i64) {
            if i == r.len() {
                let w = g.retimed_weights(r);
                if g.weights_legal(&w) {
                    if let Some(p) = g.clock_period(&w) {
                        if p <= t {
                            *best = (*best).min(shared_register_count(g, &w));
                        }
                    }
                }
                return;
            }
            for v in -4..=4 {
                r[i] = v;
                rec(g, t, r, i + 1, best);
            }
            r[i] = 0;
        }
        rec(g, t, &mut r, 1, &mut best);
        best
    }

    #[test]
    fn infeasible_period_reported() {
        let g = fork();
        let pc = generate_period_constraints(&g, 0).unwrap();
        assert!(matches!(
            shared_min_area_retiming(&g, &pc, &[1.0; 3]),
            Err(RetimeError::PeriodInfeasible { .. })
        ));
    }
}
