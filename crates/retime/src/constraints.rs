//! Clock-period constraint generation (the W/D computation).
//!
//! For a target period `T`, minimum-area retiming needs, for every vertex
//! pair with `D(u, v) > T`, the constraint `r(u) − r(v) ≤ W(u, v) − 1`
//! (Eqn. (2) of the paper), where `W(u, v)` is the minimum flip-flop count
//! over `u⇝v` paths and `D(u, v)` the maximum delay among the
//! minimum-weight paths.
//!
//! Implementation: one Dijkstra per source `u` over the non-negative edge
//! weights gives `W(u, ·)`; the *tight subgraph* (edges on some
//! minimum-weight path) is then a DAG — any tight cycle would be a
//! zero-weight cycle, which valid circuits exclude — so a longest-path DP
//! over it gives `D(u, ·)`. Constraints are emitted per row, never storing
//! the full `|V|²` matrices.
//!
//! *Pruning* (in the spirit of Maheshwari & Sapatnekar's constraint
//! reduction, cited in §5) drops `(u, v)` whenever some tight-DAG ancestor
//! `x` of `v` already violates (`D(u, x) > T`): the emitted constraint
//! `r(u) − r(x) ≤ W(u, x) − 1` plus the edge constraints along the tight
//! path `x ⇝ v` (total weight `W(u, v) − W(u, v) + W(u, v) − W(u, x)`)
//! imply the dropped one. Pruning is exact — the pruned system has the
//! same solution set as the full one — and is the *only* emission path.
//!
//! # The reusable W/D substrate
//!
//! `W` and `D` do not depend on the target period; only which pairs
//! violate does. Define, per source `u`,
//!
//! ```text
//! A(u, v) = max { D(u, x) : x a proper tight-DAG ancestor of v, x ≠ u }
//! ```
//!
//! (0 when there is none). Then `v` survives pruning at target `T`
//! **exactly** when `D(u, v) > T ≥ A(u, v)` — each candidate has an
//! emission interval `[A, D)` in target space. [`WdSubstrate`] runs the
//! per-source computation **once** for a whole bracket `[lo, hi]` of
//! candidate periods, keeping only candidates whose interval intersects
//! the bracket (`D > lo` and `A ≤ hi` — a thin band around the emission
//! frontier, not the `O(|V|²)` violating-pair set), and
//! [`WdSubstrate::constraints_for`] re-emits the exact pruned constraint
//! set for any target in the bracket with a linear scan. This is what
//! makes the min-period binary search build its W/D system once instead
//! of once per feasibility probe.

use crate::graph::{RetimeGraph, VertexId};
use crate::minarea::RetimeError;
use lacr_mcmf::Constraint;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The period constraints for one target period, generated once and reused
/// across the weighted min-area retimings of a LAC run (the paper's §4.2
/// efficiency argument).
#[derive(Debug, Clone)]
pub struct PeriodConstraints {
    /// The target clock period (integer picoseconds).
    pub target: u64,
    /// Period constraints `r(u) − r(v) ≤ bound` over vertex indices.
    pub constraints: Vec<Constraint>,
    /// Violating pairs (`D(u, v) > lo`) at the floor of the substrate
    /// bracket these constraints were emitted from. For a one-shot
    /// generation the floor *is* the target, so this is exactly the
    /// violating-pair count before pruning; for a probe inside a wider
    /// bracket it is an upper bound.
    pub pairs_before_pruning: usize,
}

/// One pruning candidate of a substrate row: head vertex, constraint
/// bound `W − 1`, and the emission interval `[a, d)` in target space.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    v: u32,
    bound: i64,
    d: u64,
    a: u64,
}

/// The target-independent part of the W/D computation for one graph and
/// one bracket `[lo, hi]` of candidate periods.
///
/// Built once (one `retime.wd_build` span, parallel per-source rows);
/// [`Self::constraints_for`] then emits the exact pruned constraint set of
/// any target in the bracket — bit-identical, values and order, to a
/// fresh [`generate_period_constraints`] at that target.
///
/// # Examples
///
/// ```
/// use lacr_retime::{generate_period_constraints, RetimeGraph, VertexKind, WdSubstrate};
///
/// let mut g = RetimeGraph::new();
/// let a = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
/// let b = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
/// g.add_edge(a, b, 1);
/// g.add_edge(b, a, 1);
/// let sub = WdSubstrate::build(&g, 4, 10)?;
/// for t in 4..=10 {
///     let probe = sub.constraints_for(t);
///     let fresh = generate_period_constraints(&g, t)?;
///     assert_eq!(probe.constraints, fresh.constraints);
/// }
/// # Ok::<(), lacr_retime::RetimeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WdSubstrate {
    lo: u64,
    hi: u64,
    num_vertices: usize,
    /// CSR rows: candidates of source `u` are
    /// `cands[row_start[u]..row_start[u + 1]]`, in ascending head-vertex
    /// index (the canonical emission order).
    row_start: Vec<usize>,
    cands: Vec<Candidate>,
    /// `#{(u, v) : D(u, v) > lo}` — the violating pairs at the bracket
    /// floor, counted during the build without storing them.
    pairs_at_floor: usize,
}

impl WdSubstrate {
    /// Runs the per-source W/D computation for every target in
    /// `[lo, hi]`, under one `retime.wd_build` span.
    ///
    /// # Errors
    ///
    /// [`RetimeError::DelayOverflow`] when accumulating path delays
    /// overflows `u64` (adversarially large vertex delays).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn build(graph: &RetimeGraph, lo: u64, hi: u64) -> Result<Self, RetimeError> {
        assert!(lo <= hi, "bracket [{lo}, {hi}] is empty");
        let n = graph.num_vertices();
        let _span = lacr_obs::span!("retime.wd_build", vertices = n, lo = lo, hi = hi);
        // Each source's row of the W/D computation is independent of every
        // other's, so the per-source loop fans out across the deterministic
        // pool; the ordered merge below restores the canonical
        // (source-major) constraint order regardless of scheduling.
        let sources: Vec<VertexId> = graph.vertex_ids().collect();
        let rows = lacr_par::Region::new("retime.wd_sources").map_indexed_with(
            &sources,
            || SourceScratch::new(n),
            |scratch, _, &u| source_row(graph, lo, hi, u, scratch),
        );
        let mut row_start = Vec::with_capacity(n + 1);
        row_start.push(0usize);
        let mut cands = Vec::new();
        let mut pairs_at_floor = 0usize;
        for row in rows {
            let (row_pairs, row_cands) = row?;
            pairs_at_floor += row_pairs;
            cands.extend(row_cands);
            row_start.push(cands.len());
        }
        lacr_obs::counter!("retime.period_pairs", pairs_at_floor);
        lacr_obs::counter!("retime.wd_candidates", cands.len());
        Ok(Self {
            lo,
            hi,
            num_vertices: n,
            row_start,
            cands,
            pairs_at_floor,
        })
    }

    /// The bracket `[lo, hi]` this substrate covers.
    pub fn bracket(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }

    /// Whether `target` can be served by [`Self::constraints_for`].
    pub fn covers(&self, target: u64) -> bool {
        self.lo <= target && target <= self.hi
    }

    /// Number of vertices of the graph this substrate was built from.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of candidates retained in the band.
    pub fn num_candidates(&self) -> usize {
        self.cands.len()
    }

    /// Emits the pruned period constraints for `target` — bit-identical to
    /// a fresh generation at that target.
    ///
    /// # Panics
    ///
    /// Panics if `target` is outside the bracket (see [`Self::covers`]).
    pub fn constraints_for(&self, target: u64) -> PeriodConstraints {
        assert!(
            self.covers(target),
            "target {target} outside substrate bracket [{}, {}]",
            self.lo,
            self.hi
        );
        let mut constraints = Vec::new();
        for u in 0..self.num_vertices {
            for c in &self.cands[self.row_start[u]..self.row_start[u + 1]] {
                // Emission interval: violating (D > T) and not covered by
                // a violating tight ancestor (A ≤ T).
                if c.d > target && c.a <= target {
                    constraints.push(Constraint::new(u, c.v as usize, c.bound));
                }
            }
        }
        lacr_obs::counter!("retime.constraints_emitted", constraints.len());
        PeriodConstraints {
            target,
            constraints,
            pairs_before_pruning: self.pairs_at_floor,
        }
    }
}

/// Generates the clock-period constraints for `target` (a one-shot
/// substrate covering only `[target, target]`).
///
/// # Errors
///
/// [`RetimeError::DelayOverflow`] when accumulating path delays overflows
/// `u64`.
///
/// # Examples
///
/// ```
/// use lacr_retime::{generate_period_constraints, RetimeGraph, VertexKind};
///
/// let mut g = RetimeGraph::new();
/// let a = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
/// let b = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
/// g.add_edge(a, b, 1);
/// g.add_edge(b, a, 1);
/// // Period 4 fits each vertex alone: no pair path may stay unregistered,
/// // but W(a,b) = 1 already ≥ 1 so the constraint bound is 0.
/// let pc = generate_period_constraints(&g, 7)?;
/// assert_eq!(pc.constraints.len(), 2); // a⇝b and b⇝a both have D = 8 > 7
/// # Ok::<(), lacr_retime::RetimeError>(())
/// ```
pub fn generate_period_constraints(
    graph: &RetimeGraph,
    target: u64,
) -> Result<PeriodConstraints, RetimeError> {
    Ok(WdSubstrate::build(graph, target, target)?.constraints_for(target))
}

/// Reusable per-worker scratch for [`source_row`].
#[derive(Debug)]
struct SourceScratch {
    w: Vec<i64>,
    d: Vec<u64>,
    a: Vec<u64>,
    heap: BinaryHeap<Reverse<(i64, u32)>>,
}

impl SourceScratch {
    fn new(n: usize) -> Self {
        Self {
            w: vec![i64::MAX; n],
            d: vec![0; n],
            a: vec![0; n],
            heap: BinaryHeap::new(),
        }
    }
}

/// One source's W/D/A row: Dijkstra for `W(u, ·)`, longest-delay DP over
/// the tight DAG for `D(u, ·)` and the ancestor maximum `A(u, ·)`, then
/// the band candidates, **in ascending head-vertex index**. The emission
/// order is part of the determinism contract: `W`, `D` and `A` are
/// invariant under adjacency-list order (Dijkstra's heap orders ties by
/// `(distance, vertex)`, both DPs take maxima over incoming tight edges —
/// all order-free), so index-ordered emission makes the whole row, and
/// with it [`WdSubstrate`] and [`PeriodConstraints`], independent of edge
/// insertion order and of scheduling.
///
/// `A(u, v) > T` is exactly the classic `covered` condition at target `T`
/// (some proper tight ancestor `x ≠ u` of `v` violates `D(u, x) > T`):
/// coverage is an OR over ancestor chains, which in threshold space is a
/// max over the same chains.
fn source_row(
    graph: &RetimeGraph,
    band_lo: u64,
    band_hi: u64,
    u: VertexId,
    scratch: &mut SourceScratch,
) -> Result<(usize, Vec<Candidate>), RetimeError> {
    // Paths must not pass *through* the host: the environment registers
    // primary outputs before they can influence primary inputs, so a
    // `u ⇝ host ⇝ v` chain is not a real signal path (pairs ending or
    // starting at the host are still considered).
    let host = graph.host();
    let SourceScratch { w, d, a, heap } = scratch;
    w.iter_mut().for_each(|x| *x = i64::MAX);
    a.iter_mut().for_each(|x| *x = 0);
    // Dijkstra for W(u, ·).
    w[u.index()] = 0;
    heap.clear();
    heap.push(Reverse((0, u.0)));
    let mut reached = 0usize;
    while let Some(Reverse((dist, v))) = heap.pop() {
        if dist > w[v as usize] {
            continue;
        }
        reached += 1;
        if host == Some(VertexId(v)) && u != VertexId(v) {
            continue; // terminate paths at the host
        }
        for e in graph.out_edges(VertexId(v)) {
            let edge = graph.edge(e);
            let nd = dist
                .checked_add(edge.weight)
                .ok_or(RetimeError::DelayOverflow)?;
            if nd < w[edge.to.index()] {
                w[edge.to.index()] = nd;
                heap.push(Reverse((nd, edge.to.0)));
            }
        }
    }
    // Dijkstra pops are in W order, but equal-W pops are not DAG-ordered
    // in general (a tight zero-weight edge may point between two vertices
    // popped in either order), so do an explicit Kahn pass for the tight
    // DAG's topological order.
    let topo = tight_dag_topo(graph, w, host.filter(|&h| h != u), u);
    debug_assert_eq!(
        topo.len(),
        reached,
        "tight subgraph had a zero-weight cycle (invalid circuit)"
    );
    // Longest-delay DP over the tight DAG, with the ancestor maximum `A`
    // computed alongside it.
    d.iter_mut().for_each(|x| *x = 0);
    d[u.index()] = graph.delay(u);
    for &v in &topo {
        let vi = v as usize;
        if host == Some(VertexId(v)) && u != VertexId(v) {
            continue; // terminate paths at the host
        }
        let base = d[vi];
        // A tight ancestor that itself violates the period makes every
        // descendant's constraint redundant (see module docs); in target
        // space that is a running max of ancestor D values, where the
        // source itself never counts.
        let threshold = if vi == u.index() {
            a[vi]
        } else {
            a[vi].max(base)
        };
        for e in graph.out_edges(VertexId(v)) {
            let edge = graph.edge(e);
            let ti = edge.to.index();
            if w[vi] + edge.weight == w[ti] {
                let cand = base
                    .checked_add(graph.delay(edge.to))
                    .ok_or(RetimeError::DelayOverflow)?;
                if cand > d[ti] {
                    d[ti] = cand;
                }
                if threshold > a[ti] {
                    a[ti] = threshold;
                }
            }
        }
    }
    let mut pairs = 0usize;
    let mut cands = Vec::new();
    for vi in 0..w.len() {
        if vi == u.index() || w[vi] == i64::MAX {
            continue;
        }
        if d[vi] > band_lo {
            pairs += 1;
            // Keep the candidate when its emission interval [a, d)
            // intersects the bracket; `a > band_hi` means it is covered
            // at every target the substrate can serve.
            if a[vi] <= band_hi {
                cands.push(Candidate {
                    v: vi as u32,
                    bound: w[vi] - 1,
                    d: d[vi],
                    a: a[vi],
                });
            }
        }
    }
    Ok((pairs, cands))
}

/// Kahn topological order of the tight DAG induced by `w`. Vertices with
/// `w == MAX` (unreachable) never join the order; `blocked` (the host when
/// it is not the source) contributes no outgoing tight edges, and edges
/// back into the `source` are ignored (a tight edge into the source would
/// close a zero-weight cycle — only possible through the host, where paths
/// must terminate anyway).
fn tight_dag_topo(
    graph: &RetimeGraph,
    w: &[i64],
    blocked: Option<VertexId>,
    source: VertexId,
) -> Vec<u32> {
    let n = graph.num_vertices();
    let tight = |edge: &crate::graph::GraphEdge| -> bool {
        let fi = edge.from.index();
        Some(edge.from) != blocked
            && edge.to != source
            && w[fi] != i64::MAX
            && w[fi] + edge.weight == w[edge.to.index()]
    };
    let mut indeg = vec![0u32; n];
    for edge in graph.edges() {
        if tight(edge) {
            indeg[edge.to.index()] += 1;
        }
    }
    let mut topo = Vec::with_capacity(n);
    let mut queue: Vec<u32> = (0..n as u32)
        .filter(|&v| w[v as usize] != i64::MAX && indeg[v as usize] == 0)
        .collect();
    while let Some(v) = queue.pop() {
        topo.push(v);
        for e in graph.out_edges(VertexId(v)) {
            let edge = graph.edge(e);
            if tight(&edge) {
                indeg[edge.to.index()] -= 1;
                if indeg[edge.to.index()] == 0 {
                    queue.push(edge.to.0);
                }
            }
        }
    }
    topo
}

/// The edge-weight (non-negativity) constraints `r(tail) − r(head) ≤ w(e)`
/// (Eqn. (1) of the paper), over vertex indices.
pub fn edge_constraints(graph: &RetimeGraph) -> Vec<Constraint> {
    graph
        .edges()
        .iter()
        .map(|e| Constraint::new(e.from.index(), e.to.index(), e.weight))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexKind;
    use lacr_mcmf::DifferenceConstraints;

    /// host→a→b→host pipeline: delays 5 each, two flops at the front.
    fn pipeline() -> RetimeGraph {
        let mut g = RetimeGraph::new();
        let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        g.set_host(h);
        let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        g.add_edge(h, a, 2);
        g.add_edge(a, b, 0);
        g.add_edge(b, h, 0);
        g
    }

    #[test]
    fn constraints_make_target_feasible_iff_feas_agrees() {
        let g = pipeline();
        for t in 4..=12u64 {
            let pc = generate_period_constraints(&g, t).unwrap();
            let mut all = edge_constraints(&g);
            all.extend(pc.constraints.iter().copied());
            let sys = DifferenceConstraints::new(g.num_vertices(), all);
            let feasible = sys.is_feasible() && t >= 5; // single-vertex delay bound
            let feas = crate::feas::feasible_retiming(&g, t).is_some();
            assert_eq!(feasible, feas, "target {t}");
        }
    }

    #[test]
    fn bellman_ford_solution_of_constraints_is_valid_retiming() {
        let g = pipeline();
        let t = 5;
        let pc = generate_period_constraints(&g, t).unwrap();
        let mut all = edge_constraints(&g);
        all.extend(pc.constraints.iter().copied());
        let sys = DifferenceConstraints::new(g.num_vertices(), all);
        let r = sys.solve().expect("feasible at 5");
        let w = g.retimed_weights(&r);
        assert!(g.weights_legal(&w));
        assert!(g.clock_period(&w).unwrap() <= t);
    }

    #[test]
    fn pruned_solutions_meet_the_target_period() {
        // Pruning is exact: any solution of the pruned system (plus edge
        // constraints) must already achieve the target period, i.e. no
        // dropped constraint was load-bearing.
        let g = pipeline();
        for t in 5..=10u64 {
            let pruned = generate_period_constraints(&g, t).unwrap();
            assert!(pruned.constraints.len() <= pruned.pairs_before_pruning);
            let mut base = edge_constraints(&g);
            base.extend(pruned.constraints.iter().copied());
            let sys = DifferenceConstraints::new(g.num_vertices(), base);
            if let Some(r) = sys.solve() {
                let w = g.retimed_weights(&r);
                assert!(g.weights_legal(&w), "t={t}");
                assert!(
                    g.clock_period(&w).unwrap() <= t,
                    "t={t}: pruned solution misses the period"
                );
            }
        }
    }

    #[test]
    fn substrate_probe_matches_one_shot_generation() {
        let g = pipeline();
        let sub = WdSubstrate::build(&g, 4, 12).unwrap();
        for t in 4..=12u64 {
            let probe = sub.constraints_for(t);
            let fresh = generate_period_constraints(&g, t).unwrap();
            assert_eq!(probe.constraints, fresh.constraints, "target {t}");
        }
    }

    #[test]
    #[should_panic]
    fn substrate_rejects_targets_outside_bracket() {
        let g = pipeline();
        let sub = WdSubstrate::build(&g, 5, 8).unwrap();
        let _ = sub.constraints_for(9);
    }

    #[test]
    fn one_shot_pairs_count_is_exact() {
        let g = pipeline();
        for t in 4..=12u64 {
            let pc = generate_period_constraints(&g, t).unwrap();
            // Brute-force the violating-pair count from a substrate wide
            // enough to keep everything: at the floor the band filter
            // (`d > lo`) is exactly the violating condition.
            let sub = WdSubstrate::build(&g, t, t).unwrap();
            assert_eq!(pc.pairs_before_pruning, sub.pairs_at_floor, "t={t}");
        }
    }

    #[test]
    fn delay_overflow_is_a_typed_error() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, u64::MAX - 1, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, u64::MAX - 1, 1.0, None);
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 1);
        assert_eq!(
            generate_period_constraints(&g, 10).unwrap_err(),
            RetimeError::DelayOverflow
        );
        assert_eq!(
            WdSubstrate::build(&g, 5, 10).unwrap_err(),
            RetimeError::DelayOverflow
        );
    }

    #[test]
    fn tight_dag_longest_path_matches_hand_computation() {
        // u → x (w=0, d=2) → v (w=0, d=3); also u → v direct (w=1).
        // W(u,v) = 0 via x; D(u,v) = d(u)+2+3.
        let mut g = RetimeGraph::new();
        let u = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let x = g.add_vertex(VertexKind::Functional, 2, 1.0, None);
        let v = g.add_vertex(VertexKind::Functional, 3, 1.0, None);
        g.add_edge(u, x, 0);
        g.add_edge(x, v, 0);
        g.add_edge(u, v, 1);
        g.add_edge(v, u, 1); // close the loop legally
        let pc = generate_period_constraints(&g, 5).unwrap();
        // D(u,v) = 6 > 5 → constraint r(u) − r(v) ≤ W−1 = −1; the x
        // ancestor (D = 3 ≤ 5) does not cover it.
        let c = pc
            .constraints
            .iter()
            .find(|c| c.u == u.index() && c.v == v.index())
            .expect("u,v constraint present");
        assert_eq!(c.bound, -1);
    }

    #[test]
    fn no_constraints_when_period_is_loose() {
        let g = pipeline();
        let pc = generate_period_constraints(&g, 1_000).unwrap();
        assert!(pc.constraints.is_empty());
        assert_eq!(pc.pairs_before_pruning, 0);
    }

    #[test]
    fn multi_edges_are_handled() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
        g.add_edge(a, b, 0);
        g.add_edge(a, b, 2);
        g.add_edge(b, a, 1);
        let pc = generate_period_constraints(&g, 7).unwrap();
        // W(a,b) = 0 (via the first edge), D = 8 > 7 → bound −1.
        let c = pc
            .constraints
            .iter()
            .find(|c| c.u == a.index() && c.v == b.index())
            .expect("constraint");
        assert_eq!(c.bound, -1);
    }

    lacr_prng::properties! {
        cases = 48;

        /// The generated constraint list — values *and* order — is
        /// invariant under the order edges are inserted into the graph
        /// (adjacency-list order). This enforces the tie-breaking
        /// discussion in [`source_row`]: W, D and A are
        /// adjacency-order-free and emission is in vertex-index order, so
        /// two graphs that differ only in edge insertion order must
        /// produce byte-identical [`PeriodConstraints`].
        fn constraints_invariant_under_adjacency_order(rng) {
            let n = rng.gen_range(3..10usize);
            // Forward edges may carry weight 0 (they cannot close a
            // cycle); back edges carry weight ≥ 1 so every cycle has
            // positive weight, which valid circuits require.
            let mut edges: Vec<(u32, u32, i64)> = Vec::new();
            for i in 0..n as u32 {
                for j in 0..n as u32 {
                    if i == j || !rng.gen_bool(0.4) {
                        continue;
                    }
                    let w = if i < j {
                        rng.gen_range(0..=2i64)
                    } else {
                        rng.gen_range(1..=3i64)
                    };
                    edges.push((i, j, w));
                }
            }
            let delays: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=5u64)).collect();
            let build = |order: &[(u32, u32, i64)]| {
                let mut g = RetimeGraph::new();
                let vs: Vec<VertexId> = delays
                    .iter()
                    .map(|&d| g.add_vertex(VertexKind::Functional, d, 1.0, None))
                    .collect();
                for &(a, b, w) in order {
                    g.add_edge(vs[a as usize], vs[b as usize], w);
                }
                g
            };
            let canonical = build(&edges);
            let mut shuffled = edges.clone();
            rng.shuffle(&mut shuffled);
            let permuted = build(&shuffled);
            let target = rng.gen_range(2..8u64);
            let a = generate_period_constraints(&canonical, target).unwrap();
            let b = generate_period_constraints(&permuted, target).unwrap();
            lacr_prng::prop_assert_eq!(a.constraints, b.constraints);
            lacr_prng::prop_assert_eq!(a.pairs_before_pruning, b.pairs_before_pruning);
        }

        /// A substrate built for a random bracket serves every target in
        /// the bracket with constraints bit-identical to a one-shot
        /// generation — the cache-correctness invariant of the min-period
        /// binary search.
        fn substrate_probes_match_one_shot_on_random_graphs(rng) {
            let n = rng.gen_range(2..8usize);
            let mut g = RetimeGraph::new();
            let vs: Vec<VertexId> = (0..n)
                .map(|_| g.add_vertex(VertexKind::Functional, rng.gen_range(1..=6u64), 1.0, None))
                .collect();
            for i in 0..n {
                g.add_edge(vs[i], vs[(i + 1) % n], rng.gen_range(1..3i64));
            }
            for _ in 0..rng.gen_range(0..4usize) {
                let x = rng.gen_range(0..n);
                let y = rng.gen_range(0..n);
                if x != y {
                    g.add_edge(vs[x], vs[y], rng.gen_range(if x < y {0..3i64} else {1..3i64}));
                }
            }
            let lo = rng.gen_range(1..6u64);
            let hi = lo + rng.gen_range(0..12u64);
            let sub = WdSubstrate::build(&g, lo, hi).unwrap();
            for t in lo..=hi {
                let probe = sub.constraints_for(t);
                let fresh = generate_period_constraints(&g, t).unwrap();
                lacr_prng::prop_assert_eq!(&probe.constraints, &fresh.constraints);
            }
        }
    }

    #[test]
    fn unreachable_pairs_produce_no_constraints() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 9, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 9, 1.0, None);
        // b → a only; nothing reaches b.
        g.add_edge(b, a, 0);
        let pc = generate_period_constraints(&g, 10).unwrap();
        assert!(pc
            .constraints
            .iter()
            .all(|c| !(c.u == a.index() && c.v == b.index())));
    }
}
