//! Clock-period constraint generation (the W/D computation).
//!
//! For a target period `T`, minimum-area retiming needs, for every vertex
//! pair with `D(u, v) > T`, the constraint `r(u) − r(v) ≤ W(u, v) − 1`
//! (Eqn. (2) of the paper), where `W(u, v)` is the minimum flip-flop count
//! over `u⇝v` paths and `D(u, v)` the maximum delay among the
//! minimum-weight paths.
//!
//! Implementation: one Dijkstra per source `u` over the non-negative edge
//! weights gives `W(u, ·)`; the *tight subgraph* (edges on some
//! minimum-weight path) is then a DAG — any tight cycle would be a
//! zero-weight cycle, which valid circuits exclude — so a longest-path DP
//! over it gives `D(u, ·)`. Constraints are emitted per row, never storing
//! the full `|V|²` matrices.
//!
//! The optional *pruning* (in the spirit of Maheshwari & Sapatnekar's
//! constraint reduction, cited in §5) drops `(u, v)` whenever some tight-DAG
//! ancestor `x` of `v` already violates (`D(u, x) > T`): the emitted
//! constraint `r(u) − r(x) ≤ W(u, x) − 1` plus the edge constraints along
//! the tight path `x ⇝ v` (total weight `W(u, v) − W(u, x)`) imply the
//! dropped one.

use crate::graph::{RetimeGraph, VertexId};
use lacr_mcmf::Constraint;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The period constraints for one target period, generated once and reused
/// across the weighted min-area retimings of a LAC run (the paper's §4.2
/// efficiency argument).
#[derive(Debug, Clone)]
pub struct PeriodConstraints {
    /// The target clock period (integer picoseconds).
    pub target: u64,
    /// Period constraints `r(u) − r(v) ≤ bound` over vertex indices.
    pub constraints: Vec<Constraint>,
    /// Violating pairs seen before pruning (equals `constraints.len()`
    /// when pruning is off).
    pub pairs_before_pruning: usize,
}

/// Options for [`generate_period_constraints`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstraintOptions {
    /// Drop constraints implied by an earlier constraint plus edge
    /// constraints (see module docs). On by default.
    pub prune: bool,
}

impl Default for ConstraintOptions {
    fn default() -> Self {
        Self { prune: true }
    }
}

/// Generates the clock-period constraints for `target`.
///
/// # Examples
///
/// ```
/// use lacr_retime::{generate_period_constraints, ConstraintOptions, RetimeGraph, VertexKind};
///
/// let mut g = RetimeGraph::new();
/// let a = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
/// let b = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
/// g.add_edge(a, b, 1);
/// g.add_edge(b, a, 1);
/// // Period 4 fits each vertex alone: no pair path may stay unregistered,
/// // but W(a,b) = 1 already ≥ 1 so the constraint bound is 0.
/// let pc = generate_period_constraints(&g, 7, ConstraintOptions::default());
/// assert_eq!(pc.constraints.len(), 2); // a⇝b and b⇝a both have D = 8 > 7
/// ```
pub fn generate_period_constraints(
    graph: &RetimeGraph,
    target: u64,
    options: ConstraintOptions,
) -> PeriodConstraints {
    let n = graph.num_vertices();
    let _span = lacr_obs::span!("retime.wd_build", vertices = n, target = target);
    // Each source's row of the W/D computation is independent of every
    // other's, so the per-source loop fans out across the deterministic
    // pool; the ordered merge below restores the canonical (source-major)
    // constraint order regardless of scheduling.
    let sources: Vec<VertexId> = graph.vertex_ids().collect();
    let rows = lacr_par::Region::new("retime.wd_sources").map_indexed_with(
        &sources,
        || SourceScratch::new(n),
        |scratch, _, &u| source_row(graph, target, options, u, scratch),
    );
    let mut constraints = Vec::new();
    let mut pairs = 0usize;
    for (row_pairs, row_constraints) in rows {
        pairs += row_pairs;
        constraints.extend(row_constraints);
    }
    lacr_obs::counter!("retime.period_pairs", pairs);
    lacr_obs::counter!("retime.constraints_emitted", constraints.len());
    PeriodConstraints {
        target,
        constraints,
        pairs_before_pruning: pairs,
    }
}

/// Reusable per-worker scratch for [`source_row`].
#[derive(Debug)]
struct SourceScratch {
    w: Vec<i64>,
    d: Vec<u64>,
    covered: Vec<bool>,
    heap: BinaryHeap<Reverse<(i64, u32)>>,
}

impl SourceScratch {
    fn new(n: usize) -> Self {
        Self {
            w: vec![i64::MAX; n],
            d: vec![0; n],
            covered: vec![false; n],
            heap: BinaryHeap::new(),
        }
    }
}

/// One source's W/D row: Dijkstra for `W(u, ·)`, longest-delay DP over
/// the tight DAG for `D(u, ·)`, then the violating pairs, emitted **in
/// ascending head-vertex index**. The emission order is part of the
/// determinism contract: `W`, `D` and the `covered` pruning set are
/// invariant under adjacency-list order (Dijkstra's heap orders ties by
/// `(distance, vertex)`, the DP takes a max over incoming tight edges and
/// `covered` is DAG reachability — all order-free), so index-ordered
/// emission makes the whole row, and with it [`PeriodConstraints`],
/// independent of edge insertion order and of scheduling.
fn source_row(
    graph: &RetimeGraph,
    target: u64,
    options: ConstraintOptions,
    u: VertexId,
    scratch: &mut SourceScratch,
) -> (usize, Vec<Constraint>) {
    // Paths must not pass *through* the host: the environment registers
    // primary outputs before they can influence primary inputs, so a
    // `u ⇝ host ⇝ v` chain is not a real signal path (pairs ending or
    // starting at the host are still considered).
    let host = graph.host();
    let SourceScratch {
        w,
        d,
        covered,
        heap,
    } = scratch;
    w.iter_mut().for_each(|x| *x = i64::MAX);
    covered.iter_mut().for_each(|x| *x = false);
    // Dijkstra for W(u, ·).
    w[u.index()] = 0;
    heap.clear();
    heap.push(Reverse((0, u.0)));
    let mut reached = 0usize;
    while let Some(Reverse((dist, v))) = heap.pop() {
        if dist > w[v as usize] {
            continue;
        }
        reached += 1;
        if host == Some(VertexId(v)) && u != VertexId(v) {
            continue; // terminate paths at the host
        }
        for e in graph.out_edges(VertexId(v)) {
            let edge = graph.edge(e);
            let nd = dist + edge.weight;
            if nd < w[edge.to.index()] {
                w[edge.to.index()] = nd;
                heap.push(Reverse((nd, edge.to.0)));
            }
        }
    }
    // Dijkstra pops are in W order, but equal-W pops are not DAG-ordered
    // in general (a tight zero-weight edge may point between two vertices
    // popped in either order), so do an explicit Kahn pass for the tight
    // DAG's topological order.
    let topo = tight_dag_topo(graph, w, host.filter(|&h| h != u), u);
    debug_assert_eq!(
        topo.len(),
        reached,
        "tight subgraph had a zero-weight cycle (invalid circuit)"
    );
    // Longest-delay DP over the tight DAG.
    d.iter_mut().for_each(|x| *x = 0);
    d[u.index()] = graph.delay(u);
    for &v in &topo {
        let vi = v as usize;
        if host == Some(VertexId(v)) && u != VertexId(v) {
            continue; // terminate paths at the host
        }
        let base = d[vi];
        // A tight ancestor that itself violates the period makes every
        // descendant's constraint redundant (see module docs).
        let violating = covered[vi] || (vi != u.index() && base > target);
        for e in graph.out_edges(VertexId(v)) {
            let edge = graph.edge(e);
            let ti = edge.to.index();
            if w[vi] + edge.weight == w[ti] {
                let cand = base + graph.delay(edge.to);
                if cand > d[ti] {
                    d[ti] = cand;
                }
                if violating {
                    covered[ti] = true;
                }
            }
        }
    }
    let mut pairs = 0usize;
    let mut constraints = Vec::new();
    for vi in 0..w.len() {
        if vi == u.index() || w[vi] == i64::MAX {
            continue;
        }
        if d[vi] > target {
            pairs += 1;
            if !(options.prune && covered[vi]) {
                constraints.push(Constraint::new(u.index(), vi, w[vi] - 1));
            }
        }
    }
    (pairs, constraints)
}

/// Kahn topological order of the tight DAG induced by `w`. Vertices with
/// `w == MAX` (unreachable) never join the order; `blocked` (the host when
/// it is not the source) contributes no outgoing tight edges, and edges
/// back into the `source` are ignored (a tight edge into the source would
/// close a zero-weight cycle — only possible through the host, where paths
/// must terminate anyway).
fn tight_dag_topo(
    graph: &RetimeGraph,
    w: &[i64],
    blocked: Option<VertexId>,
    source: VertexId,
) -> Vec<u32> {
    let n = graph.num_vertices();
    let tight = |edge: &crate::graph::GraphEdge| -> bool {
        let fi = edge.from.index();
        Some(edge.from) != blocked
            && edge.to != source
            && w[fi] != i64::MAX
            && w[fi] + edge.weight == w[edge.to.index()]
    };
    let mut indeg = vec![0u32; n];
    for edge in graph.edges() {
        if tight(edge) {
            indeg[edge.to.index()] += 1;
        }
    }
    let mut topo = Vec::with_capacity(n);
    let mut queue: Vec<u32> = (0..n as u32)
        .filter(|&v| w[v as usize] != i64::MAX && indeg[v as usize] == 0)
        .collect();
    while let Some(v) = queue.pop() {
        topo.push(v);
        for e in graph.out_edges(VertexId(v)) {
            let edge = graph.edge(e);
            if tight(&edge) {
                indeg[edge.to.index()] -= 1;
                if indeg[edge.to.index()] == 0 {
                    queue.push(edge.to.0);
                }
            }
        }
    }
    topo
}

/// The edge-weight (non-negativity) constraints `r(tail) − r(head) ≤ w(e)`
/// (Eqn. (1) of the paper), over vertex indices.
pub fn edge_constraints(graph: &RetimeGraph) -> Vec<Constraint> {
    graph
        .edges()
        .iter()
        .map(|e| Constraint::new(e.from.index(), e.to.index(), e.weight))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexKind;
    use lacr_mcmf::DifferenceConstraints;

    /// host→a→b→host pipeline: delays 5 each, two flops at the front.
    fn pipeline() -> RetimeGraph {
        let mut g = RetimeGraph::new();
        let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        g.set_host(h);
        let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        g.add_edge(h, a, 2);
        g.add_edge(a, b, 0);
        g.add_edge(b, h, 0);
        g
    }

    #[test]
    fn constraints_make_target_feasible_iff_feas_agrees() {
        let g = pipeline();
        for t in 4..=12u64 {
            let pc = generate_period_constraints(&g, t, ConstraintOptions::default());
            let mut all = edge_constraints(&g);
            all.extend(pc.constraints.iter().copied());
            let sys = DifferenceConstraints::new(g.num_vertices(), all);
            let feasible = sys.is_feasible() && t >= 5; // single-vertex delay bound
            let feas = crate::feas::feasible_retiming(&g, t).is_some();
            assert_eq!(feasible, feas, "target {t}");
        }
    }

    #[test]
    fn bellman_ford_solution_of_constraints_is_valid_retiming() {
        let g = pipeline();
        let t = 5;
        let pc = generate_period_constraints(&g, t, ConstraintOptions::default());
        let mut all = edge_constraints(&g);
        all.extend(pc.constraints.iter().copied());
        let sys = DifferenceConstraints::new(g.num_vertices(), all);
        let r = sys.solve().expect("feasible at 5");
        let w = g.retimed_weights(&r);
        assert!(g.weights_legal(&w));
        assert!(g.clock_period(&w).unwrap() <= t);
    }

    #[test]
    fn pruning_never_changes_feasibility_or_solutions() {
        let g = pipeline();
        for t in 5..=10u64 {
            let full = generate_period_constraints(&g, t, ConstraintOptions { prune: false });
            let pruned = generate_period_constraints(&g, t, ConstraintOptions { prune: true });
            assert!(pruned.constraints.len() <= full.constraints.len());
            // A solution of the pruned system must satisfy the full system.
            let mut base = edge_constraints(&g);
            base.extend(pruned.constraints.iter().copied());
            let sys = DifferenceConstraints::new(g.num_vertices(), base);
            if let Some(r) = sys.solve() {
                for c in &full.constraints {
                    assert!(
                        r[c.u] - r[c.v] <= c.bound,
                        "t={t}: pruned solution violates dropped constraint {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tight_dag_longest_path_matches_hand_computation() {
        // u → x (w=0, d=2) → v (w=0, d=3); also u → v direct (w=1).
        // W(u,v) = 0 via x; D(u,v) = d(u)+2+3.
        let mut g = RetimeGraph::new();
        let u = g.add_vertex(VertexKind::Functional, 1, 1.0, None);
        let x = g.add_vertex(VertexKind::Functional, 2, 1.0, None);
        let v = g.add_vertex(VertexKind::Functional, 3, 1.0, None);
        g.add_edge(u, x, 0);
        g.add_edge(x, v, 0);
        g.add_edge(u, v, 1);
        g.add_edge(v, u, 1); // close the loop legally
        let pc = generate_period_constraints(&g, 5, ConstraintOptions { prune: false });
        // D(u,v) = 6 > 5 → constraint r(u) − r(v) ≤ W−1 = −1.
        let c = pc
            .constraints
            .iter()
            .find(|c| c.u == u.index() && c.v == v.index())
            .expect("u,v constraint present");
        assert_eq!(c.bound, -1);
    }

    #[test]
    fn no_constraints_when_period_is_loose() {
        let g = pipeline();
        let pc = generate_period_constraints(&g, 1_000, ConstraintOptions::default());
        assert!(pc.constraints.is_empty());
        assert_eq!(pc.pairs_before_pruning, 0);
    }

    #[test]
    fn multi_edges_are_handled() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
        g.add_edge(a, b, 0);
        g.add_edge(a, b, 2);
        g.add_edge(b, a, 1);
        let pc = generate_period_constraints(&g, 7, ConstraintOptions { prune: false });
        // W(a,b) = 0 (via the first edge), D = 8 > 7 → bound −1.
        let c = pc
            .constraints
            .iter()
            .find(|c| c.u == a.index() && c.v == b.index())
            .expect("constraint");
        assert_eq!(c.bound, -1);
    }

    lacr_prng::properties! {
        cases = 48;

        /// The generated constraint list — values *and* order — is
        /// invariant under the order edges are inserted into the graph
        /// (adjacency-list order). This enforces the tie-breaking
        /// discussion in [`source_row`]: W and D are adjacency-order-free
        /// and emission is in vertex-index order, so two graphs that
        /// differ only in edge insertion order must produce byte-identical
        /// [`PeriodConstraints`].
        fn constraints_invariant_under_adjacency_order(rng) {
            let n = rng.gen_range(3..10usize);
            // Forward edges may carry weight 0 (they cannot close a
            // cycle); back edges carry weight ≥ 1 so every cycle has
            // positive weight, which valid circuits require.
            let mut edges: Vec<(u32, u32, i64)> = Vec::new();
            for i in 0..n as u32 {
                for j in 0..n as u32 {
                    if i == j || !rng.gen_bool(0.4) {
                        continue;
                    }
                    let w = if i < j {
                        rng.gen_range(0..=2i64)
                    } else {
                        rng.gen_range(1..=3i64)
                    };
                    edges.push((i, j, w));
                }
            }
            let delays: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=5u64)).collect();
            let build = |order: &[(u32, u32, i64)]| {
                let mut g = RetimeGraph::new();
                let vs: Vec<VertexId> = delays
                    .iter()
                    .map(|&d| g.add_vertex(VertexKind::Functional, d, 1.0, None))
                    .collect();
                for &(a, b, w) in order {
                    g.add_edge(vs[a as usize], vs[b as usize], w);
                }
                g
            };
            let canonical = build(&edges);
            let mut shuffled = edges.clone();
            rng.shuffle(&mut shuffled);
            let permuted = build(&shuffled);
            let target = rng.gen_range(2..8u64);
            for prune in [false, true] {
                let a = generate_period_constraints(&canonical, target, ConstraintOptions { prune });
                let b = generate_period_constraints(&permuted, target, ConstraintOptions { prune });
                lacr_prng::prop_assert_eq!(a.constraints, b.constraints);
                lacr_prng::prop_assert_eq!(a.pairs_before_pruning, b.pairs_before_pruning);
            }
        }
    }

    #[test]
    fn unreachable_pairs_produce_no_constraints() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 9, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 9, 1.0, None);
        // b → a only; nothing reaches b.
        g.add_edge(b, a, 0);
        let pc = generate_period_constraints(&g, 10, ConstraintOptions::default());
        assert!(pc
            .constraints
            .iter()
            .all(|c| !(c.u == a.index() && c.v == b.index())));
    }
}
