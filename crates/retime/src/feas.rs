//! Min-period retiming: binary search over integer candidate periods with
//! two feasibility oracles.
//!
//! * Host-free graphs use the Leiserson–Saxe **FEAS** relaxation — fast,
//!   and sound because every violating vertex can be incremented.
//! * Graphs with a host vertex use the **constraint oracle**: generate the
//!   W/D period constraints for the candidate period and solve the
//!   difference-constraint system with Bellman–Ford. FEAS is unsound
//!   there: the host must not be incremented (it pins I/O latency and
//!   does not propagate combinational signals), so a violating primary
//!   output driver cannot legally be incremented past a zero-weight host
//!   edge.

use crate::constraints::{edge_constraints, generate_period_constraints, ConstraintOptions};
use crate::graph::RetimeGraph;
use lacr_mcmf::DifferenceConstraints;

/// Result of [`min_period_retiming`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinPeriodResult {
    /// The minimum feasible clock period (integer picoseconds).
    pub period: u64,
    /// A retiming vector achieving it.
    pub retiming: Vec<i64>,
}

/// Returns a retiming achieving clock period `≤ target`, or `None` when no
/// retiming can.
///
/// # Examples
///
/// ```
/// use lacr_retime::{feasible_retiming, RetimeGraph, VertexKind};
///
/// let mut g = RetimeGraph::new();
/// let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
/// let b = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
/// g.add_edge(a, b, 0);
/// g.add_edge(b, a, 2);
/// // Unretimed period is 10; one flop can move to cut the a→b path.
/// let r = feasible_retiming(&g, 5).expect("5 is achievable");
/// let w = g.retimed_weights(&r);
/// assert_eq!(g.clock_period(&w), Some(5));
/// assert!(feasible_retiming(&g, 4).is_none());
/// ```
pub fn feasible_retiming(graph: &RetimeGraph, target: u64) -> Option<Vec<i64>> {
    let n = graph.num_vertices();
    if n == 0 {
        return Some(Vec::new());
    }
    lacr_obs::counter!("retime.feas_probes", 1);
    // No retiming helps a single vertex slower than the target.
    if graph.vertex_ids().any(|v| graph.delay(v) > target) {
        return None;
    }
    let r = if graph.host().is_some() {
        constraint_feasible(graph, target)?
    } else {
        feas_loop(graph, target)?
    };
    debug_assert!({
        let w = graph.retimed_weights(&r);
        graph.weights_legal(&w) && graph.clock_period(&w).is_some_and(|p| p <= target)
    });
    Some(r)
}

/// The classic FEAS loop (host-free graphs only).
fn feas_loop(graph: &RetimeGraph, target: u64) -> Option<Vec<i64>> {
    let n = graph.num_vertices();
    let mut r = vec![0i64; n];
    // |V| rounds: the classic bound is |V| − 1 increments; one extra round
    // performs the final check.
    for _ in 0..=n {
        let weights = graph.retimed_weights(&r);
        debug_assert!(graph.weights_legal(&weights), "FEAS lost legality");
        let arrivals = graph
            .arrival_times(&weights)
            .expect("legal retiming keeps the zero-weight subgraph acyclic");
        let mut ok = true;
        for (v, &a) in arrivals.iter().enumerate() {
            if a > target {
                r[v] += 1;
                ok = false;
            }
        }
        if ok {
            return Some(r);
        }
    }
    None
}

/// Feasibility via the W/D constraint system (sound for host graphs).
fn constraint_feasible(graph: &RetimeGraph, target: u64) -> Option<Vec<i64>> {
    let pc = generate_period_constraints(graph, target, ConstraintOptions::default());
    let mut cons = edge_constraints(graph);
    cons.extend(pc.constraints.iter().copied());
    DifferenceConstraints::new(graph.num_vertices(), cons).solve()
}

/// Computes the minimum feasible clock period and a retiming achieving it.
///
/// Binary-searches integer periods between the largest single-vertex delay
/// (no retiming can beat it) and the unretimed period, using
/// [`feasible_retiming`] as the oracle.
///
/// # Panics
///
/// Panics if the graph's zero-weight subgraph is cyclic (the circuit was
/// invalid: some directed cycle carries no flip-flop).
pub fn min_period_retiming(graph: &RetimeGraph) -> MinPeriodResult {
    min_period_retiming_with_tolerance(graph, 0)
}

/// Like [`min_period_retiming`], but stops the binary search once the
/// bracket `[infeasible, feasible]` is narrower than `tolerance_ps`,
/// returning the feasible end. The result is at most `tolerance_ps` above
/// the true optimum — useful on large interconnect graphs where each
/// feasibility probe regenerates the W/D constraints.
///
/// # Panics
///
/// Panics if the graph's zero-weight subgraph is cyclic.
pub fn min_period_retiming_with_tolerance(
    graph: &RetimeGraph,
    tolerance_ps: u64,
) -> MinPeriodResult {
    if graph.num_vertices() == 0 {
        return MinPeriodResult {
            period: 0,
            retiming: Vec::new(),
        };
    }
    let _span = lacr_obs::span!(
        "retime.min_period",
        vertices = graph.num_vertices(),
        tolerance_ps = tolerance_ps,
    );
    let start = graph
        .clock_period(&graph.weights())
        .expect("valid circuit: every cycle must carry a flip-flop");
    let mut lo = graph
        .vertex_ids()
        .map(|v| graph.delay(v))
        .max()
        .unwrap_or(0);
    let mut hi = start;
    let mut best = (hi, vec![0i64; graph.num_vertices()]);
    while lo < hi && hi - lo > tolerance_ps {
        let mid = lo + (hi - lo) / 2;
        match feasible_retiming(graph, mid) {
            Some(r) => {
                best = (mid, r);
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    if lo < best.0 && tolerance_ps == 0 {
        if let Some(r) = feasible_retiming(graph, lo) {
            best = (lo, r);
        }
    }
    MinPeriodResult {
        period: best.0,
        retiming: best.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexKind;
    use lacr_prng::Rng;

    fn two_vertex_loop() -> RetimeGraph {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 2);
        g
    }

    #[test]
    fn feas_balances_two_vertex_loop() {
        let g = two_vertex_loop();
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 5);
        let w = g.retimed_weights(&res.retiming);
        assert_eq!(g.clock_period(&w), Some(5));
    }

    #[test]
    fn feas_rejects_sub_delay_target() {
        let g = two_vertex_loop();
        assert!(feasible_retiming(&g, 4).is_none());
    }

    #[test]
    fn min_period_of_already_optimal_is_identity_grade() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 3, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 3, 1.0, None);
        g.add_edge(a, b, 1);
        g.add_edge(b, a, 1);
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 3);
    }

    #[test]
    fn min_period_bounded_by_cycle_ratio() {
        // Cycle of 4 vertices, delays 2 each, 2 flops total: the max
        // delay-to-register ratio forces period ≥ ceil(8 / 2) = 4.
        let mut g = RetimeGraph::new();
        let vs: Vec<_> = (0..4)
            .map(|_| g.add_vertex(VertexKind::Functional, 2, 1.0, None))
            .collect();
        g.add_edge(vs[0], vs[1], 2);
        g.add_edge(vs[1], vs[2], 0);
        g.add_edge(vs[2], vs[3], 0);
        g.add_edge(vs[3], vs[0], 0);
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 4);
    }

    #[test]
    fn pipeline_with_host_keeps_latency() {
        // host --2--> a --0--> b --0--> host, d(a)=d(b)=5.
        let mut g = RetimeGraph::new();
        let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        g.set_host(h);
        let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        g.add_edge(h, a, 2);
        g.add_edge(a, b, 0);
        g.add_edge(b, h, 0);
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 5);
        let w = g.retimed_weights(&res.retiming);
        // Retiming preserves the h→a→b→h path-weight sum because both
        // endpoints are the host.
        assert_eq!(w.iter().sum::<i64>(), 2);
    }

    #[test]
    fn combinational_io_path_bounds_period() {
        // host →0→ a →0→ host with d(a) = 9: no register may be inserted
        // without changing I/O latency, so the min period is 9 even though
        // a registered side path exists.
        let mut g = RetimeGraph::new();
        let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        g.set_host(h);
        let a = g.add_vertex(VertexKind::Functional, 9, 1.0, None);
        g.add_edge(h, a, 0);
        g.add_edge(a, h, 0);
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 9);
        assert!(feasible_retiming(&g, 8).is_none());
    }

    #[test]
    fn host_graph_with_io_registers_can_pipeline() {
        // host →1→ a →0→ b →1→ host: the two I/O registers can slide
        // inward to cut the a→b path.
        let mut g = RetimeGraph::new();
        let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        g.set_host(h);
        let a = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
        g.add_edge(h, a, 1);
        g.add_edge(a, b, 0);
        g.add_edge(b, h, 1);
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 4);
    }

    #[test]
    fn empty_graph() {
        let g = RetimeGraph::new();
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 0);
    }

    #[test]
    fn single_vertex_self_loop() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 7, 1.0, None);
        g.add_edge(a, a, 1);
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 7);
    }

    /// Reference check on random small graphs: FEAS feasibility must agree
    /// with a brute-force search over retiming vectors in a small box.
    #[test]
    fn feas_agrees_with_brute_force_on_random_graphs() {
        let mut rng = Rng::seed_from_u64(42);
        for case in 0..40 {
            let n = rng.gen_range(2..5usize);
            let mut g = RetimeGraph::new();
            let vs: Vec<_> = (0..n)
                .map(|_| g.add_vertex(VertexKind::Functional, rng.gen_range(1..6), 1.0, None))
                .collect();
            // Ring to guarantee every vertex is on a registered cycle.
            for i in 0..n {
                g.add_edge(vs[i], vs[(i + 1) % n], 1);
            }
            for _ in 0..rng.gen_range(0..4) {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                g.add_edge(vs[a], vs[b], rng.gen_range(1..3));
            }
            let unretimed = g.clock_period(&g.weights()).expect("valid");
            for t in 1..=unretimed {
                let feas = feasible_retiming(&g, t).is_some();
                let brute = brute_force_feasible(&g, t);
                assert_eq!(feas, brute, "case {case}: target {t}");
            }
        }
    }

    /// The two oracles agree on random *host* graphs (the constraint
    /// oracle versus brute force).
    #[test]
    fn constraint_oracle_agrees_with_brute_force_on_host_graphs() {
        let mut rng = Rng::seed_from_u64(99);
        for case in 0..30 {
            let n = rng.gen_range(2..4usize);
            let mut g = RetimeGraph::new();
            let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
            g.set_host(h);
            let vs: Vec<_> = (0..n)
                .map(|_| g.add_vertex(VertexKind::Functional, rng.gen_range(1..5), 1.0, None))
                .collect();
            g.add_edge(h, vs[0], rng.gen_range(0..3));
            for i in 0..n - 1 {
                g.add_edge(vs[i], vs[i + 1], rng.gen_range(0..2));
            }
            g.add_edge(vs[n - 1], h, rng.gen_range(0..2));
            let unretimed = g.clock_period(&g.weights()).expect("valid");
            for t in 1..=unretimed {
                let feas = feasible_retiming(&g, t).is_some();
                let brute = brute_force_feasible(&g, t);
                assert_eq!(feas, brute, "case {case}: target {t}, graph {g:?}");
            }
        }
    }

    fn brute_force_feasible(g: &RetimeGraph, t: u64) -> bool {
        // Search r ∈ [−4, 4]^(n−1) with r[0] = 0 (differences matter).
        let n = g.num_vertices();
        let mut r = vec![0i64; n];
        fn rec(g: &RetimeGraph, t: u64, r: &mut Vec<i64>, i: usize) -> bool {
            if i == r.len() {
                let w = g.retimed_weights(r);
                return g.weights_legal(&w) && matches!(g.clock_period(&w), Some(p) if p <= t);
            }
            for v in -4..=4 {
                r[i] = v;
                if rec(g, t, r, i + 1) {
                    return true;
                }
            }
            r[i] = 0;
            false
        }
        rec(g, t, &mut r, 1)
    }
}
