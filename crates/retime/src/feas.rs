//! Min-period retiming: binary search over integer candidate periods with
//! two feasibility oracles.
//!
//! * Host-free graphs use the Leiserson–Saxe **FEAS** relaxation — fast,
//!   and sound because every violating vertex can be incremented.
//! * Graphs with a host vertex use the **constraint oracle**: emit the W/D
//!   period constraints for the candidate period and solve the
//!   difference-constraint system with Bellman–Ford. FEAS is unsound
//!   there: the host must not be incremented (it pins I/O latency and
//!   does not propagate combinational signals), so a violating primary
//!   output driver cannot legally be incremented past a zero-weight host
//!   edge.
//!
//! The constraint oracle is **incremental across probes**: the W/D
//! substrate ([`WdSubstrate`]) is built once for the whole search bracket
//! (one `retime.wd_build` span per [`min_period_retiming`] call, counted
//! by `retime.probe` / `retime.wd_cache_hits`), each probe re-emits its
//! constraint set with a linear scan, and Bellman–Ford warm-starts from
//! the previous feasible probe's potentials
//! ([`DifferenceConstraints::solve_warm`]). The surviving substrate is
//! returned in [`MinPeriodOutcome`] so callers probing a *derived* period
//! in the same bracket (the planner's `t_clk`) reuse it too.

use crate::constraints::{edge_constraints, generate_period_constraints, WdSubstrate};
use crate::graph::RetimeGraph;
use crate::minarea::RetimeError;
use lacr_mcmf::{Constraint, DifferenceConstraints};

/// Result of [`min_period_retiming`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinPeriodResult {
    /// The minimum feasible clock period (integer picoseconds).
    pub period: u64,
    /// A retiming vector achieving it.
    pub retiming: Vec<i64>,
}

/// Result of [`try_min_period_retiming`]: the period/retiming pair plus
/// the W/D substrate the search built, when it built one.
#[derive(Debug, Clone)]
pub struct MinPeriodOutcome {
    /// The minimum feasible period and a retiming achieving it.
    pub result: MinPeriodResult,
    /// The W/D substrate covering the search bracket
    /// `[max single-vertex delay, unretimed period]`. `None` when no
    /// constraint-oracle probe ran (host-free graphs, empty graphs, or a
    /// bracket that was already collapsed). Any target in the bracket —
    /// in particular every period between the returned optimum and the
    /// unretimed period — can be served by
    /// [`WdSubstrate::constraints_for`] without another W/D build.
    pub substrate: Option<WdSubstrate>,
}

/// Returns a retiming achieving clock period `≤ target`, or `None` when no
/// retiming can.
///
/// # Panics
///
/// Panics if path-delay accumulation overflows `u64` (see
/// [`try_feasible_retiming`] for the checked variant).
///
/// # Examples
///
/// ```
/// use lacr_retime::{feasible_retiming, RetimeGraph, VertexKind};
///
/// let mut g = RetimeGraph::new();
/// let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
/// let b = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
/// g.add_edge(a, b, 0);
/// g.add_edge(b, a, 2);
/// // Unretimed period is 10; one flop can move to cut the a→b path.
/// let r = feasible_retiming(&g, 5).expect("5 is achievable");
/// let w = g.retimed_weights(&r);
/// assert_eq!(g.clock_period(&w), Some(5));
/// assert!(feasible_retiming(&g, 4).is_none());
/// ```
pub fn feasible_retiming(graph: &RetimeGraph, target: u64) -> Option<Vec<i64>> {
    try_feasible_retiming(graph, target).expect("path delay accumulation overflowed u64")
}

/// Checked variant of [`feasible_retiming`]: `Ok(None)` means infeasible,
/// `Err` a typed arithmetic failure.
///
/// # Errors
///
/// [`RetimeError::DelayOverflow`] when accumulating path delays overflows
/// `u64`.
pub fn try_feasible_retiming(
    graph: &RetimeGraph,
    target: u64,
) -> Result<Option<Vec<i64>>, RetimeError> {
    let n = graph.num_vertices();
    if n == 0 {
        return Ok(Some(Vec::new()));
    }
    lacr_obs::counter!("retime.feas_probes", 1);
    // No retiming helps a single vertex slower than the target.
    if graph.vertex_ids().any(|v| graph.delay(v) > target) {
        return Ok(None);
    }
    let r = if graph.host().is_some() {
        constraint_feasible(graph, target)?
    } else {
        feas_loop(graph, target)?
    };
    if let Some(r) = &r {
        debug_assert!({
            let w = graph.retimed_weights(r);
            graph.weights_legal(&w) && graph.clock_period(&w).is_some_and(|p| p <= target)
        });
    }
    Ok(r)
}

/// The classic FEAS loop (host-free graphs only).
fn feas_loop(graph: &RetimeGraph, target: u64) -> Result<Option<Vec<i64>>, RetimeError> {
    let n = graph.num_vertices();
    let mut r = vec![0i64; n];
    // |V| rounds: the classic bound is |V| − 1 increments; one extra round
    // performs the final check.
    for _ in 0..=n {
        let weights = graph.retimed_weights(&r);
        debug_assert!(graph.weights_legal(&weights), "FEAS lost legality");
        let arrivals = graph.try_arrival_times(&weights).map_err(|e| match e {
            RetimeError::CombinationalCycle => {
                unreachable!("legal retiming keeps the zero-weight subgraph acyclic")
            }
            other => other,
        })?;
        let mut ok = true;
        for (v, &a) in arrivals.iter().enumerate() {
            if a > target {
                r[v] += 1;
                ok = false;
            }
        }
        if ok {
            return Ok(Some(r));
        }
    }
    Ok(None)
}

/// One-shot feasibility via the W/D constraint system (sound for host
/// graphs).
fn constraint_feasible(graph: &RetimeGraph, target: u64) -> Result<Option<Vec<i64>>, RetimeError> {
    let pc = generate_period_constraints(graph, target)?;
    let mut cons = edge_constraints(graph);
    cons.extend(pc.constraints.iter().copied());
    Ok(DifferenceConstraints::new(graph.num_vertices(), cons).solve())
}

/// The incremental constraint oracle: one substrate for the whole search
/// bracket, warm-started Bellman–Ford across probes.
struct SubstrateOracle<'g> {
    graph: &'g RetimeGraph,
    band_lo: u64,
    band_hi: u64,
    substrate: Option<WdSubstrate>,
    edge_cons: Vec<Constraint>,
    /// Potentials of the last feasible probe — the warm start. Probes walk
    /// a shrinking bracket, so consecutive constraint sets differ by a few
    /// tightened rows and the previous solution nearly satisfies the next
    /// system (see [`DifferenceConstraints::solve_warm`] for soundness).
    prev: Option<Vec<i64>>,
}

impl<'g> SubstrateOracle<'g> {
    fn new(graph: &'g RetimeGraph, band_lo: u64, band_hi: u64) -> Self {
        Self {
            graph,
            band_lo,
            band_hi,
            substrate: None,
            edge_cons: edge_constraints(graph),
            prev: None,
        }
    }

    /// Probes feasibility of `target`, building the substrate on first
    /// use. Counter contract: every probe bumps `retime.probe`; probes
    /// served from an already-built substrate bump `retime.wd_cache_hits`,
    /// so within one `retime.min_period` span
    /// `Σ retime.probe == Σ retime.wd_cache_hits + #(retime.wd_build)`.
    fn probe(&mut self, target: u64) -> Result<Option<Vec<i64>>, RetimeError> {
        lacr_obs::counter!("retime.feas_probes", 1);
        lacr_obs::counter!("retime.probe", 1);
        if self.substrate.is_some() {
            lacr_obs::counter!("retime.wd_cache_hits", 1);
        } else {
            self.substrate = Some(WdSubstrate::build(self.graph, self.band_lo, self.band_hi)?);
        }
        let pc = self
            .substrate
            .as_ref()
            .expect("substrate built above")
            .constraints_for(target);
        let mut cons = self.edge_cons.clone();
        cons.extend(pc.constraints);
        let sys = DifferenceConstraints::new(self.graph.num_vertices(), cons);
        let sol = match &self.prev {
            Some(p) => sys.solve_warm(p),
            None => sys.solve(),
        };
        if let Some(r) = &sol {
            debug_assert!({
                let w = self.graph.retimed_weights(r);
                self.graph.weights_legal(&w)
                    && self.graph.clock_period(&w).is_some_and(|p| p <= target)
            });
            self.prev = Some(r.clone());
        }
        Ok(sol)
    }
}

/// Computes the minimum feasible clock period and a retiming achieving it.
///
/// Binary-searches integer periods between the largest single-vertex delay
/// (no retiming can beat it) and the unretimed period.
///
/// # Panics
///
/// Panics if the graph's zero-weight subgraph is cyclic (the circuit was
/// invalid: some directed cycle carries no flip-flop) or path delays
/// overflow `u64`; see [`try_min_period_retiming`] for the checked
/// variant.
pub fn min_period_retiming(graph: &RetimeGraph) -> MinPeriodResult {
    min_period_retiming_with_tolerance(graph, 0)
}

/// Like [`min_period_retiming`], but stops the binary search once the
/// bracket `[infeasible, feasible]` is narrower than `tolerance_ps`,
/// returning the feasible end after one final downward probe at the
/// bracket floor. The result is at most `tolerance_ps` above the true
/// optimum — and *exact* whenever the floor itself is feasible, whatever
/// the tolerance.
///
/// # Panics
///
/// Panics if the graph's zero-weight subgraph is cyclic or path delays
/// overflow `u64`.
pub fn min_period_retiming_with_tolerance(
    graph: &RetimeGraph,
    tolerance_ps: u64,
) -> MinPeriodResult {
    match try_min_period_retiming(graph, tolerance_ps) {
        Ok(outcome) => outcome.result,
        Err(RetimeError::CombinationalCycle) => {
            panic!("valid circuit: every cycle must carry a flip-flop")
        }
        Err(e) => panic!("min-period retiming failed: {e}"),
    }
}

/// Checked min-period retiming returning the search's W/D substrate for
/// reuse.
///
/// # Errors
///
/// * [`RetimeError::CombinationalCycle`] — some directed cycle carries no
///   flip-flop (the unretimed period is undefined).
/// * [`RetimeError::DelayOverflow`] — path-delay accumulation overflowed
///   `u64`.
pub fn try_min_period_retiming(
    graph: &RetimeGraph,
    tolerance_ps: u64,
) -> Result<MinPeriodOutcome, RetimeError> {
    if graph.num_vertices() == 0 {
        return Ok(MinPeriodOutcome {
            result: MinPeriodResult {
                period: 0,
                retiming: Vec::new(),
            },
            substrate: None,
        });
    }
    let _span = lacr_obs::span!(
        "retime.min_period",
        vertices = graph.num_vertices(),
        tolerance_ps = tolerance_ps,
    );
    let start = graph.try_clock_period(&graph.weights())?;
    let mut lo = graph
        .vertex_ids()
        .map(|v| graph.delay(v))
        .max()
        .unwrap_or(0);
    let mut hi = start;
    let mut best = (hi, vec![0i64; graph.num_vertices()]);
    let host = graph.host().is_some();
    // One substrate serves every probe of the search: all candidates lie
    // in [lo, start] and the bracket only shrinks.
    let mut oracle = SubstrateOracle::new(graph, lo, start);
    let probe = |target: u64, oracle: &mut SubstrateOracle| {
        if host {
            oracle.probe(target)
        } else {
            try_feasible_retiming(graph, target)
        }
    };
    while lo < hi && hi - lo > tolerance_ps {
        let mid = lo + (hi - lo) / 2;
        match probe(mid, &mut oracle)? {
            Some(r) => {
                best = (mid, r);
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    // Final downward probe at the bracket floor. With tolerance 0 the
    // loop above ends with lo == hi == best.0 except when the floor was
    // never probed; with a positive tolerance the bracket may stop wide.
    // Either way the floor is the only candidate that can still beat
    // `best` exactly — probe it whenever it is strictly better, whatever
    // the tolerance (a collapsed bracket in particular must not be
    // skipped just because tolerance_ps > 0).
    if lo < best.0 {
        if let Some(r) = probe(lo, &mut oracle)? {
            best = (lo, r);
        }
    }
    Ok(MinPeriodOutcome {
        result: MinPeriodResult {
            period: best.0,
            retiming: best.1,
        },
        substrate: oracle.substrate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexKind;
    use lacr_prng::Rng;

    fn two_vertex_loop() -> RetimeGraph {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 2);
        g
    }

    #[test]
    fn feas_balances_two_vertex_loop() {
        let g = two_vertex_loop();
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 5);
        let w = g.retimed_weights(&res.retiming);
        assert_eq!(g.clock_period(&w), Some(5));
    }

    #[test]
    fn feas_rejects_sub_delay_target() {
        let g = two_vertex_loop();
        assert!(feasible_retiming(&g, 4).is_none());
    }

    #[test]
    fn min_period_of_already_optimal_is_identity_grade() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 3, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 3, 1.0, None);
        g.add_edge(a, b, 1);
        g.add_edge(b, a, 1);
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 3);
    }

    #[test]
    fn min_period_bounded_by_cycle_ratio() {
        // Cycle of 4 vertices, delays 2 each, 2 flops total: the max
        // delay-to-register ratio forces period ≥ ceil(8 / 2) = 4.
        let mut g = RetimeGraph::new();
        let vs: Vec<_> = (0..4)
            .map(|_| g.add_vertex(VertexKind::Functional, 2, 1.0, None))
            .collect();
        g.add_edge(vs[0], vs[1], 2);
        g.add_edge(vs[1], vs[2], 0);
        g.add_edge(vs[2], vs[3], 0);
        g.add_edge(vs[3], vs[0], 0);
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 4);
    }

    #[test]
    fn pipeline_with_host_keeps_latency() {
        // host --2--> a --0--> b --0--> host, d(a)=d(b)=5.
        let mut g = RetimeGraph::new();
        let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        g.set_host(h);
        let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        g.add_edge(h, a, 2);
        g.add_edge(a, b, 0);
        g.add_edge(b, h, 0);
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 5);
        let w = g.retimed_weights(&res.retiming);
        // Retiming preserves the h→a→b→h path-weight sum because both
        // endpoints are the host.
        assert_eq!(w.iter().sum::<i64>(), 2);
    }

    #[test]
    fn combinational_io_path_bounds_period() {
        // host →0→ a →0→ host with d(a) = 9: no register may be inserted
        // without changing I/O latency, so the min period is 9 even though
        // a registered side path exists.
        let mut g = RetimeGraph::new();
        let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        g.set_host(h);
        let a = g.add_vertex(VertexKind::Functional, 9, 1.0, None);
        g.add_edge(h, a, 0);
        g.add_edge(a, h, 0);
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 9);
        assert!(feasible_retiming(&g, 8).is_none());
    }

    #[test]
    fn host_graph_with_io_registers_can_pipeline() {
        // host →1→ a →0→ b →1→ host: the two I/O registers can slide
        // inward to cut the a→b path.
        let mut g = RetimeGraph::new();
        let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        g.set_host(h);
        let a = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 4, 1.0, None);
        g.add_edge(h, a, 1);
        g.add_edge(a, b, 0);
        g.add_edge(b, h, 1);
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 4);
    }

    #[test]
    fn empty_graph() {
        let g = RetimeGraph::new();
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 0);
    }

    #[test]
    fn single_vertex_self_loop() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 7, 1.0, None);
        g.add_edge(a, a, 1);
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 7);
    }

    /// Regression (issue 6 satellite): with a positive tolerance and the
    /// optimum sitting exactly at the bracket floor, the search used to
    /// return the last feasible *midpoint* instead of probing the floor —
    /// the final downward probe was gated on `tolerance_ps == 0`.
    #[test]
    fn positive_tolerance_still_probes_the_bracket_floor() {
        // two_vertex_loop: unretimed period 10, max single delay 5, and 5
        // is feasible — the optimum is exactly the floor. A tolerance as
        // wide as the initial bracket means the loop body never runs.
        let g = two_vertex_loop();
        for tol in [1, 3, 5, 10, 100] {
            let res = min_period_retiming_with_tolerance(&g, tol);
            assert_eq!(res.period, 5, "tolerance {tol}");
            let w = g.retimed_weights(&res.retiming);
            assert_eq!(g.clock_period(&w), Some(5), "tolerance {tol}");
        }
    }

    /// The substrate returned by the checked entry point covers the whole
    /// search bracket on host graphs, and matches one-shot generation.
    #[test]
    fn outcome_substrate_covers_bracket_and_matches_one_shot() {
        let mut g = RetimeGraph::new();
        let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        g.set_host(h);
        let a = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 5, 1.0, None);
        g.add_edge(h, a, 2);
        g.add_edge(a, b, 0);
        g.add_edge(b, h, 0);
        let out = try_min_period_retiming(&g, 0).unwrap();
        assert_eq!(out.result.period, 5);
        let sub = out.substrate.expect("host search builds a substrate");
        let (lo, hi) = sub.bracket();
        assert_eq!((lo, hi), (5, 10), "bracket [max delay, unretimed]");
        for t in lo..=hi {
            let probe = sub.constraints_for(t);
            let fresh = generate_period_constraints(&g, t).unwrap();
            assert_eq!(probe.constraints, fresh.constraints, "t={t}");
        }
    }

    /// Host-free graphs take the FEAS path and return no substrate.
    #[test]
    fn host_free_search_returns_no_substrate() {
        let g = two_vertex_loop();
        let out = try_min_period_retiming(&g, 0).unwrap();
        assert_eq!(out.result.period, 5);
        assert!(out.substrate.is_none());
    }

    /// Reference check on random small graphs: FEAS feasibility must agree
    /// with a brute-force search over retiming vectors in a small box.
    #[test]
    fn feas_agrees_with_brute_force_on_random_graphs() {
        let mut rng = Rng::seed_from_u64(42);
        for case in 0..40 {
            let n = rng.gen_range(2..5usize);
            let mut g = RetimeGraph::new();
            let vs: Vec<_> = (0..n)
                .map(|_| g.add_vertex(VertexKind::Functional, rng.gen_range(1..6), 1.0, None))
                .collect();
            // Ring to guarantee every vertex is on a registered cycle.
            for i in 0..n {
                g.add_edge(vs[i], vs[(i + 1) % n], 1);
            }
            for _ in 0..rng.gen_range(0..4) {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                g.add_edge(vs[a], vs[b], rng.gen_range(1..3));
            }
            let unretimed = g.clock_period(&g.weights()).expect("valid");
            for t in 1..=unretimed {
                let feas = feasible_retiming(&g, t).is_some();
                let brute = brute_force_feasible(&g, t);
                assert_eq!(feas, brute, "case {case}: target {t}");
            }
        }
    }

    /// The two oracles agree on random *host* graphs (the constraint
    /// oracle versus brute force).
    #[test]
    fn constraint_oracle_agrees_with_brute_force_on_host_graphs() {
        let mut rng = Rng::seed_from_u64(99);
        for case in 0..30 {
            let n = rng.gen_range(2..4usize);
            let mut g = RetimeGraph::new();
            let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
            g.set_host(h);
            let vs: Vec<_> = (0..n)
                .map(|_| g.add_vertex(VertexKind::Functional, rng.gen_range(1..5), 1.0, None))
                .collect();
            g.add_edge(h, vs[0], rng.gen_range(0..3));
            for i in 0..n - 1 {
                g.add_edge(vs[i], vs[i + 1], rng.gen_range(0..2));
            }
            g.add_edge(vs[n - 1], h, rng.gen_range(0..2));
            let unretimed = g.clock_period(&g.weights()).expect("valid");
            for t in 1..=unretimed {
                let feas = feasible_retiming(&g, t).is_some();
                let brute = brute_force_feasible(&g, t);
                assert_eq!(feas, brute, "case {case}: target {t}, graph {g:?}");
            }
        }
    }

    lacr_prng::properties! {
        cases = 40;

        /// The incremental substrate-backed search (warm starts, cached
        /// W/D) must find the same minimum period as a slow reference
        /// oracle that re-derives feasibility from scratch — linear scan
        /// over every candidate period with a cold one-shot constraint
        /// system per candidate. Replayable via `LACR_PROP_REPLAY`.
        fn min_period_matches_slow_reference_oracle(rng) {
            let n = rng.gen_range(2..16usize);
            let mut g = RetimeGraph::new();
            let h = g.add_vertex(VertexKind::Host, 0, 1.0, None);
            g.set_host(h);
            let vs: Vec<_> = (0..n)
                .map(|_| g.add_vertex(VertexKind::Functional, rng.gen_range(1..8u64), 1.0, None))
                .collect();
            // Registered I/O ring plus random internal wiring.
            g.add_edge(h, vs[0], rng.gen_range(1..3i64));
            for i in 0..n - 1 {
                g.add_edge(vs[i], vs[i + 1], rng.gen_range(0..2i64));
            }
            g.add_edge(vs[n - 1], h, rng.gen_range(0..2i64));
            for _ in 0..rng.gen_range(0..2 * n) {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b {
                    let w = if a < b { rng.gen_range(0..2i64) } else { rng.gen_range(1..3i64) };
                    g.add_edge(vs[a], vs[b], w);
                }
            }
            let fast = min_period_retiming(&g).period;
            // Slow oracle: smallest T whose cold constraint system is
            // feasible (scanning up from the max single-vertex delay).
            let unretimed = g.clock_period(&g.weights()).expect("valid circuit");
            let floor = (0..=n).map(|i| g.delay(crate::graph::VertexId(i as u32))).max().unwrap();
            let slow = (floor..=unretimed)
                .find(|&t| {
                    let pc = generate_period_constraints(&g, t).unwrap();
                    let mut cons = edge_constraints(&g);
                    cons.extend(pc.constraints.iter().copied());
                    DifferenceConstraints::new(g.num_vertices(), cons).is_feasible()
                })
                .expect("unretimed period is always feasible");
            lacr_prng::prop_assert_eq!(fast, slow);
        }
    }

    fn brute_force_feasible(g: &RetimeGraph, t: u64) -> bool {
        // Search r ∈ [−4, 4]^(n−1) with r[0] = 0 (differences matter).
        let n = g.num_vertices();
        let mut r = vec![0i64; n];
        fn rec(g: &RetimeGraph, t: u64, r: &mut Vec<i64>, i: usize) -> bool {
            if i == r.len() {
                let w = g.retimed_weights(r);
                return g.weights_legal(&w) && matches!(g.clock_period(&w), Some(p) if p <= t);
            }
            for v in -4..=4 {
                r[i] = v;
                if rec(g, t, r, i + 1) {
                    return true;
                }
            }
            r[i] = 0;
            false
        }
        rec(g, t, &mut r, 1)
    }
}
