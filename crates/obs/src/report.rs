//! Aggregated results: the self-time report.
//!
//! The collector folds every span close and metric update into compact
//! aggregates; [`Report`] is their snapshot. Its two renderings are the
//! CLI's `--report` self-time table (stages ranked by exclusive time,
//! whose column sums to ≈ the instrumented wall-clock) and the JSON
//! object embedded in the JSONL summary line and `BENCH_*.json` perf
//! records.

use crate::hist::Histogram;
use crate::mem::MemStats;
use crate::sink::json_escape;
use std::collections::BTreeMap;

/// Aggregate timing and memory of one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span closed.
    pub count: u64,
    /// Total inclusive nanoseconds.
    pub incl_ns: u64,
    /// Total exclusive (inclusive minus children) nanoseconds.
    pub excl_ns: u64,
    /// Net bytes allocated exclusively in this span (inclusive minus
    /// children, worker-thread credit included); negative when the span
    /// frees more than it allocates.
    pub self_bytes: i64,
    /// Highest process-wide peak-live-bytes observed at any close of
    /// this span.
    pub peak_bytes: u64,
    /// Allocation events exclusively in this span.
    pub allocs: u64,
}

/// A snapshot of every aggregate the collector holds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Span stats by name.
    pub spans: BTreeMap<String, SpanStat>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, i64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Histogram>,
    /// Process-wide allocator counters at snapshot time (not reset by
    /// `take_snapshot` — live/peak/alloc counts are process totals).
    pub mem: MemStats,
}

impl Report {
    pub(crate) fn build(
        spans: &BTreeMap<String, SpanStat>,
        counters: &BTreeMap<String, i64>,
        gauges: &BTreeMap<String, f64>,
        hists: &BTreeMap<String, Histogram>,
    ) -> Self {
        Self {
            spans: spans.clone(),
            counters: counters.clone(),
            gauges: gauges.clone(),
            hists: hists.clone(),
            mem: crate::mem::stats(),
        }
    }

    /// The stat of a span name, if it ever closed.
    pub fn span(&self, name: &str) -> Option<SpanStat> {
        self.spans.get(name).copied()
    }

    /// A counter's total, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<i64> {
        self.counters.get(name).copied()
    }

    /// A gauge's last value, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Sum of exclusive time over all spans — the instrumented
    /// wall-clock (nanoseconds). Because every span's exclusive time
    /// excludes its children, nested spans never double-count.
    pub fn total_excl_ns(&self) -> u64 {
        self.spans.values().map(|s| s.excl_ns).sum()
    }

    /// Sum of exclusive (self) bytes over all spans — the net
    /// instrumented allocation. Same no-double-count property as
    /// [`total_excl_ns`](Self::total_excl_ns).
    pub fn total_self_bytes(&self) -> i64 {
        self.spans.values().map(|s| s.self_bytes).sum()
    }

    /// Renders the `--report` self-time table: one row per span name,
    /// ranked by exclusive time, with the share of the instrumented
    /// total, the span's exclusive (self) net bytes, and its exclusive
    /// allocation count. Exclusive times sum to ≈ the top-level spans'
    /// inclusive wall-clock; self bytes sum to the net instrumented
    /// allocation.
    pub fn self_time_table(&self) -> String {
        let mut rows: Vec<(&String, &SpanStat)> = self.spans.iter().collect();
        rows.sort_by(|a, b| b.1.excl_ns.cmp(&a.1.excl_ns).then(a.0.cmp(b.0)));
        let total = self.total_excl_ns().max(1);
        let name_w = rows
            .iter()
            .map(|(n, _)| n.len())
            .chain(std::iter::once("span".len()))
            .max()
            .unwrap_or(4);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_w$}  {:>7}  {:>12}  {:>12}  {:>10}  {:>9}  {:>6}\n",
            "span", "count", "incl ms", "excl ms", "self mem", "allocs", "excl%"
        ));
        for (name, s) in &rows {
            out.push_str(&format!(
                "{:<name_w$}  {:>7}  {:>12.3}  {:>12.3}  {:>10}  {:>9}  {:>5.1}%\n",
                name,
                s.count,
                s.incl_ns as f64 / 1e6,
                s.excl_ns as f64 / 1e6,
                fmt_bytes_signed(s.self_bytes),
                s.allocs,
                100.0 * s.excl_ns as f64 / total as f64
            ));
        }
        out.push_str(&format!(
            "{:<name_w$}  {:>7}  {:>12}  {:>12.3}  {:>10}  {:>9}  100.0%",
            "total",
            "",
            "",
            total as f64 / 1e6,
            fmt_bytes_signed(self.total_self_bytes()),
            self.spans.values().map(|s| s.allocs).sum::<u64>()
        ));
        out.push_str(&format!(
            "\nmem: live {} peak {} ({} allocs, {} frees)",
            fmt_bytes_signed(self.mem.live_bytes as i64),
            fmt_bytes_signed(self.mem.peak_bytes as i64),
            self.mem.allocs,
            self.mem.deallocs
        ));
        if !self.hists.is_empty() {
            out.push_str("\n\n");
            out.push_str(&self.histogram_table());
        }
        out
    }

    /// Renders one row per histogram with count, mean and the
    /// p50/p95/p99 upper bounds (power-of-two bucket edges), appended
    /// to the `--report` output when any histogram was recorded.
    pub fn histogram_table(&self) -> String {
        let name_w = self
            .hists
            .keys()
            .map(String::len)
            .chain(std::iter::once("histogram".len()))
            .max()
            .unwrap_or(9);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_w$}  {:>9}  {:>12}  {:>8}  {:>8}  {:>8}  {:>8}\n",
            "histogram", "count", "mean", "p50", "p95", "p99", "max"
        ));
        for (name, h) in &self.hists {
            out.push_str(&format!(
                "{:<name_w$}  {:>9}  {:>12.1}  {:>8}  {:>8}  {:>8}  {:>8}\n",
                name,
                h.count(),
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max()
            ));
        }
        out
    }

    /// The process-wide memory block as one JSON object: allocator
    /// counters from this snapshot plus the kernel's peak RSS (read at
    /// render time; 0 where `/proc` is unavailable). Shared by the
    /// summary line, `--report-json`, and the `RUN_*`/`BENCH_*`
    /// artifact writers.
    pub fn mem_json(&self) -> String {
        format!(
            "{{\"live_bytes\":{},\"peak_bytes\":{},\"allocs\":{},\"deallocs\":{},\"peak_rss_bytes\":{}}}",
            self.mem.live_bytes,
            self.mem.peak_bytes,
            self.mem.allocs,
            self.mem.deallocs,
            crate::mem::peak_rss_bytes().unwrap_or(0)
        )
    }

    /// The report's fields as a JSON fragment (no surrounding braces),
    /// ready to splice into a summary line or perf record.
    pub fn json_fields(&self) -> String {
        let spans = self
            .spans
            .iter()
            .map(|(n, s)| {
                format!(
                    "\"{}\":{{\"count\":{},\"incl_us\":{},\"excl_us\":{},\
                     \"self_bytes\":{},\"peak_bytes\":{},\"allocs\":{}}}",
                    json_escape(n),
                    s.count,
                    s.incl_ns / 1_000,
                    s.excl_ns / 1_000,
                    s.self_bytes,
                    s.peak_bytes,
                    s.allocs
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| format!("\"{}\":{v}", json_escape(n)))
            .collect::<Vec<_>>()
            .join(",");
        let gauges = self
            .gauges
            .iter()
            .map(|(n, v)| {
                let v = crate::Value::Float(*v).to_json();
                format!("\"{}\":{v}", json_escape(n))
            })
            .collect::<Vec<_>>()
            .join(",");
        let hists = self
            .hists
            .iter()
            .map(|(n, h)| format!("\"{}\":{}", json_escape(n), h.to_json()))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "\"spans\":{{{spans}}},\"counters\":{{{counters}}},\
             \"gauges\":{{{gauges}}},\"hists\":{{{hists}}},\"mem\":{}",
            self.mem_json()
        )
    }

    /// The report as one standalone JSON object.
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.json_fields())
    }

    /// The machine-readable twin of [`self_time_table`]
    /// (the CLI's `--report-json <path>`): a schema-versioned document
    /// with spans ranked by exclusive time — same order, same share
    /// arithmetic as the human table — plus per-histogram quantile
    /// bounds. Same versioning style as `RUN_*.json` artifacts.
    pub fn ranked_json(&self) -> String {
        let mut rows: Vec<(&String, &SpanStat)> = self.spans.iter().collect();
        rows.sort_by(|a, b| b.1.excl_ns.cmp(&a.1.excl_ns).then(a.0.cmp(b.0)));
        let total = self.total_excl_ns().max(1);
        let spans = rows
            .iter()
            .map(|(n, s)| {
                format!(
                    "{{\"name\":\"{}\",\"count\":{},\"incl_us\":{},\"excl_us\":{},\"excl_pct\":{},\
                     \"self_bytes\":{},\"peak_bytes\":{},\"allocs\":{}}}",
                    json_escape(n),
                    s.count,
                    s.incl_ns / 1_000,
                    s.excl_ns / 1_000,
                    crate::Value::Float(100.0 * s.excl_ns as f64 / total as f64).to_json(),
                    s.self_bytes,
                    s.peak_bytes,
                    s.allocs
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let hists = self
            .hists
            .iter()
            .map(|(n, h)| {
                format!(
                    "\"{}\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                    json_escape(n),
                    h.count(),
                    crate::Value::Float(h.mean()).to_json(),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.max()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"t\":\"report\",\"schema_version\":{},\"total_excl_us\":{},\
             \"total_self_bytes\":{},\"mem\":{},\
             \"spans\":[{spans}],\"hists\":{{{hists}}}}}",
            crate::SCHEMA_VERSION,
            self.total_excl_ns() / 1_000,
            self.total_self_bytes(),
            self.mem_json()
        )
    }
}

/// Human-readable bytes with a sign: `-1.5M`, `482`, `3.2G`. Used by
/// the self-time table's memory column, where per-stage values span
/// bytes to gigabytes.
pub fn fmt_bytes_signed(v: i64) -> String {
    let sign = if v < 0 { "-" } else { "" };
    let a = v.unsigned_abs() as f64;
    if a < 1024.0 {
        format!("{sign}{}", v.unsigned_abs())
    } else if a < 1024.0 * 1024.0 {
        format!("{sign}{:.1}K", a / 1024.0)
    } else if a < 1024.0 * 1024.0 * 1024.0 {
        format!("{sign}{:.1}M", a / (1024.0 * 1024.0))
    } else {
        format!("{sign}{:.1}G", a / (1024.0 * 1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut spans = BTreeMap::new();
        spans.insert(
            "plan.route".to_string(),
            SpanStat {
                count: 1,
                incl_ns: 3_000_000,
                excl_ns: 2_000_000,
                self_bytes: 2048,
                peak_bytes: 1 << 20,
                allocs: 12,
            },
        );
        spans.insert(
            "plan.lac".to_string(),
            SpanStat {
                count: 4,
                incl_ns: 9_000_000,
                excl_ns: 9_000_000,
                self_bytes: -512,
                peak_bytes: 1 << 21,
                allocs: 40,
            },
        );
        let mut counters = BTreeMap::new();
        counters.insert("route.ripup_passes".to_string(), 7);
        let mut gauges = BTreeMap::new();
        gauges.insert("lac.alpha".to_string(), 0.5);
        let mut hists = BTreeMap::new();
        let mut h = Histogram::new();
        h.record(5);
        hists.insert("net_len".to_string(), h);
        Report::build(&spans, &counters, &gauges, &hists)
    }

    #[test]
    fn table_ranks_by_exclusive_time() {
        let r = sample();
        let table = r.self_time_table();
        let lac = table.find("plan.lac").unwrap();
        let route = table.find("plan.route").unwrap();
        assert!(
            lac < route,
            "lac (9ms excl) must rank above route:\n{table}"
        );
        assert!(table.contains("excl%"));
        assert!(
            table
                .lines()
                .any(|l| l.starts_with("total") && l.ends_with("100.0%")),
            "{table}"
        );
        assert_eq!(r.total_excl_ns(), 11_000_000);
        // The histogram quantile section follows the span table.
        assert!(table.contains("p50") && table.contains("p99"), "{table}");
        assert!(table.contains("net_len"), "{table}");
    }

    #[test]
    fn histogram_table_reports_quantile_bounds() {
        let mut hists = BTreeMap::new();
        let mut h = Histogram::new();
        for v in [1_u64, 2, 3, 100] {
            h.record(v);
        }
        hists.insert("lac.round_n_foa".to_string(), h);
        let r = Report::build(&BTreeMap::new(), &BTreeMap::new(), &BTreeMap::new(), &hists);
        let t = r.histogram_table();
        assert!(t.contains("lac.round_n_foa"), "{t}");
        // count 4, p50 in [2,4) bucket → bound 4, p99 covers 100 → 128.
        assert!(t.contains("4"), "{t}");
        assert!(t.contains("128"), "{t}");
        // No histograms → the span table stays bare.
        let bare = Report::default();
        assert!(!bare.self_time_table().contains("histogram"));
    }

    #[test]
    fn json_is_well_formed() {
        let r = sample();
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"route.ripup_passes\":7"));
        assert!(json.contains("\"lac.alpha\":0.5"));
        assert!(json.contains("\"plan.lac\":{\"count\":4"));
        assert!(json.contains("\"net_len\":{\"count\":1"));
    }

    #[test]
    fn ranked_json_mirrors_the_human_table() {
        let r = sample();
        let json = r.ranked_json();
        assert!(json.starts_with("{\"t\":\"report\",\"schema_version\":"));
        assert!(json.contains("\"total_excl_us\":11000"), "{json}");
        // Same ranking as the table: lac (9ms excl) before route (2ms).
        let lac = json.find("\"name\":\"plan.lac\"").unwrap();
        let route = json.find("\"name\":\"plan.route\"").unwrap();
        assert!(lac < route, "{json}");
        assert!(json.contains("\"excl_pct\":"), "{json}");
        assert!(json.contains("\"net_len\":{\"count\":1"), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
    }

    #[test]
    fn accessors() {
        let r = sample();
        assert_eq!(r.counter("route.ripup_passes"), Some(7));
        assert_eq!(r.counter("missing"), None);
        assert_eq!(r.gauge("lac.alpha"), Some(0.5));
        assert_eq!(r.span("plan.route").unwrap().count, 1);
        assert_eq!(r.hist("net_len").unwrap().count(), 1);
    }

    #[test]
    fn memory_columns_and_blocks_are_rendered() {
        let r = sample();
        assert_eq!(r.total_self_bytes(), 2048 - 512);
        let table = r.self_time_table();
        assert!(table.contains("self mem"), "{table}");
        assert!(table.contains("allocs"), "{table}");
        assert!(table.contains("-512"), "lac frees net 512 B: {table}");
        assert!(table.contains("2.0K"), "route allocates 2 KiB: {table}");
        assert!(table.contains("\nmem: live "), "{table}");
        let json = r.to_json();
        assert!(json.contains("\"self_bytes\":2048"), "{json}");
        assert!(json.contains("\"self_bytes\":-512"), "{json}");
        assert!(json.contains("\"allocs\":40"), "{json}");
        assert!(json.contains("\"mem\":{\"live_bytes\":"), "{json}");
        assert!(json.contains("\"peak_rss_bytes\":"), "{json}");
        let ranked = r.ranked_json();
        assert!(ranked.contains("\"total_self_bytes\":1536"), "{ranked}");
        assert!(ranked.contains("\"mem\":{\"live_bytes\":"), "{ranked}");
        assert!(ranked.contains("\"self_bytes\":-512"), "{ranked}");
    }

    #[test]
    fn byte_formatting_covers_all_magnitudes() {
        assert_eq!(fmt_bytes_signed(0), "0");
        assert_eq!(fmt_bytes_signed(482), "482");
        assert_eq!(fmt_bytes_signed(-482), "-482");
        assert_eq!(fmt_bytes_signed(2048), "2.0K");
        assert_eq!(fmt_bytes_signed(-(3 << 20) / 2), "-1.5M");
        assert_eq!(fmt_bytes_signed(5 << 30), "5.0G");
    }
}
