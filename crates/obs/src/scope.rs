//! Scoped per-request collectors for concurrent pipelines.
//!
//! The global collector ([`crate::init`] / [`crate::finish`]) is one
//! process-wide aggregate — exactly right for the one-shot CLI, and
//! exactly wrong for a daemon running many plans at once: spans and
//! counters from concurrent requests would merge into one unattributable
//! blob. A [`Scope`] fixes that: a small, independently aggregating
//! collector attached to the *current thread* for the duration of a
//! request. While attached, every span close, counter, gauge and
//! histogram recorded on that thread (and, via `lacr-par`'s scope
//! propagation, on any worker thread a parallel region spawns for it)
//! is folded into the scope's own aggregates — in addition to the
//! global collector, whose behaviour is unchanged.
//!
//! ```
//! use lacr_obs::scope::Scope;
//!
//! let scope = Scope::new("req-42");
//! {
//!     let _g = scope.attach();
//!     lacr_obs::counter!("demo.items", 3);
//! }
//! assert_eq!(scope.report().counter("demo.items"), Some(3));
//! ```
//!
//! Scopes nest (the innermost attached scope records); a handle is
//! cheaply cloneable and thread-safe, so a worker pool can attach the
//! same scope on whichever thread executes the request. The guard is
//! deliberately `!Send`: attach/detach must happen on one thread.

use crate::hist::Histogram;
use crate::mem::{self, MemDelta};
use crate::report::{Report, SpanStat};
use crate::Value;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct Agg {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, i64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    /// Structured events, kept verbatim (they are rare by contract).
    events: Vec<(String, Vec<(String, Value)>)>,
    /// Allocation activity attributed to this scope: the sum, over
    /// every thread the scope was attached on, of that thread's
    /// allocator delta while attached — minus windows where a nested
    /// scope was attached on the same thread (self-bytes semantics,
    /// mirroring span self-time). Worker threads of a parallel region
    /// attach the caller's scope, so their allocation lands here too.
    mem: MemDelta,
}

struct Inner {
    label: String,
    agg: Mutex<Agg>,
}

/// A cloneable handle to one scoped collector. All clones share the
/// same aggregates; [`Scope::report`] snapshots them at any time.
#[derive(Clone)]
pub struct Scope {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("label", &self.inner.label)
            .finish_non_exhaustive()
    }
}

/// Memory bookkeeping for one scope attachment on one thread: the
/// thread's allocator counters at attach, plus the inclusive deltas of
/// nested attachments (excluded from this attachment's own share).
struct MemFrame {
    start: mem::ThreadMark,
    child: MemDelta,
}

thread_local! {
    /// Innermost-wins stack of scopes attached to this thread.
    static STACK: RefCell<Vec<Scope>> = const { RefCell::new(Vec::new()) };
    /// Fast-path mirror of `!STACK.is_empty()`, read by the recording
    /// macros without borrowing the stack.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    /// Parallel stack of per-attachment memory frames.
    static MEM_STACK: RefCell<Vec<MemFrame>> = const { RefCell::new(Vec::new()) };
}

/// Whether a scope is attached to the current thread. One thread-local
/// read; the macros check this alongside [`crate::is_enabled`].
#[inline]
pub fn active() -> bool {
    ACTIVE.with(Cell::get)
}

/// The innermost scope attached to the current thread, if any. Parallel
/// regions capture this before spawning workers and [`Scope::attach`]
/// the clone on each of them.
pub fn current() -> Option<Scope> {
    if !active() {
        return None;
    }
    STACK.with(|s| s.borrow().last().cloned())
}

/// Detaches the innermost scope when dropped. Not `Send`: a guard must
/// be dropped on the thread that created it.
#[must_use = "the scope detaches when this guard drops; bind it to a variable"]
pub struct ScopeGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let scope = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let scope = s.pop();
            ACTIVE.with(|a| a.set(!s.is_empty()));
            scope
        });
        // Attribute this thread's allocation over the attachment window
        // to the scope, excluding nested attachments' windows; the
        // inclusive delta rolls up into the enclosing frame, mirroring
        // span self-time arithmetic.
        let self_mem = MEM_STACK.with(|m| {
            let mut m = m.borrow_mut();
            let frame = m.pop()?;
            let incl = frame.start.delta();
            if let Some(parent) = m.last_mut() {
                parent.child.add(&incl);
            }
            Some(incl.saturating_sub(&frame.child))
        });
        if let (Some(scope), Some(self_mem)) = (scope, self_mem) {
            scope.lock().mem.add(&self_mem);
        }
    }
}

impl Scope {
    /// A fresh scope labelled `label` (the serve loop uses the request
    /// id, so postmortems and reports can name their request).
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            inner: Arc::new(Inner {
                label: label.into(),
                agg: Mutex::new(Agg::default()),
            }),
        }
    }

    /// The label given at construction.
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// Attaches this scope to the current thread until the guard drops.
    pub fn attach(&self) -> ScopeGuard {
        STACK.with(|s| s.borrow_mut().push(self.clone()));
        ACTIVE.with(|a| a.set(true));
        MEM_STACK.with(|m| {
            m.borrow_mut().push(MemFrame {
                start: mem::thread_mark(),
                child: MemDelta::default(),
            });
        });
        ScopeGuard {
            _not_send: PhantomData,
        }
    }

    /// Allocation activity attributed to this scope so far: summed over
    /// all finished attachments on all threads, with nested scopes'
    /// windows excluded (self-bytes semantics, mirroring span
    /// self-time). The serve daemon reads this after a request detaches
    /// to report the request's `mem_bytes`.
    pub fn mem(&self) -> MemDelta {
        self.lock().mem
    }

    /// Snapshot of everything recorded while attached.
    pub fn report(&self) -> Report {
        let agg = self.lock();
        Report::build(&agg.spans, &agg.counters, &agg.gauges, &agg.hists)
    }

    /// The structured events recorded while attached (name, attributes),
    /// in record order.
    pub fn events(&self) -> Vec<(String, Vec<(String, Value)>)> {
        self.lock().events.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Agg> {
        // A panicking request must not wedge its own postmortem path.
        self.inner.agg.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Folds a span close into the current thread's scope, if any.
pub(crate) fn record_span(
    name: &str,
    incl_ns: u64,
    excl_ns: u64,
    self_bytes: i64,
    allocs: u64,
    peak_bytes: u64,
) {
    let Some(scope) = current() else { return };
    let mut agg = scope.lock();
    let stat = agg.spans.entry(name.to_string()).or_default();
    stat.count += 1;
    stat.incl_ns += incl_ns;
    stat.excl_ns += excl_ns;
    stat.self_bytes += self_bytes;
    stat.allocs += allocs;
    stat.peak_bytes = stat.peak_bytes.max(peak_bytes);
}

/// Adds to a counter in the current thread's scope, if any.
pub(crate) fn record_counter(name: &str, delta: i64) {
    let Some(scope) = current() else { return };
    let mut agg = scope.lock();
    *agg.counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Sets a gauge in the current thread's scope, if any.
pub(crate) fn record_gauge(name: &str, value: f64) {
    let Some(scope) = current() else { return };
    scope.lock().gauges.insert(name.to_string(), value);
}

/// Records a histogram sample in the current thread's scope, if any.
pub(crate) fn record_hist(name: &str, value: u64) {
    let Some(scope) = current() else { return };
    scope
        .lock()
        .hists
        .entry(name.to_string())
        .or_default()
        .record(value);
}

/// Records a structured event in the current thread's scope, if any.
pub(crate) fn record_event(name: &str, attrs: &[(&'static str, Value)]) {
    let Some(scope) = current() else { return };
    scope.lock().events.push((
        name.to_string(),
        attrs
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_route_to_the_attached_scope_only_while_attached() {
        let scope = Scope::new("t1");
        assert!(!active());
        crate::add_counter("scope.t1.outside", 1);
        {
            let _g = scope.attach();
            assert!(active());
            assert_eq!(current().unwrap().label(), "t1");
            crate::add_counter("scope.t1.inside", 2);
            crate::set_gauge("scope.t1.g", 1.5);
            crate::record_hist("scope.t1.h", 8);
        }
        assert!(!active());
        let r = scope.report();
        assert_eq!(r.counter("scope.t1.inside"), Some(2));
        assert_eq!(r.counter("scope.t1.outside"), None);
        assert_eq!(r.gauge("scope.t1.g"), Some(1.5));
        assert_eq!(r.hist("scope.t1.h").map(Histogram::count), Some(1));
    }

    #[test]
    fn innermost_scope_wins_when_nested() {
        let outer = Scope::new("outer");
        let inner = Scope::new("inner");
        let _go = outer.attach();
        crate::add_counter("scope.nest", 1);
        {
            let _gi = inner.attach();
            assert_eq!(current().unwrap().label(), "inner");
            crate::add_counter("scope.nest", 10);
        }
        assert_eq!(current().unwrap().label(), "outer");
        crate::add_counter("scope.nest", 100);
        assert_eq!(outer.report().counter("scope.nest"), Some(101));
        assert_eq!(inner.report().counter("scope.nest"), Some(10));
    }

    #[test]
    fn spans_aggregate_into_the_scope_without_a_global_collector() {
        let scope = Scope::new("spans");
        {
            let _g = scope.attach();
            assert!(crate::recording());
            let _outer = crate::Span::enter("scope.span.outer", &[]);
            {
                let _inner = crate::Span::enter("scope.span.inner", &[]);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let r = scope.report();
        let outer = r.span("scope.span.outer").expect("outer recorded");
        let inner = r.span("scope.span.inner").expect("inner recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.incl_ns >= inner.incl_ns);
        assert_eq!(outer.excl_ns, outer.incl_ns - inner.incl_ns);
    }

    #[test]
    fn same_scope_attached_on_many_threads_merges() {
        let scope = Scope::new("mt");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let scope = scope.clone();
                s.spawn(move || {
                    let _g = scope.attach();
                    for _ in 0..100 {
                        crate::add_counter("scope.mt", 1);
                    }
                });
            }
        });
        assert_eq!(scope.report().counter("scope.mt"), Some(400));
    }

    #[test]
    fn nested_scope_bytes_are_excluded_from_the_outer_scope() {
        let outer = Scope::new("mem-outer");
        let inner = Scope::new("mem-inner");
        {
            let _go = outer.attach();
            let _outer_buf: Vec<u8> = Vec::with_capacity(1 << 12);
            {
                let _gi = inner.attach();
                let _inner_buf: Vec<u8> = Vec::with_capacity(1 << 16);
            }
        }
        let im = inner.mem();
        let om = outer.mem();
        assert!(im.alloc_bytes >= 1 << 16, "inner saw its 64 KiB: {im:?}");
        assert!(im.allocs >= 1, "{im:?}");
        // The inner attachment's window is excluded from the outer
        // scope's self-bytes — same arithmetic as span self-time. The
        // outer keeps only its own 4 KiB plus small stack bookkeeping.
        assert!(om.alloc_bytes >= 1 << 12, "outer saw its 4 KiB: {om:?}");
        assert!(
            om.alloc_bytes < 1 << 16,
            "outer must exclude the inner scope's bytes: {om:?}"
        );
    }

    #[test]
    fn scope_mem_sums_attachments_across_threads() {
        let scope = Scope::new("mem-mt");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let scope = scope.clone();
                s.spawn(move || {
                    let _g = scope.attach();
                    let _buf: Vec<u8> = Vec::with_capacity(1 << 14);
                });
            }
        });
        let m = scope.mem();
        // Four threads, 16 KiB each: all four attachments contribute.
        assert!(m.alloc_bytes >= 4 << 14, "{m:?}");
        assert!(m.allocs >= 4, "{m:?}");
    }

    #[test]
    fn events_are_kept_verbatim() {
        let scope = Scope::new("ev");
        let _g = scope.attach();
        crate::emit_event("scope.event", &[("k", Value::Uint(7))]);
        let events = scope.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, "scope.event");
        assert_eq!(events[0].1[0], ("k".to_string(), Value::Uint(7)));
    }
}
