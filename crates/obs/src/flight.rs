//! The flight recorder: a bounded, always-on ring of recent records.
//!
//! The collector ([`crate::init`]) is opt-in — normal runs fly blind,
//! which is exactly when a panic, a degraded exit or a budget expiry
//! leaves nothing to debug with. The flight recorder closes that gap:
//! a fixed-capacity ring buffer that keeps the most recent records —
//! every [`crate::diag!`] line and every [`crate::event!`], plus the
//! full span/counter/gauge/histogram stream whenever a collector is
//! installed — and can be dumped as a JSONL postmortem artifact at the
//! moment something goes wrong.
//!
//! Three triggers dump automatically once a dump path is [`arm`]ed:
//!
//! 1. **panic** — [`install_panic_hook`] chains a dumping hook in front
//!    of the default one;
//! 2. **degraded exit** — the CLI dumps before exiting 3;
//! 3. **budget expiry** — `Budget::expired` dumps when its sticky latch
//!    first trips.
//!
//! The dump format is JSONL: a header line
//! `{"t":"flight","schema_version":1,"reason":...,"events":N,"dropped":M,"capacity":C}`
//! followed by one [`Record`] per line (same shape as `--metrics-out`
//! streams, but truncated to the ring — span opens/closes need not
//! balance). `check_metrics --flight` validates the contract. The
//! header's `capacity` is the effective ring size, so a postmortem
//! records whether it was taken with a tuned `LACR_FLIGHT_CAP`.
//!
//! Recording costs one atomic load plus a short mutexed push; set the
//! `LACR_FLIGHT=off` environment variable (or call [`set_enabled`]) to
//! disable it entirely, e.g. when measuring instrumentation overhead.

use crate::sink::Record;
use crate::Value;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};
use std::time::Instant;

/// Default ring capacity (records). Generous enough to hold the tail of
/// a planning run — every diag line, every event, and the last few
/// thousand span/metric records when a collector streams into it.
/// Override at startup with the `LACR_FLIGHT_CAP` environment variable
/// (bounds-checked to [`MIN_CAPACITY`]..=[`MAX_CAPACITY`]).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Smallest accepted `LACR_FLIGHT_CAP` — below this a postmortem can't
/// even hold one request's span tree.
pub const MIN_CAPACITY: usize = 16;

/// Largest accepted `LACR_FLIGHT_CAP` — the ring is resident memory in
/// a long-lived daemon, so the ceiling is deliberate.
pub const MAX_CAPACITY: usize = 1 << 20;

/// The ring capacity `LACR_FLIGHT_CAP` requests: unset or unparsable
/// falls back to [`DEFAULT_CAPACITY`] (with a stderr note for garbage),
/// out-of-range values are clamped into
/// [`MIN_CAPACITY`]..=[`MAX_CAPACITY`].
fn capacity_from_env() -> usize {
    parse_capacity(std::env::var("LACR_FLIGHT_CAP").ok().as_deref())
}

/// The bounds-checking behind [`capacity_from_env`], split out so the
/// policy is testable without mutating process environment.
fn parse_capacity(raw: Option<&str>) -> usize {
    match raw {
        None => DEFAULT_CAPACITY,
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) => n.clamp(MIN_CAPACITY, MAX_CAPACITY),
            Err(_) => {
                eprintln!(
                    "[lacr] flight recorder: ignoring unparsable LACR_FLIGHT_CAP={raw:?} \
                     (using default {DEFAULT_CAPACITY})"
                );
                DEFAULT_CAPACITY
            }
        },
    }
}

struct Ring {
    buf: VecDeque<(u64, Record)>,
    cap: usize,
    /// Total records ever pushed (evicted ones included).
    pushed: u64,
    /// Where [`dump`] writes, once armed.
    dump_path: Option<PathBuf>,
}

fn ring() -> &'static Mutex<Ring> {
    static CELL: OnceLock<Mutex<Ring>> = OnceLock::new();
    CELL.get_or_init(|| {
        let cap = capacity_from_env();
        Mutex::new(Ring {
            buf: VecDeque::with_capacity(cap.min(DEFAULT_CAPACITY)),
            cap,
            pushed: 0,
            dump_path: None,
        })
    })
}

/// Postmortems written so far (any trigger, any path) — a liveness
/// signal for the daemon's stats snapshot: a rising dump count means
/// requests are panicking or degrading right now.
fn dumps() -> &'static AtomicU64 {
    static DUMPS: AtomicU64 = AtomicU64::new(0);
    &DUMPS
}

/// How many postmortem dumps this process has written.
pub fn dump_count() -> u64 {
    dumps().load(Ordering::Relaxed)
}

/// The ring's current capacity (records).
pub fn capacity() -> usize {
    lock().cap
}

fn lock() -> MutexGuard<'static, Ring> {
    // A panic while holding the lock must not wedge the panic hook.
    ring().lock().unwrap_or_else(|e| e.into_inner())
}

fn flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        let off = std::env::var("LACR_FLIGHT").is_ok_and(|v| v == "0" || v == "off");
        AtomicBool::new(!off)
    })
}

/// Whether the flight recorder is capturing (default: yes, unless the
/// `LACR_FLIGHT=off` environment variable disabled it at startup).
#[inline]
pub fn is_enabled() -> bool {
    flag().load(Ordering::Relaxed)
}

/// Turns capturing on or off at runtime (the ring keeps its contents).
pub fn set_enabled(on: bool) {
    flag().store(on, Ordering::Relaxed);
}

/// Microseconds since the recorder's own epoch (first use). Flight
/// timestamps are independent of the collector's install time so ring
/// entries stay monotone across collector installs.
pub fn ts_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Appends one record to the ring, evicting the oldest at capacity.
pub fn push(record: &Record) {
    if !is_enabled() {
        return;
    }
    let ts = ts_us();
    let mut r = lock();
    if r.cap == 0 {
        return;
    }
    while r.buf.len() >= r.cap {
        r.buf.pop_front();
    }
    r.buf.push_back((ts, record.clone()));
    r.pushed += 1;
}

/// Records a diagnostic line (what [`crate::diag!`] printed) as a
/// `diag` event in the ring.
pub fn note(msg: &str) {
    if !is_enabled() {
        return;
    }
    push(&Record::Event {
        name: "diag".to_string(),
        attrs: vec![("msg".to_string(), Value::Str(msg.to_string()))],
    });
}

/// Arms automatic dumping: [`dump`] (and the panic / budget-expiry /
/// degraded-exit triggers) will write the postmortem to `path`.
pub fn arm(path: impl Into<PathBuf>) {
    lock().dump_path = Some(path.into());
}

/// Disarms automatic dumping, returning the previously armed path.
pub fn disarm() -> Option<PathBuf> {
    lock().dump_path.take()
}

/// The currently armed dump path, if any.
pub fn armed() -> Option<PathBuf> {
    lock().dump_path.clone()
}

/// Resizes the ring (tests use small capacities to exercise
/// wraparound), evicting the oldest entries if it shrinks.
pub fn set_capacity(cap: usize) {
    let mut r = lock();
    r.cap = cap;
    while r.buf.len() > cap {
        r.buf.pop_front();
    }
}

/// Empties the ring and resets the pushed-records counter.
pub fn clear() {
    let mut r = lock();
    r.buf.clear();
    r.pushed = 0;
}

/// A copy of the ring's current contents, oldest first.
pub fn snapshot() -> Vec<(u64, Record)> {
    lock().buf.iter().cloned().collect()
}

/// Writes the postmortem JSONL to `path`: the header line, then one
/// record per line, oldest first. Parent directories are created.
///
/// # Errors
///
/// Any I/O error from creating or writing the file.
pub fn dump_to(path: &Path, reason: &str) -> std::io::Result<()> {
    let (events, dropped, cap) = {
        let r = lock();
        let events: Vec<(u64, Record)> = r.buf.iter().cloned().collect();
        let dropped = r.pushed.saturating_sub(events.len() as u64);
        (events, dropped, r.cap)
    };
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    // Memory state at dump time: postmortems from budget-expiry or panic
    // must show whether the run was memory-bound without a rerun.
    let mem = crate::mem::stats();
    let rss = crate::mem::peak_rss_bytes().unwrap_or(0);
    writeln!(
        out,
        "{{\"t\":\"flight\",\"schema_version\":{},\"reason\":\"{}\",\"events\":{},\"dropped\":{},\"capacity\":{},\"peak_rss_bytes\":{},\"mem\":{{\"live_bytes\":{},\"peak_bytes\":{},\"allocs\":{},\"deallocs\":{}}}}}",
        crate::SCHEMA_VERSION,
        crate::json_escape(reason),
        events.len(),
        dropped,
        cap,
        rss,
        mem.live_bytes,
        mem.peak_bytes,
        mem.allocs,
        mem.deallocs
    )?;
    for (ts, rec) in &events {
        writeln!(out, "{}", rec.to_json(*ts))?;
    }
    out.flush()?;
    dumps().fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Best-effort dump to the armed path (no-op when unarmed). Returns the
/// path written; I/O errors are reported on stderr, not propagated —
/// this runs from panic hooks and exit paths that must not fail.
pub fn dump(reason: &str) -> Option<PathBuf> {
    let path = armed()?;
    match dump_to(&path, reason) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!(
                "[lacr] flight recorder: cannot write {}: {e}",
                path.display()
            );
            None
        }
    }
}

/// A filesystem-safe rendering of a request tag: `[A-Za-z0-9._-]` kept,
/// everything else replaced with `-`, capped at 64 bytes, never empty.
fn sanitize_tag(tag: &str) -> String {
    let mut out: String = tag
        .chars()
        .take(64)
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect();
    if out.is_empty() {
        out.push_str("request");
    }
    out
}

/// The path a [`dump_tagged`] postmortem for `tag` would be written to:
/// `req-<sanitized tag>.jsonl` next to the armed dump path. `None` when
/// unarmed — tagged dumps share the arming switch with plain dumps.
pub fn tagged_path(tag: &str) -> Option<PathBuf> {
    let armed = armed()?;
    let file = format!("req-{}.jsonl", sanitize_tag(tag));
    Some(match armed.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir.join(file),
        _ => PathBuf::from(file),
    })
}

/// Best-effort dump namespaced by a request tag, so concurrent requests'
/// postmortems never clobber each other (or the one-shot armed path).
/// No-op when unarmed; I/O errors go to stderr, as with [`dump`].
pub fn dump_tagged(tag: &str, reason: &str) -> Option<PathBuf> {
    let path = tagged_path(tag)?;
    match dump_to(&path, reason) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!(
                "[lacr] flight recorder: cannot write {}: {e}",
                path.display()
            );
            None
        }
    }
}

/// Installs a panic hook (once per process, chaining the previous hook)
/// that records the panic as an event and dumps the ring before the
/// default hook prints the backtrace. When the panicking thread has a
/// [`crate::scope::Scope`] attached (a daemon request), the dump goes to
/// that request's tagged path so concurrent postmortems never collide;
/// otherwise it goes to the plain armed path.
pub fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            push(&Record::Event {
                name: "panic".to_string(),
                attrs: vec![("info".to_string(), Value::Str(info.to_string()))],
            });
            let reason = format!("panic: {info}");
            let written = match crate::scope::current() {
                Some(scope) => dump_tagged(scope.label(), &reason),
                None => dump(&reason),
            };
            if let Some(path) = written {
                eprintln!("[lacr] flight recorder dumped to {}", path.display());
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that reconfigure the global ring.
    fn gate() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn marker(i: u64) -> Record {
        Record::Hist {
            name: "flight.test.marker".to_string(),
            value: i,
        }
    }

    fn marker_values(snap: &[(u64, Record)]) -> Vec<u64> {
        snap.iter()
            .filter_map(|(_, r)| match r {
                Record::Hist { name, value } if name == "flight.test.marker" => Some(*value),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn ring_wraps_and_keeps_the_most_recent() {
        let _g = gate();
        set_capacity(8);
        clear();
        for i in 0..100u64 {
            push(&marker(i));
        }
        let snap = snapshot();
        assert!(snap.len() <= 8, "ring exceeded capacity: {}", snap.len());
        let kept = marker_values(&snap);
        // The survivors are the most recent markers, in push order.
        assert_eq!(kept, (100 - kept.len() as u64..100).collect::<Vec<_>>());
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn concurrent_writers_never_exceed_capacity() {
        let _g = gate();
        set_capacity(64);
        clear();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                s.spawn(move || {
                    for i in 0..500u64 {
                        push(&marker(t * 1_000 + i));
                    }
                });
            }
        });
        let snap = snapshot();
        assert!(snap.len() <= 64);
        // Timestamps are monotone non-decreasing, oldest first.
        assert!(snap.windows(2).all(|w| w[0].0 <= w[1].0));
        // Every writer's final marker is newer than anything evicted:
        // at least the last few pushes survived.
        assert!(!marker_values(&snap).is_empty());
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn dump_writes_header_and_records() {
        let _g = gate();
        set_capacity(16);
        clear();
        for i in 0..5u64 {
            push(&marker(i));
        }
        note("something interesting");
        let path = std::env::temp_dir().join(format!(
            "lacr_flight_unit_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        dump_to(&path, "unit \"test\"").expect("dump writes");
        let text = std::fs::read_to_string(&path).expect("dump readable");
        let mut lines = text.lines();
        let header = lines.next().expect("header line");
        assert!(header.starts_with("{\"t\":\"flight\""), "{header}");
        assert!(header.contains("\"schema_version\":"), "{header}");
        assert!(header.contains("unit \\\"test\\\""), "{header}");
        // Postmortem memory state: allocator counters + peak RSS.
        assert!(header.contains("\"peak_rss_bytes\":"), "{header}");
        assert!(header.contains("\"mem\":{\"live_bytes\":"), "{header}");
        assert!(header.contains("\"peak_bytes\":"), "{header}");
        assert!(header.contains("\"allocs\":"), "{header}");
        // Header "events" count matches the body.
        let body: Vec<&str> = lines.collect();
        assert!(header.contains(&format!("\"events\":{}", body.len())));
        assert!(body.iter().any(|l| l.contains("flight.test.marker")));
        assert!(body.iter().any(|l| l.contains("something interesting")));
        let _ = std::fs::remove_file(&path);
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn env_capacity_is_bounds_checked() {
        assert_eq!(parse_capacity(None), DEFAULT_CAPACITY);
        assert_eq!(parse_capacity(Some("1024")), 1024);
        assert_eq!(parse_capacity(Some(" 64 ")), 64);
        // Out of range: clamped, not rejected.
        assert_eq!(parse_capacity(Some("1")), MIN_CAPACITY);
        assert_eq!(parse_capacity(Some("0")), MIN_CAPACITY);
        assert_eq!(parse_capacity(Some("999999999999")), MAX_CAPACITY);
        // Garbage: the default, never a panic.
        assert_eq!(parse_capacity(Some("lots")), DEFAULT_CAPACITY);
        assert_eq!(parse_capacity(Some("-5")), DEFAULT_CAPACITY);
        assert_eq!(parse_capacity(Some("")), DEFAULT_CAPACITY);
    }

    #[test]
    fn dump_header_records_effective_capacity_and_counts_dumps() {
        let _g = gate();
        set_capacity(32);
        clear();
        push(&marker(1));
        let path = std::env::temp_dir().join(format!(
            "lacr_flight_cap_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let before = dump_count();
        dump_to(&path, "capacity check").expect("dump writes");
        let text = std::fs::read_to_string(&path).expect("dump readable");
        let header = text.lines().next().expect("header line");
        assert!(header.contains("\"capacity\":32"), "{header}");
        assert_eq!(dump_count(), before + 1);
        let _ = std::fs::remove_file(&path);
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn disabled_recorder_drops_records() {
        let _g = gate();
        clear();
        set_enabled(false);
        push(&marker(1));
        note("invisible");
        assert!(marker_values(&snapshot()).is_empty());
        set_enabled(true);
        push(&marker(2));
        assert_eq!(marker_values(&snapshot()), vec![2]);
        clear();
    }

    #[test]
    fn tagged_dumps_for_two_requests_never_collide() {
        let _g = gate();
        clear();
        let dir = std::env::temp_dir().join(format!(
            "lacr_flight_collide_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        // Unarmed: tagged dumps are no-ops, like plain dumps.
        let saved = disarm();
        assert!(tagged_path("req-1").is_none());
        assert!(dump_tagged("req-1", "unarmed").is_none());
        arm(dir.join("last-run.jsonl"));

        push(&marker(1));
        let p1 = dump_tagged("req-1", "first request").expect("req-1 dump");
        push(&marker(2));
        let p2 = dump_tagged("req/2:odd id", "second request").expect("req-2 dump");
        assert_ne!(p1, p2, "two requests must get distinct postmortems");
        assert_eq!(p1, dir.join("req-req-1.jsonl"));
        assert_eq!(p2, dir.join("req-req-2-odd-id.jsonl"));

        // The first request's postmortem survives the second's dump.
        let t1 = std::fs::read_to_string(&p1).expect("req-1 readable");
        let t2 = std::fs::read_to_string(&p2).expect("req-2 readable");
        assert!(t1.contains("\"first request\""), "{t1}");
        assert!(t2.contains("\"second request\""), "{t2}");

        disarm();
        if let Some(p) = saved {
            arm(p);
        }
        let _ = std::fs::remove_dir_all(&dir);
        clear();
    }

    #[test]
    fn tag_sanitization_is_filesystem_safe() {
        assert_eq!(sanitize_tag("abc-123_X.y"), "abc-123_X.y");
        assert_eq!(sanitize_tag("../../etc/passwd"), "..-..-etc-passwd");
        assert_eq!(sanitize_tag(""), "request");
        assert!(sanitize_tag(&"x".repeat(200)).len() <= 64);
    }

    #[test]
    fn arm_disarm_roundtrip_and_unarmed_dump_is_noop() {
        let _g = gate();
        assert!(disarm().is_none() || true); // start clean
        assert!(dump("nothing armed").is_none());
        arm("/tmp/somewhere.jsonl");
        assert_eq!(armed(), Some(PathBuf::from("/tmp/somewhere.jsonl")));
        assert_eq!(disarm(), Some(PathBuf::from("/tmp/somewhere.jsonl")));
        assert!(armed().is_none());
    }
}
