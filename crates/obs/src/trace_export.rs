//! Chrome trace-event export: the span stream as a Perfetto flame graph.
//!
//! The JSONL stream (`--metrics-out`) is grep-able but not *look*-able:
//! a 40-stage planning run or a multi-worker serve soak is far easier
//! to understand as a timeline. This module renders the record stream
//! into the Chrome trace-event JSON format — the `{"traceEvents":[...]}`
//! shape that chrome://tracing and <https://ui.perfetto.dev> load
//! directly — wired to the CLI as `--trace-chrome <path>`.
//!
//! Mapping (documented in DESIGN.md "Operational telemetry"):
//!
//! * span open/close → duration-begin/end events (`ph:"B"` / `ph:"E"`),
//!   so nesting renders as a flame graph;
//! * counters and gauges → counter events (`ph:"C"`, one series named
//!   `value`), drawn as step charts above the flames;
//! * events → instant events (`ph:"i"`, thread-scoped);
//! * histogram samples are *not* exported (a Dijkstra-grain sample
//!   stream would dwarf the spans; the rolling view lives in
//!   [`crate::window`] and the final report instead).
//!
//! Records carry a per-thread nesting `depth` but no thread identity,
//! so the exporter reconstructs **execution lanes**: each open event is
//! assigned to the lane whose current stack depth matches the record's
//! depth (a new lane is created when none does — e.g. a pool worker
//! starting its first request), and each close pops the lane whose top
//! matches by name. For the planner's fork/join shape and the daemon's
//! one-request-per-worker shape this recovers the true threads; `pid` is
//! the process (always 1), `tid` is the lane, and request identity
//! travels in span args. Two lanes blocked at identical depth on
//! identically-named spans can swap — a cosmetic, not structural,
//! ambiguity: begin/end balance per lane is preserved by construction,
//! and [`ChromeTrace::finish`] closes any still-open spans at the last
//! timestamp so the artifact is always well-formed
//! (`check_metrics --chrome` enforces exactly that).

use crate::sink::{json_escape, Record, Sink};
use crate::Value;
use std::io::Write as _;

/// The single process id used for all events (one planner process).
const PID: u64 = 1;
/// The lane counters and instants are attached to (lanes are 1-based).
const METRICS_TID: u64 = 0;

/// An incremental trace builder: feed it `(ts, record)` pairs in stream
/// order, then [`finish`](Self::finish) into a JSON string.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    /// Rendered trace-event objects, in emission order.
    events: Vec<String>,
    /// Open-span name stacks, one per reconstructed lane.
    lanes: Vec<Vec<String>>,
    /// Latest timestamp seen; synthetic closes land here.
    last_ts: u64,
}

fn attrs_args(attrs: &[(String, Value)]) -> String {
    attrs
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v.to_json()))
        .collect::<Vec<_>>()
        .join(",")
}

fn event_json(name: &str, ph: char, ts: u64, tid: u64, args: Option<&str>) -> String {
    let mut out = format!(
        "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{PID},\"tid\":{tid}",
        json_escape(name)
    );
    if ph == 'i' {
        out.push_str(",\"s\":\"t\""); // thread-scoped instant
    }
    if let Some(args) = args {
        out.push_str(&format!(",\"args\":{{{args}}}"));
    }
    out.push('}');
    out
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one record from the stream (timestamps in µs).
    pub fn push(&mut self, ts_us: u64, record: &Record) {
        self.last_ts = self.last_ts.max(ts_us);
        match record {
            Record::SpanOpen { name, depth, attrs } => {
                let lane = self.lane_for_open(*depth);
                self.lanes[lane].push(name.clone());
                let args = attrs_args(attrs);
                self.events.push(event_json(
                    name,
                    'B',
                    ts_us,
                    lane as u64 + 1,
                    if args.is_empty() { None } else { Some(&args) },
                ));
            }
            Record::SpanClose {
                name,
                depth,
                mem_live_bytes,
                ..
            } => {
                match self.lane_for_close(name, *depth) {
                    Some(lane) => {
                        self.lanes[lane].pop();
                        self.events
                            .push(event_json(name, 'E', ts_us, lane as u64 + 1, None));
                    }
                    // A close with no matching open (stream truncated by a
                    // ring, say): keep the artifact balanced, mark the spot.
                    None => {
                        self.events.push(event_json(
                            name,
                            'i',
                            ts_us,
                            METRICS_TID,
                            Some("\"unmatched_close\":true"),
                        ));
                    }
                }
                // Span closes double as heap samples: a `ph:"C"` track of
                // live bytes draws the memory profile above the flames.
                // Zero means the allocator counters were off — no track.
                if *mem_live_bytes > 0 {
                    let args = format!("\"value\":{mem_live_bytes}");
                    self.events.push(event_json(
                        "mem.live_bytes",
                        'C',
                        ts_us,
                        METRICS_TID,
                        Some(&args),
                    ));
                }
            }
            Record::Counter { name, total, .. } => {
                let args = format!("\"value\":{total}");
                self.events
                    .push(event_json(name, 'C', ts_us, METRICS_TID, Some(&args)));
            }
            Record::Gauge { name, value } => {
                let args = format!("\"value\":{}", Value::Float(*value).to_json());
                self.events
                    .push(event_json(name, 'C', ts_us, METRICS_TID, Some(&args)));
            }
            // Deliberately skipped: per-sample volume (see module docs).
            Record::Hist { .. } => {}
            Record::Event { name, attrs } => {
                let args = attrs_args(attrs);
                self.events.push(event_json(
                    name,
                    'i',
                    ts_us,
                    METRICS_TID,
                    if args.is_empty() { None } else { Some(&args) },
                ));
            }
        }
    }

    /// Spans currently open across all lanes (0 once balanced).
    pub fn open_spans(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }

    /// Closes any still-open spans at the last timestamp, appends the
    /// process/lane metadata, and renders the complete
    /// `{"traceEvents":[...]}` document.
    pub fn finish(mut self) -> String {
        for lane in 0..self.lanes.len() {
            while let Some(name) = self.lanes[lane].pop() {
                self.events
                    .push(event_json(&name, 'E', self.last_ts, lane as u64 + 1, None));
            }
        }
        let mut meta = vec![event_json(
            "process_name",
            'M',
            0,
            METRICS_TID,
            Some("\"name\":\"lacr\""),
        )];
        meta.push(event_json(
            "thread_name",
            'M',
            0,
            METRICS_TID,
            Some("\"name\":\"metrics\""),
        ));
        for lane in 0..self.lanes.len() {
            let args = format!("\"name\":\"lane-{}\"", lane + 1);
            meta.push(event_json(
                "thread_name",
                'M',
                0,
                lane as u64 + 1,
                Some(&args),
            ));
        }
        meta.extend(self.events);
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
            meta.join(",\n")
        )
    }

    /// The open-side lane for a span at `depth`: the first lane whose
    /// stack is exactly that deep, else a fresh lane.
    fn lane_for_open(&mut self, depth: usize) -> usize {
        if let Some(i) = self.lanes.iter().position(|s| s.len() == depth) {
            return i;
        }
        self.lanes.push(Vec::new());
        self.lanes.len() - 1
    }

    /// The close-side lane: prefer an exact (name, depth) match, fall
    /// back to any lane whose top span has this name.
    fn lane_for_close(&mut self, name: &str, depth: usize) -> Option<usize> {
        self.lanes
            .iter()
            .position(|s| s.len() == depth + 1 && s.last().is_some_and(|n| n == name))
            .or_else(|| {
                self.lanes
                    .iter()
                    .position(|s| s.last().is_some_and(|n| n == name))
            })
    }
}

/// A [`Sink`] that builds a [`ChromeTrace`] from the live record stream
/// and writes the JSON document to a file on flush (the CLI's
/// `--trace-chrome <path>`).
pub struct ChromeTraceSink {
    trace: Option<ChromeTrace>,
    path: String,
}

impl ChromeTraceSink {
    /// A sink that will write the trace document to `path` when the
    /// collector finishes.
    pub fn create(path: &str) -> Self {
        Self {
            trace: Some(ChromeTrace::new()),
            path: path.to_string(),
        }
    }
}

impl Sink for ChromeTraceSink {
    fn record(&mut self, ts_us: u64, record: &Record) {
        if let Some(trace) = self.trace.as_mut() {
            trace.push(ts_us, record);
        }
    }

    fn flush(&mut self) {
        let Some(trace) = self.trace.take() else {
            return; // already written
        };
        let doc = trace.finish();
        let write = || -> std::io::Result<()> {
            if let Some(dir) = std::path::Path::new(&self.path).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            let mut out = std::io::BufWriter::new(std::fs::File::create(&self.path)?);
            out.write_all(doc.as_bytes())?;
            out.flush()
        };
        if let Err(e) = write() {
            eprintln!("[lacr] trace export: cannot write {}: {e}", self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(name: &str, depth: usize) -> Record {
        Record::SpanOpen {
            name: name.into(),
            depth,
            attrs: vec![],
        }
    }

    fn close(name: &str, depth: usize) -> Record {
        Record::SpanClose {
            name: name.into(),
            depth,
            incl_us: 1,
            excl_us: 1,
            mem_self_bytes: 0,
            mem_live_bytes: 0,
            mem_peak_bytes: 0,
            mem_allocs: 0,
        }
    }

    fn count_of(doc: &str, needle: &str) -> usize {
        doc.matches(needle).count()
    }

    #[test]
    fn nested_spans_stay_on_one_lane_with_balanced_begin_end() {
        let mut t = ChromeTrace::new();
        t.push(0, &open("plan", 0));
        t.push(10, &open("lac", 1));
        t.push(20, &close("lac", 1));
        t.push(30, &close("plan", 0));
        assert_eq!(t.open_spans(), 0);
        let doc = t.finish();
        assert_eq!(count_of(&doc, "\"ph\":\"B\""), 2);
        assert_eq!(count_of(&doc, "\"ph\":\"E\""), 2);
        // Both spans on lane 1 — same reconstructed thread.
        assert_eq!(count_of(&doc, "\"tid\":1"), 5); // 4 span events + metadata
        assert!(doc.contains("\"name\":\"lane-1\""));
        assert!(doc.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn interleaved_threads_get_distinct_lanes() {
        let mut t = ChromeTrace::new();
        // Two workers, each running its own top-level request span.
        t.push(0, &open("req.a", 0));
        t.push(1, &open("req.b", 0));
        t.push(2, &open("route", 1)); // nested under whichever lane is at depth 1
        t.push(3, &close("route", 1));
        t.push(4, &close("req.b", 0));
        t.push(5, &close("req.a", 0));
        assert_eq!(t.open_spans(), 0);
        let doc = t.finish();
        assert!(doc.contains("\"name\":\"lane-2\""), "{doc}");
        assert_eq!(
            count_of(&doc, "\"ph\":\"B\""),
            count_of(&doc, "\"ph\":\"E\"")
        );
    }

    #[test]
    fn truncated_streams_still_produce_balanced_documents() {
        let mut t = ChromeTrace::new();
        // Close without open (ring evicted the open record).
        t.push(5, &close("orphan", 0));
        // Open without close (stream cut mid-span).
        t.push(10, &open("unfinished", 0));
        t.push(12, &open("inner", 1));
        assert_eq!(t.open_spans(), 2);
        let doc = t.finish();
        assert!(doc.contains("\"unmatched_close\":true"), "{doc}");
        assert_eq!(
            count_of(&doc, "\"ph\":\"B\""),
            count_of(&doc, "\"ph\":\"E\"")
        );
        // Synthetic closes land at the last timestamp, LIFO order.
        let inner_e = doc
            .find("\"name\":\"inner\",\"ph\":\"E\"")
            .expect("inner closed");
        let outer_e = doc
            .find("\"name\":\"unfinished\",\"ph\":\"E\"")
            .expect("outer closed");
        assert!(inner_e < outer_e, "children close before parents");
    }

    #[test]
    fn counters_gauges_events_map_to_counter_and_instant_events() {
        let mut t = ChromeTrace::new();
        t.push(
            1,
            &Record::Counter {
                name: "pool.completed_total".into(),
                delta: 1,
                total: 7,
            },
        );
        t.push(
            2,
            &Record::Gauge {
                name: "pool.inflight".into(),
                value: 3.0,
            },
        );
        t.push(
            3,
            &Record::Hist {
                name: "noisy".into(),
                value: 42,
            },
        );
        t.push(
            4,
            &Record::Event {
                name: "degradation".into(),
                attrs: vec![("stage".into(), Value::Str("lac".into()))],
            },
        );
        let doc = t.finish();
        assert_eq!(count_of(&doc, "\"ph\":\"C\""), 2);
        assert!(doc.contains("\"args\":{\"value\":7}"));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"stage\":\"lac\""));
        assert!(!doc.contains("noisy"), "hist samples are not exported");
    }

    #[test]
    fn span_closes_synthesize_a_live_bytes_counter_track() {
        let mut t = ChromeTrace::new();
        t.push(0, &open("plan", 0));
        t.push(
            10,
            &Record::SpanClose {
                name: "plan".into(),
                depth: 0,
                incl_us: 10,
                excl_us: 10,
                mem_self_bytes: 2048,
                mem_live_bytes: 1 << 20,
                mem_peak_bytes: 1 << 21,
                mem_allocs: 5,
            },
        );
        let doc = t.finish();
        assert!(
            doc.contains("\"name\":\"mem.live_bytes\",\"ph\":\"C\""),
            "{doc}"
        );
        assert!(doc.contains(&format!("\"args\":{{\"value\":{}}}", 1u64 << 20)));
        // Zero-valued samples (counters off) must not create a track.
        let mut t2 = ChromeTrace::new();
        t2.push(0, &open("plan", 0));
        t2.push(5, &close("plan", 0));
        assert!(!t2.finish().contains("mem.live_bytes"));
    }

    #[test]
    fn attrs_and_names_are_json_escaped() {
        let mut t = ChromeTrace::new();
        t.push(
            0,
            &Record::SpanOpen {
                name: "odd\"name".into(),
                depth: 0,
                attrs: vec![("k\n".into(), Value::Str("v\\".into()))],
            },
        );
        let doc = t.finish();
        assert!(doc.contains("odd\\\"name"));
        assert!(doc.contains("\"k\\n\":\"v\\\\\""));
    }

    #[test]
    fn sink_writes_the_document_on_flush() {
        let path = std::env::temp_dir().join(format!(
            "lacr_trace_unit_{}_{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let path_str = path.to_str().expect("utf8 temp path").to_string();
        let mut sink = ChromeTraceSink::create(&path_str);
        sink.record(0, &open("plan", 0));
        sink.record(9, &close("plan", 0));
        sink.flush();
        sink.flush(); // idempotent: second flush must not truncate
        let text = std::fs::read_to_string(&path).expect("trace written");
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"name\":\"plan\""));
        let _ = std::fs::remove_file(&path);
    }
}
