//! Power-of-two-bucket histograms.
//!
//! Latency and size distributions in the planner span many orders of
//! magnitude (a same-tile route is nanoseconds, a full rip-up pass is
//! milliseconds), so fixed-width buckets waste resolution. A
//! power-of-two histogram keeps one counter per binary order of
//! magnitude: bucket `0` holds the value `0` and bucket `i ≥ 1` holds
//! values in `[2^(i-1), 2^i)`. That is 65 counters for the full `u64`
//! range, constant-time recording, and ~±50% quantile resolution —
//! plenty for ranking stages and spotting regressions.

/// A fixed-size power-of-two-bucket histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index for `value`: `0` for zero, otherwise
    /// `floor(log2(value)) + 1`, so bucket `i` covers `[2^(i-1), 2^i)`.
    pub fn bucket_for(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The half-open value range `[lo, hi)` bucket `i` covers (`hi` is
    /// saturating at `u64::MAX` for the last bucket).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), 1 << i),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_for(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one bucket-by-bucket. Because
    /// buckets are fixed powers of two, merging loses nothing: the
    /// result is exactly the histogram of the union of both sample
    /// streams. The sliding-window aggregator ([`crate::window`]) leans
    /// on this to collapse its ring of per-interval histograms into one
    /// rolling distribution.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(lower_bound, upper_bound, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_range(i);
                (lo, hi, c)
            })
    }

    /// An upper bound on the `q`-quantile (`0.0 ≤ q ≤ 1.0`): the upper
    /// edge of the bucket containing the `ceil(q·count)`-th sample.
    /// Returns 0 when the histogram is empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_range(i).1;
            }
        }
        u64::MAX
    }

    /// Upper bound on the median (see [`Histogram::quantile_upper_bound`]).
    pub fn p50(&self) -> u64 {
        self.quantile_upper_bound(0.50)
    }

    /// Upper bound on the 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile_upper_bound(0.95)
    }

    /// Upper bound on the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile_upper_bound(0.99)
    }

    /// Renders the histogram as a JSON object
    /// (`{"count":..,"sum":..,"max":..,"buckets":[[lo,hi,n],..]}`).
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .map(|(lo, hi, c)| format!("[{lo},{hi},{c}]"))
            .collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.max,
            buckets.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_for(0), 0);
        assert_eq!(Histogram::bucket_for(1), 1);
        assert_eq!(Histogram::bucket_for(2), 2);
        assert_eq!(Histogram::bucket_for(3), 2);
        assert_eq!(Histogram::bucket_for(4), 3);
        assert_eq!(Histogram::bucket_for(7), 3);
        assert_eq!(Histogram::bucket_for(8), 4);
        assert_eq!(Histogram::bucket_for(1023), 10);
        assert_eq!(Histogram::bucket_for(1024), 11);
        assert_eq!(Histogram::bucket_for(u64::MAX), 64);
    }

    #[test]
    fn every_value_falls_inside_its_bucket_range() {
        for v in [0_u64, 1, 2, 3, 5, 64, 65, 4095, 4096, 1 << 40, u64::MAX] {
            let i = Histogram::bucket_for(v);
            let (lo, hi) = Histogram::bucket_range(i);
            assert!(lo <= v, "bucket {i}: {lo} <= {v}");
            // The top bucket's upper bound saturates (inclusive there).
            assert!(v < hi || (i == 64 && v <= hi), "bucket {i}: {v} < {hi}");
        }
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 105);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.0).abs() < 1e-9);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        // value 0 → (0,1); 1,1 → (1,2); 3 → (2,4); 100 → (64,128)
        assert_eq!(buckets, vec![(0, 1, 1), (1, 2, 2), (2, 4, 1), (64, 128, 1)]);
    }

    #[test]
    fn quantile_upper_bounds_bracket_the_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000_u64 {
            h.record(v);
        }
        // Median of 1..=1000 is ~500; its bucket is [256,512) or so:
        // the bound must be >= 500 and within one bucket above.
        let med = h.quantile_upper_bound(0.5);
        assert!(med >= 500, "median bound {med}");
        assert!(med <= 1024, "median bound {med}");
        assert_eq!(h.quantile_upper_bound(1.0), 1024);
        assert_eq!(Histogram::new().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn named_percentiles_are_ordered_and_bracket() {
        let mut h = Histogram::new();
        for v in 1..=1000_u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), h.quantile_upper_bound(0.50));
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        // p95 of 1..=1000 is 950 → bucket [512,1024); p99 is 990 → same.
        assert!(h.p95() >= 950 && h.p95() <= 1024, "p95 {}", h.p95());
        assert!(h.p99() >= 990 && h.p99() <= 1024, "p99 {}", h.p99());
        // A single sample: all percentiles share its bucket bound.
        let mut one = Histogram::new();
        one.record(7);
        assert_eq!(one.p50(), 8);
        assert_eq!(one.p99(), 8);
        // Empty histograms report 0 everywhere.
        let empty = Histogram::new();
        assert_eq!((empty.p50(), empty.p95(), empty.p99()), (0, 0, 0));
    }

    #[test]
    fn merge_is_exactly_the_union_of_sample_streams() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut union = Histogram::new();
        for v in [0_u64, 1, 3, 100] {
            a.record(v);
            union.record(v);
        }
        for v in [2_u64, 100, 5000] {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a, union);
        // Merging an empty histogram is a no-op.
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn json_shape() {
        let mut h = Histogram::new();
        h.record(3);
        assert_eq!(
            h.to_json(),
            "{\"count\":1,\"sum\":3,\"max\":3,\"buckets\":[[2,4,1]]}"
        );
    }
}
