//! Memory observability: the counting global allocator.
//!
//! Time and quality have been first-class telemetry since the first
//! observability PRs; this module makes *bytes* the third measured
//! quantity. A zero-dependency [`CountingAlloc`] wraps
//! [`std::alloc::System`] and maintains, with relaxed atomics:
//!
//! * **live bytes** — currently allocated and not yet freed;
//! * **peak live bytes** — the high-water mark of live bytes (CAS-max);
//! * **alloc / dealloc counts** — monotone event counters.
//!
//! Alongside the process-wide counters, every thread keeps monotone
//! *thread-local* counters (allocated bytes, freed bytes, allocation
//! count). Those are what make attribution possible: a [`ThreadMark`]
//! snapshots them, and the delta between two marks is exactly the
//! allocation activity of *this thread* over that window — immune to
//! concurrent allocation on other threads, which is why per-span and
//! per-scope deltas stay correct in the serve daemon and under
//! `lacr_par::Region` fan-outs (each worker measures its own delta and
//! the caller sums them; see `Region::map_indexed_with`).
//!
//! Cost model: when tracking is disabled ([`set_tracking`]`(false)`, or
//! the `LACR_MEM=off` environment variable via
//! [`init_tracking_from_env`]) every allocator call pays **one relaxed
//! atomic load** and falls through to the system allocator. When
//! enabled (the default) each call adds a handful of relaxed
//! atomic/thread-local increments — well inside the workspace's <2%
//! disabled-instrumentation budget, since the span/scope attribution
//! paths still gate on [`crate::recording`]. Toggling tracking
//! mid-run skews the live counter (frees of blocks allocated while
//! off); the toggle exists for overhead measurement, not steady-state
//! use, and the live counter is clamped at zero rather than allowed to
//! wrap.
//!
//! The allocator is installed by `lacr-obs` itself (`#[global_allocator]`
//! in `lib.rs`), so every binary, test, and bench in the workspace
//! counts the same way without per-crate ceremony.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Live bytes: signed so a mid-run tracking toggle can transiently
/// drive it negative without wrapping to 2^64; reads clamp at zero.
static LIVE: AtomicI64 = AtomicI64::new(0);
/// High-water mark of [`LIVE`] (maintained by a CAS-max loop).
static PEAK: AtomicI64 = AtomicI64::new(0);
/// Monotone count of allocation events (alloc, alloc_zeroed, realloc).
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Monotone count of deallocation events (dealloc, realloc).
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
/// The one-relaxed-load fast-path gate.
static TRACKING: AtomicBool = AtomicBool::new(true);

thread_local! {
    // Const-initialised `Cell`s: no lazy init, no destructor, so these
    // are safe to touch from inside the global allocator even during
    // thread teardown.
    static TL_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static TL_DEALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// The counting wrapper around [`System`]. Installed process-wide by
/// this crate's `#[global_allocator]`.
pub struct CountingAlloc;

#[inline]
fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let _ = TL_ALLOC_BYTES.try_with(|c| c.set(c.get() + size as u64));
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

#[inline]
fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size as i64, Ordering::Relaxed);
    DEALLOCS.fetch_add(1, Ordering::Relaxed);
    let _ = TL_DEALLOC_BYTES.try_with(|c| c.set(c.get() + size as u64));
}

// SAFETY: delegates every operation verbatim to `System`; the counters
// are relaxed atomics and const-init thread-locals, neither of which
// allocates, so there is no reentrancy into the allocator itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && TRACKING.load(Ordering::Relaxed) {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && TRACKING.load(Ordering::Relaxed) {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if TRACKING.load(Ordering::Relaxed) {
            on_dealloc(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && TRACKING.load(Ordering::Relaxed) {
            // One dealloc of the old block plus one alloc of the new:
            // keeps live exact and both event counters monotone.
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// A point-in-time copy of the process-wide allocator counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Bytes currently allocated (clamped at zero).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start.
    pub peak_bytes: u64,
    /// Allocation events since process start (monotone).
    pub allocs: u64,
    /// Deallocation events since process start (monotone).
    pub deallocs: u64,
}

/// Current process-wide counters. `live_bytes` is loaded before
/// `peak_bytes`, so within one snapshot `peak_bytes >= live_bytes`
/// always holds (peak only grows).
pub fn stats() -> MemStats {
    let live = live_bytes();
    let peak = peak_bytes();
    MemStats {
        live_bytes: live,
        peak_bytes: peak.max(live),
        allocs: ALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
    }
}

/// Bytes currently allocated (clamped at zero).
#[inline]
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed).max(0) as u64
}

/// High-water mark of live bytes since process start.
#[inline]
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed).max(0) as u64
}

/// Turns allocator counting on or off at runtime. Off reduces every
/// allocator call to one relaxed load; see the module docs for the
/// accuracy caveat when toggling mid-run.
pub fn set_tracking(on: bool) {
    TRACKING.store(on, Ordering::Relaxed);
}

/// Whether allocator counting is currently on.
#[inline]
pub fn tracking() -> bool {
    TRACKING.load(Ordering::Relaxed)
}

/// Applies the `LACR_MEM` environment variable (`0` / `off` disables
/// counting). Called from the CLI / bench observability installers —
/// the allocator itself never reads the environment (reading it
/// allocates, which would recurse).
pub fn init_tracking_from_env() {
    if std::env::var("LACR_MEM").is_ok_and(|v| v == "0" || v == "off") {
        set_tracking(false);
    }
}

/// A snapshot of the *current thread's* monotone allocation counters.
/// The difference between two marks on the same thread is exactly that
/// thread's allocation activity in between.
#[derive(Debug, Clone, Copy)]
pub struct ThreadMark {
    alloc_bytes: u64,
    dealloc_bytes: u64,
    allocs: u64,
}

/// Allocation activity between a [`ThreadMark`] and now (or between two
/// marks), on one thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemDelta {
    /// Bytes allocated in the window (gross, monotone).
    pub alloc_bytes: u64,
    /// Bytes freed in the window (gross, monotone).
    pub dealloc_bytes: u64,
    /// Allocation events in the window.
    pub allocs: u64,
}

impl MemDelta {
    /// Net bytes: allocated minus freed (negative when the window freed
    /// more than it allocated).
    pub fn net_bytes(&self) -> i64 {
        self.alloc_bytes as i64 - self.dealloc_bytes as i64
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &MemDelta) {
        self.alloc_bytes += other.alloc_bytes;
        self.dealloc_bytes += other.dealloc_bytes;
        self.allocs += other.allocs;
    }

    /// Component-wise saturating difference (used for child exclusion:
    /// `self - children` on the same thread's monotone counters).
    pub fn saturating_sub(&self, other: &MemDelta) -> MemDelta {
        MemDelta {
            alloc_bytes: self.alloc_bytes.saturating_sub(other.alloc_bytes),
            dealloc_bytes: self.dealloc_bytes.saturating_sub(other.dealloc_bytes),
            allocs: self.allocs.saturating_sub(other.allocs),
        }
    }
}

/// Snapshots the current thread's counters.
pub fn thread_mark() -> ThreadMark {
    ThreadMark {
        alloc_bytes: TL_ALLOC_BYTES.with(Cell::get),
        dealloc_bytes: TL_DEALLOC_BYTES.with(Cell::get),
        allocs: TL_ALLOCS.with(Cell::get),
    }
}

impl ThreadMark {
    /// The thread's allocation activity since this mark.
    pub fn delta(&self) -> MemDelta {
        let now = thread_mark();
        MemDelta {
            alloc_bytes: now.alloc_bytes.saturating_sub(self.alloc_bytes),
            dealloc_bytes: now.dealloc_bytes.saturating_sub(self.dealloc_bytes),
            allocs: now.allocs.saturating_sub(self.allocs),
        }
    }
}

/// Credits allocation done on *other* threads (a parallel region's
/// workers) to the innermost open span on the current thread, so stage
/// spans that fan out via `lacr_par::Region` still account their
/// workers' bytes. No-op when no span is open.
pub fn credit_foreign(delta: &MemDelta) {
    crate::credit_span_foreign(delta);
}

/// The process peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where that interface is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_kb("VmHWM:").map(|kb| kb * 1024)
}

#[cfg(target_os = "linux")]
fn proc_status_kb(key: &str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok();
        }
    }
    None
}

#[cfg(not(target_os = "linux"))]
fn proc_status_kb(_key: &str) -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_counters_observe_a_forced_allocation() {
        let before = stats();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        let mid = stats();
        assert!(
            mid.allocs > before.allocs,
            "allocs must tick: {before:?} -> {mid:?}"
        );
        assert!(mid.peak_bytes >= mid.live_bytes.min(1 << 16));
        drop(v);
        let after = stats();
        assert!(after.deallocs > mid.deallocs.saturating_sub(1));
        // Peak never decreases.
        assert!(after.peak_bytes >= mid.peak_bytes);
    }

    #[test]
    fn peak_is_at_least_live_in_every_snapshot() {
        for i in 0..64 {
            let _v: Vec<u8> = Vec::with_capacity(1024 * (i + 1));
            let s = stats();
            assert!(
                s.peak_bytes >= s.live_bytes,
                "peak {} < live {}",
                s.peak_bytes,
                s.live_bytes
            );
        }
    }

    #[test]
    fn thread_deltas_track_this_thread_exactly() {
        let mark = thread_mark();
        let size = 1 << 14;
        let v: Vec<u8> = Vec::with_capacity(size);
        let d = mark.delta();
        assert!(d.allocs >= 1, "at least the Vec's allocation: {d:?}");
        assert!(d.alloc_bytes >= size as u64, "{d:?}");
        drop(v);
        let d2 = mark.delta();
        assert!(d2.dealloc_bytes >= size as u64, "{d2:?}");
        assert!(d2.net_bytes() < d.net_bytes());
    }

    #[test]
    fn thread_deltas_ignore_other_threads() {
        let mark = thread_mark();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _big: Vec<u8> = Vec::with_capacity(1 << 20);
            });
        });
        let d = mark.delta();
        // The spawned thread's megabyte is invisible to this thread's
        // counters (scope/join bookkeeping allocates far less).
        assert!(d.alloc_bytes < 1 << 20, "{d:?}");
    }

    #[test]
    fn tracking_toggle_freezes_the_event_counters() {
        // Serialized against nothing: other test threads may allocate
        // while tracking is off, so only this thread's counters are
        // asserted frozen.
        let _v0: Vec<u8> = Vec::with_capacity(64); // warm TLS
        set_tracking(false);
        let tl_before = thread_mark();
        let _v: Vec<u8> = Vec::with_capacity(1 << 12);
        let d = tl_before.delta();
        set_tracking(true);
        assert_eq!(d.allocs, 0, "thread counter ticked while off: {d:?}");
        assert_eq!(d.alloc_bytes, 0);
    }

    #[test]
    fn mem_delta_arithmetic() {
        let mut a = MemDelta {
            alloc_bytes: 100,
            dealloc_bytes: 30,
            allocs: 5,
        };
        assert_eq!(a.net_bytes(), 70);
        a.add(&MemDelta {
            alloc_bytes: 10,
            dealloc_bytes: 50,
            allocs: 1,
        });
        assert_eq!(a.net_bytes(), 30);
        let sub = a.saturating_sub(&MemDelta {
            alloc_bytes: 200,
            dealloc_bytes: 10,
            allocs: 2,
        });
        assert_eq!(sub.alloc_bytes, 0);
        assert_eq!(sub.dealloc_bytes, 70);
        assert_eq!(sub.allocs, 4);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_readable_and_plausible() {
        let rss = peak_rss_bytes().expect("VmHWM readable on Linux");
        // A running test binary holds at least a megabyte.
        assert!(rss > 1 << 20, "implausible peak RSS {rss}");
    }
}
