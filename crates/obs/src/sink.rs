//! Pluggable record sinks: where span/metric/event records go.
//!
//! The collector aggregates regardless of sink; the sink decides what
//! to do with the *stream* of records: drop them ([`NullSink`] — the
//! cheapest mode, aggregation only), pretty-print to stderr
//! ([`StderrSink`], the CLI's `--trace`), write one JSON object per
//! line ([`JsonlSink`], the CLI's `--metrics-out`), or keep them in
//! memory for assertions ([`CaptureSink`]).

use crate::{Report, Value};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// One observation forwarded to the sink, timestamped in microseconds
/// since the collector was installed.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A span opened.
    SpanOpen {
        /// Span name.
        name: String,
        /// Nesting depth on the opening thread (0 = top level).
        depth: usize,
        /// Attributes captured at open.
        attrs: Vec<(String, Value)>,
    },
    /// A span closed.
    SpanClose {
        /// Span name.
        name: String,
        /// Nesting depth on the closing thread.
        depth: usize,
        /// Inclusive wall-clock microseconds.
        incl_us: u64,
        /// Exclusive (inclusive minus children) microseconds.
        excl_us: u64,
        /// Net bytes retained by this span exclusive of children
        /// (negative when the span frees more than it allocates).
        mem_self_bytes: i64,
        /// Process-wide live heap bytes at close.
        mem_live_bytes: u64,
        /// Process-wide peak live heap bytes at close (≥ live).
        mem_peak_bytes: u64,
        /// Allocation count attributed to this span (exclusive).
        mem_allocs: u64,
    },
    /// A counter was incremented.
    Counter {
        /// Counter name.
        name: String,
        /// The increment.
        delta: i64,
        /// The running total after the increment.
        total: i64,
    },
    /// A gauge was set.
    Gauge {
        /// Gauge name.
        name: String,
        /// The new value.
        value: f64,
    },
    /// A histogram sample was recorded.
    Hist {
        /// Histogram name.
        name: String,
        /// The sample.
        value: u64,
    },
    /// A point-in-time structured event.
    Event {
        /// Event name.
        name: String,
        /// Event attributes.
        attrs: Vec<(String, Value)>,
    },
}

impl Record {
    /// Renders the record as one JSON object (the JSONL line body),
    /// with `us` carrying the supplied timestamp.
    pub fn to_json(&self, ts_us: u64) -> String {
        let attrs_json = |attrs: &[(String, Value)]| -> String {
            attrs
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v.to_json()))
                .collect::<Vec<_>>()
                .join(",")
        };
        match self {
            Record::SpanOpen { name, depth, attrs } => {
                let a = attrs_json(attrs);
                format!(
                    "{{\"t\":\"span_open\",\"us\":{ts_us},\"name\":\"{}\",\"depth\":{depth},\"attrs\":{{{a}}}}}",
                    json_escape(name)
                )
            }
            Record::SpanClose {
                name,
                depth,
                incl_us,
                excl_us,
                mem_self_bytes,
                mem_live_bytes,
                mem_peak_bytes,
                mem_allocs,
            } => format!(
                "{{\"t\":\"span_close\",\"us\":{ts_us},\"name\":\"{}\",\"depth\":{depth},\"incl_us\":{incl_us},\"excl_us\":{excl_us},\"mem.self_bytes\":{mem_self_bytes},\"mem.live_bytes\":{mem_live_bytes},\"mem.peak_bytes\":{mem_peak_bytes},\"mem.allocs\":{mem_allocs}}}",
                json_escape(name)
            ),
            Record::Counter { name, delta, total } => format!(
                "{{\"t\":\"counter\",\"us\":{ts_us},\"name\":\"{}\",\"delta\":{delta},\"total\":{total}}}",
                json_escape(name)
            ),
            Record::Gauge { name, value } => {
                let v = Value::Float(*value).to_json();
                format!(
                    "{{\"t\":\"gauge\",\"us\":{ts_us},\"name\":\"{}\",\"value\":{v}}}",
                    json_escape(name)
                )
            }
            Record::Hist { name, value } => format!(
                "{{\"t\":\"hist\",\"us\":{ts_us},\"name\":\"{}\",\"value\":{value}}}",
                json_escape(name)
            ),
            Record::Event { name, attrs } => {
                let a = attrs_json(attrs);
                format!(
                    "{{\"t\":\"event\",\"us\":{ts_us},\"name\":\"{}\",\"attrs\":{{{a}}}}}",
                    json_escape(name)
                )
            }
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal: quotes,
/// backslashes, and all control characters below U+0020.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Where the record stream goes.
pub trait Sink {
    /// Consumes one record (timestamp in µs since collector install).
    fn record(&mut self, ts_us: u64, record: &Record);
    /// Consumes the final aggregate report (called once on
    /// [`crate::finish`]).
    fn summary(&mut self, _report: &Report) {}
    /// Flushes any buffered output.
    fn flush(&mut self) {}
}

/// Drops every record; aggregation still happens in the collector.
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _ts_us: u64, _record: &Record) {}
}

/// Pretty-prints the record stream to stderr (the CLI's `--trace`):
/// spans indent with nesting depth, everything is `[lacr]`-prefixed.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn record(&mut self, ts_us: u64, record: &Record) {
        let ms = ts_us as f64 / 1000.0;
        match record {
            Record::SpanOpen { name, depth, attrs } => {
                let pad = "  ".repeat(*depth);
                let mut line = format!("[lacr] {ms:9.3}ms {pad}> {name}");
                for (k, v) in attrs {
                    line.push_str(&format!(" {k}={v}"));
                }
                eprintln!("{line}");
            }
            Record::SpanClose {
                name,
                depth,
                incl_us,
                excl_us,
                mem_self_bytes,
                ..
            } => {
                let pad = "  ".repeat(*depth);
                eprintln!(
                    "[lacr] {ms:9.3}ms {pad}< {name} {:.3}ms (excl {:.3}ms, mem {})",
                    *incl_us as f64 / 1000.0,
                    *excl_us as f64 / 1000.0,
                    crate::report::fmt_bytes_signed(*mem_self_bytes)
                );
            }
            Record::Counter { name, delta, total } => {
                eprintln!("[lacr] {ms:9.3}ms   {name} {delta:+} = {total}");
            }
            Record::Gauge { name, value } => {
                eprintln!("[lacr] {ms:9.3}ms   {name} = {value}");
            }
            Record::Hist { name, value } => {
                eprintln!("[lacr] {ms:9.3}ms   {name} ~ {value}");
            }
            Record::Event { name, attrs } => {
                let mut line = format!("[lacr] {ms:9.3}ms   ! {name}");
                for (k, v) in attrs {
                    line.push_str(&format!(" {k}={v}"));
                }
                eprintln!("{line}");
            }
        }
    }

    fn summary(&mut self, report: &Report) {
        eprintln!("{}", report.self_time_table());
    }
}

/// Writes one JSON object per line (the CLI's `--metrics-out`); the
/// summary aggregate goes out as a final `{"t":"summary",...}` line.
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
}

impl JsonlSink {
    /// Wraps an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self { out }
    }

    /// Opens (and truncates) `path` as a buffered JSONL stream.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(file))))
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, ts_us: u64, record: &Record) {
        let _ = writeln!(self.out, "{}", record.to_json(ts_us));
    }

    fn summary(&mut self, report: &Report) {
        let _ = writeln!(
            self.out,
            "{{\"t\":\"summary\",\"schema_version\":{},{}}}",
            crate::SCHEMA_VERSION,
            report.json_fields()
        );
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Fans the record stream out to several sinks (the CLI combines
/// `--metrics-out`, `--trace`, and `--trace-chrome` this way: one
/// collector, every requested view).
pub struct TeeSink {
    sinks: Vec<Box<dyn Sink + Send>>,
}

impl TeeSink {
    /// Wraps the given sinks; each receives every record, summary, and
    /// flush in construction order.
    pub fn new(sinks: Vec<Box<dyn Sink + Send>>) -> Self {
        Self { sinks }
    }
}

impl Sink for TeeSink {
    fn record(&mut self, ts_us: u64, record: &Record) {
        for s in &mut self.sinks {
            s.record(ts_us, record);
        }
    }

    fn summary(&mut self, report: &Report) {
        for s in &mut self.sinks {
            s.summary(report);
        }
    }

    fn flush(&mut self) {
        for s in &mut self.sinks {
            s.flush();
        }
    }
}

/// Buffers records in memory for test assertions; the store survives
/// the sink (the collector owns the sink, so tests hold the [`Arc`]).
#[derive(Debug)]
pub struct CaptureSink {
    store: Arc<Mutex<Vec<(u64, Record)>>>,
}

impl CaptureSink {
    /// Creates a capture sink and the shared store it appends to.
    #[allow(clippy::type_complexity)]
    pub fn new() -> (Self, Arc<Mutex<Vec<(u64, Record)>>>) {
        let store = Arc::new(Mutex::new(Vec::new()));
        (
            Self {
                store: Arc::clone(&store),
            },
            store,
        )
    }
}

impl Sink for CaptureSink {
    fn record(&mut self, ts_us: u64, record: &Record) {
        self.store
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((ts_us, record.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("naïve — ok"), "naïve — ok");
    }

    #[test]
    fn jsonl_lines_are_valid_objects() {
        let rec = Record::Event {
            name: "deg\"radation".into(),
            attrs: vec![
                ("stage".into(), Value::Str("lac".into())),
                ("n".into(), Value::Int(-2)),
                ("ok".into(), Value::Bool(false)),
            ],
        };
        assert_eq!(
            rec.to_json(17),
            "{\"t\":\"event\",\"us\":17,\"name\":\"deg\\\"radation\",\
             \"attrs\":{\"stage\":\"lac\",\"n\":-2,\"ok\":false}}"
        );
        let open = Record::SpanOpen {
            name: "plan".into(),
            depth: 0,
            attrs: vec![],
        };
        assert_eq!(
            open.to_json(0),
            "{\"t\":\"span_open\",\"us\":0,\"name\":\"plan\",\"depth\":0,\"attrs\":{}}"
        );
        let close = Record::SpanClose {
            name: "plan".into(),
            depth: 0,
            incl_us: 120,
            excl_us: 20,
            mem_self_bytes: -64,
            mem_live_bytes: 4096,
            mem_peak_bytes: 8192,
            mem_allocs: 3,
        };
        assert_eq!(
            close.to_json(120),
            "{\"t\":\"span_close\",\"us\":120,\"name\":\"plan\",\"depth\":0,\
             \"incl_us\":120,\"excl_us\":20,\"mem.self_bytes\":-64,\
             \"mem.live_bytes\":4096,\"mem.peak_bytes\":8192,\"mem.allocs\":3}"
        );
    }

    #[test]
    fn tee_sink_fans_out_to_every_branch() {
        let (a, store_a) = CaptureSink::new();
        let (b, store_b) = CaptureSink::new();
        let mut tee = TeeSink::new(vec![Box::new(a), Box::new(b)]);
        tee.record(
            5,
            &Record::Hist {
                name: "h".into(),
                value: 9,
            },
        );
        tee.flush();
        for store in [store_a, store_b] {
            let got = store.lock().unwrap();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].0, 5);
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut sink = JsonlSink::new(Box::new(Shared(Arc::clone(&buf))));
        sink.record(
            1,
            &Record::Counter {
                name: "c".into(),
                delta: 1,
                total: 1,
            },
        );
        sink.record(
            2,
            &Record::Gauge {
                name: "g".into(),
                value: 0.5,
            },
        );
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t\":\"counter\""));
        assert!(lines[1].contains("\"value\":0.5"));
    }
}
