//! Sliding-window aggregation for live telemetry.
//!
//! The collector's [`Histogram`]s are cumulative: perfect for a
//! post-run report, useless for an operator asking "what is the p95
//! *right now*?" — after an hour of uptime a latency spike drowns in
//! the accumulated history. This module adds the rolling view without
//! unbounded growth: a [`SlidingWindow`] is a ring of `n` fixed time
//! buckets, each a power-of-two [`Histogram`] covering one
//! `bucket_us`-wide interval. Recording touches exactly one bucket;
//! advancing time recycles expired buckets in place. Memory is
//! `n × sizeof(Histogram)` forever, regardless of traffic.
//!
//! A [`snapshot`](SlidingWindow::snapshot) merges the live buckets
//! (bucket merge is lossless — see [`Histogram::merge`]) into one
//! distribution and derives rolling p50/p95/p99 upper bounds, mean,
//! max, and an event rate over the window span. Quantile semantics are
//! inherited from [`Histogram::quantile_upper_bound`]: upper edges of
//! power-of-two buckets, so ~±50% resolution — the right tool for
//! "did p99 jump an order of magnitude", not for SLO arithmetic.
//!
//! Window edges are jumpy by construction: when the oldest bucket
//! expires, all its samples leave the window at once. With 12 buckets
//! the step is ≤1/12 of the window — smooth enough for a stats line.
//!
//! Concurrency: one short [`Mutex`] around the ring. Recording is a
//! lock, one histogram increment, and at most `n` bucket resets after
//! an idle gap — cheap at request granularity (the pool records two
//! samples per job). The wall-clock methods ([`record`], [`snapshot`])
//! read a monotonic epoch owned by the window; the `*_at` variants take
//! explicit microsecond timestamps so tests and replay tools are fully
//! deterministic.
//!
//! [`record`]: SlidingWindow::record
//! [`snapshot`]: SlidingWindow::snapshot

use crate::hist::Histogram;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A rolling histogram over the last `buckets × bucket_width` of time.
/// See the module docs for the ring/merge design.
#[derive(Debug)]
pub struct SlidingWindow {
    bucket_us: u64,
    epoch: Instant,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    /// Ring of per-interval histograms; slot `tick % len` holds `tick`.
    ring: Vec<Histogram>,
    /// The newest tick currently materialized in the ring.
    head_tick: u64,
}

/// One merged view of a [`SlidingWindow`]: the rolling distribution at
/// the moment of the snapshot. Quantiles are bucket upper bounds
/// (see [`Histogram::quantile_upper_bound`]); all zeros when no samples
/// are in the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSnapshot {
    /// The window span in microseconds (`buckets × bucket_width`).
    pub window_us: u64,
    /// Samples currently inside the window.
    pub count: u64,
    /// `count` per second of window span — the rolling event rate.
    pub rate_per_sec: f64,
    /// Mean of the samples in the window (0.0 when empty).
    pub mean: f64,
    /// Largest sample in the window.
    pub max: u64,
    /// Rolling median upper bound.
    pub p50: u64,
    /// Rolling 95th-percentile upper bound.
    pub p95: u64,
    /// Rolling 99th-percentile upper bound.
    pub p99: u64,
}

impl SlidingWindow {
    /// A window of `buckets` intervals of `bucket_width` each (both
    /// clamped to at least 1 bucket / 1µs). The pool's default is
    /// 12 × 5s = a one-minute rolling view.
    pub fn new(buckets: usize, bucket_width: Duration) -> Self {
        let n = buckets.max(1);
        Self {
            bucket_us: (bucket_width.as_micros() as u64).max(1),
            epoch: Instant::now(),
            inner: Mutex::new(Inner {
                ring: vec![Histogram::new(); n],
                head_tick: 0,
            }),
        }
    }

    /// The window span in microseconds.
    pub fn window_us(&self) -> u64 {
        self.bucket_us * self.lock().ring.len() as u64
    }

    /// Records `value` at the current wall-clock position.
    pub fn record(&self, value: u64) {
        self.record_at(self.now_us(), value);
    }

    /// Records `value` as if observed `now_us` microseconds after the
    /// window's epoch (deterministic variant for tests and replay).
    /// Timestamps earlier than the newest seen tick land in the newest
    /// bucket — time never rewinds, late samples are not dropped.
    pub fn record_at(&self, now_us: u64, value: u64) {
        let mut inner = self.lock();
        self.advance(&mut inner, now_us);
        let slot = (inner.head_tick % inner.ring.len() as u64) as usize;
        inner.ring[slot].record(value);
    }

    /// The rolling view at the current wall-clock position.
    pub fn snapshot(&self) -> WindowSnapshot {
        self.snapshot_at(self.now_us())
    }

    /// The rolling view at an explicit timestamp (see
    /// [`record_at`](Self::record_at) for the clock semantics).
    pub fn snapshot_at(&self, now_us: u64) -> WindowSnapshot {
        let mut inner = self.lock();
        self.advance(&mut inner, now_us);
        let mut merged = Histogram::new();
        for h in &inner.ring {
            merged.merge(h);
        }
        let window_us = self.bucket_us * inner.ring.len() as u64;
        drop(inner);
        let window_secs = window_us as f64 / 1e6;
        WindowSnapshot {
            window_us,
            count: merged.count(),
            rate_per_sec: merged.count() as f64 / window_secs,
            mean: merged.mean(),
            max: merged.max(),
            p50: merged.p50(),
            p95: merged.p95(),
            p99: merged.p99(),
        }
    }

    /// Microseconds since this window's construction (its epoch).
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Rotates the ring forward to the bucket containing `now_us`,
    /// resetting every interval skipped over. An idle gap longer than
    /// the whole window costs at most `ring.len()` resets.
    fn advance(&self, inner: &mut Inner, now_us: u64) {
        let tick = now_us / self.bucket_us;
        if tick <= inner.head_tick {
            return;
        }
        let n = inner.ring.len() as u64;
        let first_stale = (inner.head_tick + 1).max(tick.saturating_sub(n - 1));
        for t in first_stale..=tick {
            let slot = (t % n) as usize;
            inner.ring[slot] = Histogram::new();
        }
        inner.head_tick = tick;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 buckets × 1000µs: a 4ms window with obvious edges.
    fn window() -> SlidingWindow {
        SlidingWindow::new(4, Duration::from_micros(1000))
    }

    #[test]
    fn empty_window_is_all_zeros() {
        let s = window().snapshot_at(0);
        assert_eq!(s.count, 0);
        assert_eq!((s.p50, s.p95, s.p99, s.max), (0, 0, 0, 0));
        assert_eq!(s.rate_per_sec, 0.0);
        assert_eq!(s.window_us, 4000);
    }

    #[test]
    fn samples_inside_the_window_are_aggregated() {
        let w = window();
        w.record_at(100, 10);
        w.record_at(1100, 20);
        w.record_at(2100, 40);
        let s = w.snapshot_at(2200);
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 40);
        assert!((s.mean - 70.0 / 3.0).abs() < 1e-9);
        // 3 samples over a 4ms window = 750/s.
        assert!((s.rate_per_sec - 750.0).abs() < 1e-9);
    }

    #[test]
    fn old_buckets_expire_as_time_advances() {
        let w = window();
        w.record_at(100, 1); // tick 0
        w.record_at(1100, 2); // tick 1
        assert_eq!(w.snapshot_at(1200).count, 2);
        // Tick 4 recycles tick 0's slot: the first sample leaves.
        assert_eq!(w.snapshot_at(4100).count, 1);
        // Tick 5 recycles tick 1's slot: the window is empty.
        assert_eq!(w.snapshot_at(5100).count, 0);
    }

    #[test]
    fn idle_gap_longer_than_the_window_clears_everything() {
        let w = window();
        for t in 0..4u64 {
            w.record_at(t * 1000 + 1, 7);
        }
        assert_eq!(w.snapshot_at(3500).count, 4);
        // A gap of many windows: everything expired, nothing stale
        // leaks back in via ring-slot aliasing.
        let s = w.snapshot_at(1_000_000);
        assert_eq!(s.count, 0);
        w.record_at(1_000_100, 9);
        assert_eq!(w.snapshot_at(1_000_200).count, 1);
    }

    #[test]
    fn quantiles_are_ordered_and_track_the_window() {
        let w = SlidingWindow::new(8, Duration::from_micros(1000));
        // Old regime: fast (values ~8) in ticks 0..4.
        for i in 0..100u64 {
            w.record_at(i * 40, 8);
        }
        // New regime: slow (values ~4096) in ticks 4..8.
        for i in 0..100u64 {
            w.record_at(4000 + i * 40, 4096);
        }
        let mixed = w.snapshot_at(7900);
        assert!(mixed.p50 <= mixed.p95 && mixed.p95 <= mixed.p99);
        assert_eq!(mixed.count, 200);
        // Advance until the fast regime has fully expired: the rolling
        // median jumps to the slow regime, which a cumulative histogram
        // would still average away.
        let later = w.snapshot_at(11_900);
        assert_eq!(later.count, 100);
        assert!(later.p50 > 4096 / 2, "rolling p50 {}", later.p50);
    }

    #[test]
    fn late_samples_never_rewind_time() {
        let w = window();
        w.record_at(2100, 5); // tick 2
        w.record_at(100, 6); // stale timestamp: lands in tick 2
        assert_eq!(w.snapshot_at(2200).count, 2);
        // Both expire together when tick 2's slot recycles.
        assert_eq!(w.snapshot_at(7000).count, 0);
    }

    #[test]
    fn wall_clock_path_records_and_snapshots() {
        let w = SlidingWindow::new(4, Duration::from_secs(5));
        w.record(123);
        w.record(456);
        let s = w.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 456);
        assert_eq!(s.window_us, 20_000_000);
    }
}
