//! Zero-dependency observability for the whole planning pipeline.
//!
//! The planner is a stack of iterative searches — annealer moves, rip-up
//! routing passes, min-cost-flow augmentations, LAC re-weight rounds —
//! and tuning any of them needs to see where wall-clock goes and how
//! many iterations each stage burns. This crate provides that without
//! pulling in `tracing`/`metrics`/`serde`: like [`lacr-prng`], it is
//! dependency-free by design so the workspace stays hermetic.
//!
//! Four pieces live here:
//!
//! * **Spans** — [`span!`] opens an RAII-timed region
//!   (`let _g = span!("lac.round", round = r);`). Nested spans track
//!   *exclusive* time (inclusive minus time spent in child spans) via a
//!   thread-local stack, so a self-time profile falls out of the
//!   aggregates.
//! * **Metrics** — [`counter!`] (monotonic sums), [`gauge!`] (last
//!   value wins) and [`histogram!`] (power-of-two buckets, see
//!   [`Histogram`]).
//! * **Sinks** — every span open/close, counter update and event is
//!   forwarded to a pluggable [`Sink`]: [`NullSink`] (aggregation
//!   only), [`StderrSink`] (`--trace` pretty-printer), [`JsonlSink`]
//!   (`--metrics-out` machine-readable stream) or [`CaptureSink`]
//!   (tests).
//! * **Diagnostics** — [`diag!`] replaces ad-hoc `eprintln!` progress
//!   messages: uniformly `[lacr]`-prefixed, and silenced wholesale by
//!   [`set_diag_level`]`(DiagLevel::Silent)` (the CLI's `--quiet`).
//! * **Flight recorder** — [`flight`] keeps a bounded, always-on ring
//!   of recent records (every diag line and event, plus the full record
//!   stream when a collector is installed) and dumps it as a JSONL
//!   postmortem on panic, degraded exit, or budget expiry.
//!
//! The tracer is *globally* installed ([`init`] / [`finish`]) and
//! thread-safe (one mutexed collector). When no sink is installed the
//! span/counter/gauge/histogram macros reduce to a single relaxed
//! atomic load, so instrumentation left in hot loops costs nothing in
//! normal runs; [`event!`] and [`diag!`] additionally feed the flight
//! recorder (events are rare by contract — round results, degradations,
//! budget expiry — never per-iteration).

pub mod flight;
pub mod hist;
pub mod mem;
pub mod report;
pub mod scope;
pub mod sink;
pub mod trace_export;
pub mod window;

pub use hist::Histogram;
pub use mem::{MemDelta, MemStats};
pub use report::{Report, SpanStat};
pub use sink::{json_escape, CaptureSink, JsonlSink, NullSink, Record, Sink, StderrSink, TeeSink};
pub use trace_export::{ChromeTrace, ChromeTraceSink};
pub use window::{SlidingWindow, WindowSnapshot};

/// The counting allocator ([`mem`]) is installed here, in the crate
/// every workspace binary links, so live/peak/alloc counters and
/// per-thread attribution deltas are available everywhere without
/// per-binary ceremony.
#[global_allocator]
static GLOBAL_ALLOC: mem::CountingAlloc = mem::CountingAlloc;

/// Version stamped into every machine-readable artifact this workspace
/// emits — the JSONL summary line, `BENCH_*.json` / `RUN_*.json` perf
/// records, and flight-recorder postmortems. Consumers (`check_metrics`,
/// `bench_compare`) reject artifacts without it.
///
/// History: 1 = original span/quality schema; 2 = memory observability
/// (span records carry `mem.*` fields, reports/artifacts carry `mem`
/// blocks). Consumers accept artifacts at or below their own version,
/// so version-1 baselines stay comparable.
pub const SCHEMA_VERSION: u32 = 2;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// A typed attribute value attached to spans and events.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    Uint(u64),
    /// Floating point.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Uint(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl Value {
    /// Renders the value as a JSON fragment (numbers and booleans bare,
    /// strings escaped and quoted; non-finite floats become `null`).
    pub fn to_json(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Uint(v) => v.to_string(),
            Value::Float(v) if v.is_finite() => v.to_string(),
            Value::Float(_) => "null".to_string(),
            Value::Bool(v) => v.to_string(),
            Value::Str(v) => format!("\"{}\"", json_escape(v)),
        }
    }
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Self { Value::$variant(v as $conv) }
        })*
    };
}
value_from!(
    i32 => Int as i64,
    i64 => Int as i64,
    u32 => Uint as u64,
    u64 => Uint as u64,
    usize => Uint as u64,
    f32 => Float as f64,
    f64 => Float as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

// ---------------------------------------------------------------------
// Global collector
// ---------------------------------------------------------------------

/// Fast-path flag: `true` iff a collector is installed. Every macro
/// checks this first, so disabled instrumentation costs one relaxed
/// atomic load.
static ENABLED: AtomicBool = AtomicBool::new(false);

struct Collector {
    sink: Box<dyn Sink + Send>,
    start: Instant,
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, i64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl Collector {
    fn new(sink: Box<dyn Sink + Send>) -> Self {
        Self {
            sink,
            start: Instant::now(),
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    fn ts_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn snapshot(&self) -> Report {
        Report::build(&self.spans, &self.counters, &self.gauges, &self.hists)
    }

    fn clear(&mut self) {
        self.spans.clear();
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
    }
}

fn cell() -> &'static Mutex<Option<Collector>> {
    static CELL: OnceLock<Mutex<Option<Collector>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(None))
}

fn lock() -> MutexGuard<'static, Option<Collector>> {
    // A panic while holding the lock must not wedge every later run.
    cell().lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether a collector is installed. The macros check this before
/// evaluating any attribute expressions.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether anything is recording right now: the global collector
/// ([`is_enabled`]) or a per-request [`scope`] attached to the current
/// thread. This is the macros' gate, so instrumentation fires for a
/// scoped request even when the process-wide collector is off (the
/// serve daemon's default), at the cost of one extra thread-local read
/// on the disabled fast path.
#[inline]
pub fn recording() -> bool {
    is_enabled() || scope::active()
}

/// Installs `sink` as the global collector and enables the macros.
/// Replaces (and finishes) any previously installed collector.
pub fn init(sink: Box<dyn Sink + Send>) {
    let mut guard = lock();
    if let Some(mut old) = guard.take() {
        let report = old.snapshot();
        old.sink.summary(&report);
        old.sink.flush();
    }
    *guard = Some(Collector::new(sink));
    ENABLED.store(true, Ordering::Relaxed);
}

/// Uninstalls the collector: emits the summary record to the sink,
/// flushes it, and returns the aggregated [`Report`] (`None` if no
/// collector was installed).
pub fn finish() -> Option<Report> {
    let mut guard = lock();
    ENABLED.store(false, Ordering::Relaxed);
    let mut collector = guard.take()?;
    let report = collector.snapshot();
    collector.sink.summary(&report);
    collector.sink.flush();
    Some(report)
}

/// Clones the current aggregates without uninstalling the collector.
pub fn snapshot() -> Option<Report> {
    lock().as_ref().map(Collector::snapshot)
}

/// Returns the current aggregates and resets them to zero, keeping the
/// sink installed. Bench drivers use this to carve per-circuit records
/// out of one long-lived collector.
pub fn take_snapshot() -> Option<Report> {
    let mut guard = lock();
    let collector = guard.as_mut()?;
    let report = collector.snapshot();
    collector.clear();
    Some(report)
}

/// Adds `delta` to the named counter (and forwards the update to the
/// sink). Prefer the [`counter!`] macro, which short-circuits when
/// disabled.
pub fn add_counter(name: &str, delta: i64) {
    scope::record_counter(name, delta);
    let mut total = delta;
    let recorded_globally = {
        let mut guard = lock();
        if let Some(c) = guard.as_mut() {
            let e = c.counters.entry(name.to_string()).or_insert(0);
            *e += delta;
            total = *e;
            let ts = c.ts_us();
            c.sink.record(
                ts,
                &Record::Counter {
                    name: name.to_string(),
                    delta,
                    total,
                },
            );
            true
        } else {
            false
        }
    };
    if recorded_globally || scope::active() {
        flight::push(&Record::Counter {
            name: name.to_string(),
            delta,
            total,
        });
    }
}

/// Sets the named gauge (last value wins). Prefer [`gauge!`].
pub fn set_gauge(name: &str, value: f64) {
    scope::record_gauge(name, value);
    let rec = Record::Gauge {
        name: name.to_string(),
        value,
    };
    let recorded_globally = {
        let mut guard = lock();
        if let Some(c) = guard.as_mut() {
            c.gauges.insert(name.to_string(), value);
            let ts = c.ts_us();
            c.sink.record(ts, &rec);
            true
        } else {
            false
        }
    };
    if recorded_globally || scope::active() {
        flight::push(&rec);
    }
}

/// Records `value` into the named power-of-two histogram. Prefer
/// [`histogram!`].
pub fn record_hist(name: &str, value: u64) {
    scope::record_hist(name, value);
    let rec = Record::Hist {
        name: name.to_string(),
        value,
    };
    let recorded_globally = {
        let mut guard = lock();
        if let Some(c) = guard.as_mut() {
            c.hists.entry(name.to_string()).or_default().record(value);
            let ts = c.ts_us();
            c.sink.record(ts, &rec);
            true
        } else {
            false
        }
    };
    if recorded_globally || scope::active() {
        flight::push(&rec);
    }
}

/// Emits a point-in-time structured event. Prefer [`event!`]. Unlike
/// the other record kinds, events reach the flight recorder even when
/// no collector is installed — they are rare and forensically dense
/// (degradations, budget expiry, round results).
pub fn emit_event(name: &str, attrs: &[(&'static str, Value)]) {
    scope::record_event(name, attrs);
    let rec = Record::Event {
        name: name.to_string(),
        attrs: attrs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    };
    {
        let mut guard = lock();
        if let Some(c) = guard.as_mut() {
            let ts = c.ts_us();
            c.sink.record(ts, &rec);
        }
    }
    flight::push(&rec);
}

/// Whether the flight recorder is capturing (see [`flight`]); the
/// [`event!`] macro checks this alongside [`is_enabled`].
#[inline]
pub fn flight_on() -> bool {
    flight::is_enabled()
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// One open span's bookkeeping frame: child-inclusive accumulators for
/// time and memory, so the closing span can compute its exclusive
/// (self) share as `inclusive - children` — identical semantics for
/// nanoseconds and bytes.
#[derive(Default)]
struct SpanFrame {
    /// Inclusive nanoseconds of direct children.
    child_ns: u64,
    /// This thread's allocator counters when the span opened.
    start_mem: Option<mem::ThreadMark>,
    /// Allocation done on other threads, credited to this span by
    /// `lacr_par::Region` fan-outs ([`mem::credit_foreign`]).
    foreign_mem: MemDelta,
    /// Inclusive memory deltas of direct children (own + foreign).
    child_mem: MemDelta,
}

thread_local! {
    /// Per-thread stack of open spans: each frame accumulates the
    /// inclusive time and memory of its direct children, so a closing
    /// span can compute its exclusive share as `inclusive - children`.
    static SPAN_STACK: RefCell<Vec<SpanFrame>> = const { RefCell::new(Vec::new()) };
}

/// Adds worker-thread allocation to the innermost open span on this
/// thread (no-op outside any span). Called via [`mem::credit_foreign`]
/// by parallel regions after joining their workers, while the region's
/// own span is still open — the credit then propagates to enclosing
/// stage spans through the normal inclusive/exclusive bookkeeping.
pub(crate) fn credit_span_foreign(delta: &MemDelta) {
    SPAN_STACK.with(|s| {
        if let Some(frame) = s.borrow_mut().last_mut() {
            frame.foreign_mem.add(delta);
        }
    });
}

/// An RAII span guard: created by [`span!`], records inclusive and
/// exclusive wall-clock time into the aggregates when dropped.
#[must_use = "a span measures the region it is alive for; bind it to a variable"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// A no-op span (what [`span!`] returns when tracing is disabled).
    pub fn disabled() -> Self {
        Span {
            name: "",
            start: None,
        }
    }

    /// Opens a span: pushes a frame on the thread-local stack and
    /// forwards a `span_open` record to the sink (and to the attached
    /// per-request [`scope`], if any).
    pub fn enter(name: &'static str, attrs: &[(&'static str, Value)]) -> Self {
        if !recording() {
            return Self::disabled();
        }
        let depth = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(SpanFrame {
                start_mem: Some(mem::thread_mark()),
                ..SpanFrame::default()
            });
            s.len() - 1
        });
        {
            let rec = Record::SpanOpen {
                name: name.to_string(),
                depth,
                attrs: attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            };
            {
                let mut guard = lock();
                if let Some(c) = guard.as_mut() {
                    let ts = c.ts_us();
                    c.sink.record(ts, &rec);
                }
            }
            flight::push(&rec);
        }
        Span {
            name,
            start: Some(Instant::now()),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let incl_ns = start.elapsed().as_nanos() as u64;
        let (child_ns, self_mem, self_bytes, depth) = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let frame = s.pop().unwrap_or_default();
            // Inclusive memory: this thread's delta over the span
            // window plus worker-thread credit from parallel regions;
            // exclusive (self) memory subtracts direct children, the
            // same arithmetic as exclusive time.
            let mut incl_mem = frame
                .start_mem
                .as_ref()
                .map(mem::ThreadMark::delta)
                .unwrap_or_default();
            incl_mem.add(&frame.foreign_mem);
            let self_mem = incl_mem.saturating_sub(&frame.child_mem);
            let self_bytes = incl_mem.net_bytes() - frame.child_mem.net_bytes();
            if let Some(parent) = s.last_mut() {
                parent.child_ns += incl_ns;
                parent.child_mem.add(&incl_mem);
                parent.foreign_mem.add(&frame.foreign_mem);
            }
            (frame.child_ns, self_mem, self_bytes, s.len())
        });
        let excl_ns = incl_ns.saturating_sub(child_ns);
        // Live is loaded before peak so `peak >= live` holds within
        // this record (the peak counter only grows).
        let live = mem::live_bytes();
        let peak = mem::peak_bytes().max(live);
        scope::record_span(
            self.name,
            incl_ns,
            excl_ns,
            self_bytes,
            self_mem.allocs,
            peak,
        );
        let rec = Record::SpanClose {
            name: self.name.to_string(),
            depth,
            incl_us: incl_ns / 1_000,
            excl_us: excl_ns / 1_000,
            mem_self_bytes: self_bytes,
            mem_live_bytes: live,
            mem_peak_bytes: peak,
            mem_allocs: self_mem.allocs,
        };
        let recorded_globally = {
            let mut guard = lock();
            if let Some(c) = guard.as_mut() {
                let stat = c.spans.entry(self.name.to_string()).or_default();
                stat.count += 1;
                stat.incl_ns += incl_ns;
                stat.excl_ns += excl_ns;
                stat.self_bytes += self_bytes;
                stat.allocs += self_mem.allocs;
                stat.peak_bytes = stat.peak_bytes.max(peak);
                let ts = c.ts_us();
                c.sink.record(ts, &rec);
                true
            } else {
                false
            }
        };
        if recorded_globally || scope::active() {
            flight::push(&rec);
        }
        // A monotone, serialized allocation counter alongside the span
        // stream (`check_metrics --mem` verifies its totals never step
        // backwards). Emitted after the frame pop so its own small
        // allocations charge the parent span.
        if self_mem.allocs > 0 {
            add_counter("mem.allocs", self_mem.allocs as i64);
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Opens an RAII-timed span: `let _g = span!("plan.route");` or with
/// attributes, `let _g = span!("lac.round", round = r, n_foa = n);`.
/// Attribute expressions are not evaluated when tracing is disabled.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::recording() {
            $crate::Span::enter($name, &[$((stringify!($k), $crate::Value::from($v))),*])
        } else {
            $crate::Span::disabled()
        }
    };
}

/// Adds to a monotonic counter: `counter!("mcmf.ssp_iterations", n);`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {
        if $crate::recording() {
            $crate::add_counter($name, ($delta) as i64);
        }
    };
}

/// Sets a gauge (last value wins): `gauge!("route.overflow", ov);`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        if $crate::recording() {
            $crate::set_gauge($name, ($value) as f64);
        }
    };
}

/// Records a sample into a power-of-two histogram:
/// `histogram!("route.net_len", len);`.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        if $crate::recording() {
            $crate::record_hist($name, ($value) as u64);
        }
    };
}

/// Emits a point-in-time structured event:
/// `event!("degradation", stage = "lac", reason = msg);`.
///
/// Events also feed the flight recorder, so they fire whenever either
/// the collector or the recorder is on. Keep them rare (round results,
/// degradations — never per inner iteration): unlike the other macros
/// their attributes are evaluated in default runs.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::recording() || $crate::flight_on() {
            $crate::emit_event($name, &[$((stringify!($k), $crate::Value::from($v))),*]);
        }
    };
}

// ---------------------------------------------------------------------
// Diagnostics (always-on progress/warning channel)
// ---------------------------------------------------------------------

/// How chatty the human-facing diagnostic channel is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum DiagLevel {
    /// Print nothing (`--quiet`).
    Silent = 0,
    /// Print progress and warnings (the default).
    Normal = 1,
}

static DIAG_LEVEL: AtomicU8 = AtomicU8::new(DiagLevel::Normal as u8);

/// Sets the global diagnostic level. The CLI maps `--quiet` to
/// [`DiagLevel::Silent`].
pub fn set_diag_level(level: DiagLevel) {
    DIAG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether [`diag!`] currently prints.
#[inline]
pub fn diag_on() -> bool {
    DIAG_LEVEL.load(Ordering::Relaxed) >= DiagLevel::Normal as u8
}

#[doc(hidden)]
pub fn diag_print(args: std::fmt::Arguments<'_>) {
    let msg = args.to_string();
    flight::note(&msg);
    eprintln!("[lacr] {msg}");
}

/// Prints a uniformly `[lacr]`-prefixed diagnostic line to stderr,
/// unless the level is [`DiagLevel::Silent`]. This is the replacement
/// for ad-hoc `eprintln!` progress messages: formatting is skipped
/// entirely when silenced.
#[macro_export]
macro_rules! diag {
    ($($arg:tt)*) => {
        if $crate::diag_on() {
            $crate::diag_print(core::format_args!($($arg)*));
        }
    };
}

// ---------------------------------------------------------------------
// Test support
// ---------------------------------------------------------------------

/// Runs `f` with a [`CaptureSink`] installed and returns `f`'s result,
/// the captured records, and the final report. Captures are serialized
/// by an internal mutex so parallel tests do not interleave their
/// global collectors.
pub fn run_captured<T>(f: impl FnOnce() -> T) -> (T, Vec<(u64, Record)>, Report) {
    static CAPTURE_GATE: Mutex<()> = Mutex::new(());
    let _gate = CAPTURE_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (sink, store) = CaptureSink::new();
    init(Box::new(sink));
    let out = f();
    let report = finish().expect("collector was installed");
    let records = store.lock().unwrap_or_else(|e| e.into_inner()).clone();
    (out, records, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_capture_records_nothing() {
        let (_, records, report) = run_captured(|| {
            // Disabled guards are inert and safe to drop.
            drop(Span::disabled());
        });
        assert!(records.is_empty());
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
    }

    #[test]
    fn counters_gauges_and_events_aggregate() {
        let ((), records, report) = run_captured(|| {
            counter!("a.count", 2);
            counter!("a.count", 3);
            gauge!("a.gauge", 1.5);
            gauge!("a.gauge", 2.5);
            event!("hello", who = "world", n = 3_u64);
        });
        assert_eq!(report.counter("a.count"), Some(5));
        assert_eq!(report.gauge("a.gauge"), Some(2.5));
        let ev = records
            .iter()
            .find_map(|(_, r)| match r {
                Record::Event { name, attrs } if name == "hello" => Some(attrs.clone()),
                _ => None,
            })
            .expect("event captured");
        assert_eq!(ev[0], ("who".to_string(), Value::Str("world".into())));
        assert_eq!(ev[1], ("n".to_string(), Value::Uint(3)));
    }

    #[test]
    fn nested_spans_account_exclusive_time() {
        let ((), _, report) = run_captured(|| {
            let _outer = span!("outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = span!("inner");
                std::thread::sleep(std::time::Duration::from_millis(8));
            }
        });
        let outer = report.span("outer").expect("outer recorded");
        let inner = report.span("inner").expect("inner recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Inner has no children: exclusive == inclusive.
        assert_eq!(inner.incl_ns, inner.excl_ns);
        // Outer's inclusive covers the inner span; its exclusive does not.
        assert!(outer.incl_ns >= inner.incl_ns);
        assert_eq!(outer.excl_ns, outer.incl_ns - inner.incl_ns);
        // Exclusive times partition the total wall-clock.
        assert_eq!(outer.excl_ns + inner.excl_ns, outer.incl_ns);
    }

    #[test]
    fn sibling_spans_both_charge_the_parent() {
        let ((), _, report) = run_captured(|| {
            let _p = span!("p");
            for _ in 0..2 {
                let _c = span!("c");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        let p = report.span("p").expect("p");
        let c = report.span("c").expect("c");
        assert_eq!(c.count, 2);
        assert_eq!(p.excl_ns, p.incl_ns - c.incl_ns);
    }

    #[test]
    fn take_snapshot_resets_aggregates() {
        let ((), _, report) = run_captured(|| {
            counter!("x", 7);
            let mid = take_snapshot().expect("installed");
            assert_eq!(mid.counter("x"), Some(7));
            counter!("x", 1);
        });
        assert_eq!(report.counter("x"), Some(1));
    }

    #[test]
    fn value_json_fragments() {
        assert_eq!(Value::from(3_i64).to_json(), "3");
        assert_eq!(Value::from(true).to_json(), "true");
        assert_eq!(Value::from(f64::NAN).to_json(), "null");
        assert_eq!(Value::from("a\"b").to_json(), "\"a\\\"b\"");
    }
}
