//! Recursive Fiduccia–Mattheyses netlist partitioning.
//!
//! The paper assumes "a partition of the RT level functional units into
//! circuit blocks" as an input (§2); its experiments "first partition those
//! circuits into soft blocks" (§5). This crate supplies that substrate: a
//! classic FM bipartitioner applied recursively until the requested block
//! count is reached, balancing block *areas* and minimising the hyperedge
//! (net) cut.
//!
//! # Examples
//!
//! ```
//! use lacr_netlist::bench89;
//! use lacr_partition::{partition, PartitionConfig};
//!
//! let c = bench89::generate("s344")?;
//! let p = partition(&c, &PartitionConfig { num_blocks: 6, ..Default::default() });
//! assert_eq!(p.blocks.len(), 6);
//! assert_eq!(p.block_of.len(), c.num_units());
//! # Ok::<(), lacr_netlist::UnknownBenchmarkError>(())
//! ```

mod fm;
mod multilevel;

pub use fm::bipartition;
pub use multilevel::multilevel_bipartition;

use lacr_netlist::{Circuit, UnitId};

/// Configuration for [`partition`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionConfig {
    /// Number of blocks to produce.
    pub num_blocks: usize,
    /// Maximum relative area imbalance of a bipartition (0.1 = each side
    /// within ±10 % of half).
    pub balance_tolerance: f64,
    /// FM improvement passes per bipartition.
    pub fm_passes: usize,
    /// Groups at or above this many units are bisected with the
    /// multilevel (coarsen + refine) engine; smaller groups use flat FM.
    /// Flat FM is the better fit for the paper's circuit sizes; the
    /// multilevel engine keeps quality up on multi-thousand-unit circuits
    /// like s5378.
    pub multilevel_threshold: usize,
    /// PRNG seed for the initial random split.
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            num_blocks: 8,
            balance_tolerance: 0.15,
            fm_passes: 6,
            multilevel_threshold: 1_500,
            seed: 0xb10c5,
        }
    }
}

/// One block of the partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Units assigned to this block.
    pub units: Vec<UnitId>,
    /// Sum of raw unit areas.
    pub area: f64,
}

/// A partitioning of a circuit's units into blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Partitioning {
    /// The blocks, each with its unit list and area.
    pub blocks: Vec<Block>,
    /// Block index of every unit (indexed by [`UnitId::index`]).
    pub block_of: Vec<usize>,
}

impl Partitioning {
    /// Number of nets whose pins span more than one block.
    pub fn cut_size(&self, circuit: &Circuit) -> usize {
        circuit
            .nets()
            .iter()
            .filter(|net| {
                let b = self.block_of[net.driver.index()];
                net.sinks.iter().any(|s| self.block_of[s.unit.index()] != b)
            })
            .count()
    }
}

/// Partitions a circuit into `config.num_blocks` blocks by recursive FM
/// bisection, always splitting the largest-area remaining block.
///
/// Every unit (including primary I/O, which have zero area) is assigned to
/// exactly one block.
///
/// # Panics
///
/// Panics if `config.num_blocks == 0`.
pub fn partition(circuit: &Circuit, config: &PartitionConfig) -> Partitioning {
    assert!(config.num_blocks > 0, "need at least one block");
    let _span = lacr_obs::span!(
        "partition.recursive",
        units = circuit.num_units(),
        blocks = config.num_blocks
    );
    let n = circuit.num_units();
    let all: Vec<UnitId> = circuit.unit_ids().collect();
    let mut groups: Vec<Vec<UnitId>> = vec![all];

    let mut bisections = 0_u64;
    let mut seed = config.seed;
    while groups.len() < config.num_blocks {
        // Split the group with the largest area (ties: most units).
        let (idx, _) = groups
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let area: f64 = g.iter().map(|&u| circuit.unit(u).area).sum();
                (i, (area, g.len()))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite areas"))
            .expect("non-empty group list");
        if groups[idx].len() < 2 {
            // Cannot split further; give up early (fewer blocks than asked).
            break;
        }
        let group = groups.swap_remove(idx);
        seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let (left, right) = if config.fm_passes > 0 && group.len() >= config.multilevel_threshold {
            multilevel_bipartition(
                circuit,
                &group,
                config.balance_tolerance,
                config.fm_passes,
                seed,
            )
        } else {
            bipartition(
                circuit,
                &group,
                config.balance_tolerance,
                config.fm_passes,
                seed,
            )
        };
        bisections += 1;
        groups.push(left);
        groups.push(right);
    }
    lacr_obs::counter!("partition.bisections", bisections);

    let mut block_of = vec![usize::MAX; n];
    let blocks: Vec<Block> = groups
        .into_iter()
        .enumerate()
        .map(|(bi, units)| {
            let mut area = 0.0;
            for &u in &units {
                block_of[u.index()] = bi;
                area += circuit.unit(u).area;
            }
            Block { units, area }
        })
        .collect();
    debug_assert!(block_of.iter().all(|&b| b != usize::MAX));
    Partitioning { blocks, block_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacr_netlist::bench89;

    #[test]
    fn partitions_cover_all_units() {
        let c = bench89::generate("s641").unwrap();
        let p = partition(&c, &PartitionConfig::default());
        let total: usize = p.blocks.iter().map(|b| b.units.len()).sum();
        assert_eq!(total, c.num_units());
        for (u, &b) in p.block_of.iter().enumerate() {
            assert!(p.blocks[b].units.iter().any(|x| x.index() == u));
        }
    }

    #[test]
    fn block_count_honoured() {
        let c = bench89::generate("s953").unwrap();
        for k in [2, 5, 12] {
            let p = partition(
                &c,
                &PartitionConfig {
                    num_blocks: k,
                    ..Default::default()
                },
            );
            assert_eq!(p.blocks.len(), k);
        }
    }

    #[test]
    fn areas_are_reasonably_balanced() {
        let c = bench89::generate("s1196").unwrap();
        let p = partition(
            &c,
            &PartitionConfig {
                num_blocks: 8,
                ..Default::default()
            },
        );
        let total: f64 = p.blocks.iter().map(|b| b.area).sum();
        let avg = total / 8.0;
        for b in &p.blocks {
            assert!(
                b.area < 2.5 * avg,
                "block area {} far above average {avg}",
                b.area
            );
        }
    }

    #[test]
    fn fm_beats_random_cut() {
        let c = bench89::generate("s838").unwrap();
        let cfg = PartitionConfig {
            num_blocks: 2,
            fm_passes: 8,
            ..Default::default()
        };
        let with_fm = partition(&c, &cfg).cut_size(&c);
        let without = partition(
            &c,
            &PartitionConfig {
                fm_passes: 0,
                ..cfg
            },
        )
        .cut_size(&c);
        assert!(
            with_fm <= without,
            "FM cut {with_fm} worse than random {without}"
        );
    }

    #[test]
    fn single_block_is_identity() {
        let c = bench89::generate("s344").unwrap();
        let p = partition(
            &c,
            &PartitionConfig {
                num_blocks: 1,
                ..Default::default()
            },
        );
        assert_eq!(p.blocks.len(), 1);
        assert_eq!(p.cut_size(&c), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let c = bench89::generate("s526").unwrap();
        let cfg = PartitionConfig::default();
        assert_eq!(partition(&c, &cfg), partition(&c, &cfg));
    }

    #[test]
    #[should_panic]
    fn zero_blocks_panics() {
        let c = bench89::generate("s344").unwrap();
        let _ = partition(
            &c,
            &PartitionConfig {
                num_blocks: 0,
                ..Default::default()
            },
        );
    }
}
