//! A Fiduccia–Mattheyses bipartitioner over one group of units.

use lacr_netlist::{Circuit, UnitId};
use lacr_prng::{Rng, SliceRandom};
use std::collections::{BinaryHeap, HashMap};

/// Splits `group` into two halves of roughly equal area, minimising the
/// number of cut nets with up to `passes` FM improvement passes.
///
/// `balance_tolerance` bounds how far each side may drift from half the
/// total area (e.g. 0.15 allows 35 %–65 % splits). Nets with pins outside
/// `group` are considered only through their in-group pins.
///
/// Returns `(left, right)`; both are non-empty whenever `group.len() >= 2`.
///
/// # Examples
///
/// ```
/// use lacr_netlist::{bench89, Circuit};
/// use lacr_partition::bipartition;
///
/// let c = bench89::generate("s344")?;
/// let all: Vec<_> = c.unit_ids().collect();
/// let (l, r) = bipartition(&c, &all, 0.15, 4, 1);
/// assert_eq!(l.len() + r.len(), all.len());
/// assert!(!l.is_empty() && !r.is_empty());
/// # Ok::<(), lacr_netlist::UnknownBenchmarkError>(())
/// ```
pub fn bipartition(
    circuit: &Circuit,
    group: &[UnitId],
    balance_tolerance: f64,
    passes: usize,
    seed: u64,
) -> (Vec<UnitId>, Vec<UnitId>) {
    let m = group.len();
    if m < 2 {
        let left = group.to_vec();
        return (left, Vec::new());
    }
    // Local indices.
    let mut local: HashMap<UnitId, usize> = HashMap::with_capacity(m);
    for (i, &u) in group.iter().enumerate() {
        local.insert(u, i);
    }
    // Areas; a zero-area unit (I/O pad) still counts a tiny amount so pads
    // spread across both sides instead of piling up for free.
    let areas: Vec<f64> = group
        .iter()
        .map(|&u| circuit.unit(u).area.max(1e-3))
        .collect();
    let total_area: f64 = areas.iter().sum();
    let half = total_area / 2.0;
    let max_side = half * (1.0 + balance_tolerance);

    // Hyperedges restricted to the group (nets with ≥ 2 in-group pins).
    let mut nets: Vec<Vec<usize>> = Vec::new();
    for net in circuit.nets() {
        let mut pins: Vec<usize> = Vec::new();
        if let Some(&d) = local.get(&net.driver) {
            pins.push(d);
        }
        for s in &net.sinks {
            if let Some(&p) = local.get(&s.unit) {
                pins.push(p);
            }
        }
        pins.sort_unstable();
        pins.dedup();
        if pins.len() >= 2 {
            nets.push(pins);
        }
    }
    let mut nets_of: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (ni, pins) in nets.iter().enumerate() {
        for &p in pins {
            nets_of[p].push(ni);
        }
    }

    // Initial random area-balanced split.
    let mut rng = Rng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..m).collect();
    order.shuffle(&mut rng);
    let mut side = vec![false; m]; // false = left, true = right
    let mut left_area = 0.0;
    for &i in &order {
        if left_area + areas[i] <= half {
            left_area += areas[i];
        } else {
            side[i] = true;
        }
    }
    // Guarantee both sides non-empty.
    if side.iter().all(|&s| !s) {
        side[order[m - 1]] = true;
    }
    if side.iter().all(|&s| s) {
        side[order[0]] = false;
    }

    for _ in 0..passes {
        if !fm_pass(&nets, &nets_of, &areas, &mut side, max_side, total_area) {
            break;
        }
    }

    let mut left = Vec::new();
    let mut right = Vec::new();
    for (i, &u) in group.iter().enumerate() {
        if side[i] {
            right.push(u);
        } else {
            left.push(u);
        }
    }
    if left.is_empty() {
        left.push(right.pop().expect("m >= 2"));
    }
    if right.is_empty() {
        right.push(left.pop().expect("m >= 2"));
    }
    (left, right)
}

/// One FM pass: tentatively move every unit once in best-gain order, then
/// keep the best prefix. Returns `true` if the cut improved.
fn fm_pass(
    nets: &[Vec<usize>],
    nets_of: &[Vec<usize>],
    areas: &[f64],
    side: &mut [bool],
    max_side: f64,
    total_area: f64,
) -> bool {
    let m = side.len();
    // Pin counts per net per side.
    let mut cnt = vec![[0usize; 2]; nets.len()];
    for (ni, pins) in nets.iter().enumerate() {
        for &p in pins {
            cnt[ni][side[p] as usize] += 1;
        }
    }
    let cut0: usize = cnt.iter().filter(|c| c[0] > 0 && c[1] > 0).count();

    let gain = |i: usize, side: &[bool], cnt: &[[usize; 2]]| -> i64 {
        let s = side[i] as usize;
        let mut g = 0i64;
        for &ni in &nets_of[i] {
            if cnt[ni][1 - s] == 0 {
                g -= 1; // moving i cuts a currently-uncut net
            }
            if cnt[ni][s] == 1 {
                g += 1; // i is the last pin on its side: move uncuts it
            }
        }
        g
    };

    let mut locked = vec![false; m];
    let mut heap: BinaryHeap<(i64, usize)> = (0..m).map(|i| (gain(i, side, &cnt), i)).collect();
    let mut side_area = [0.0f64; 2];
    for i in 0..m {
        side_area[side[i] as usize] += areas[i];
    }

    let mut moves: Vec<usize> = Vec::with_capacity(m);
    let mut cur_cut = cut0 as i64;
    let mut best_cut = cut0 as i64;
    let mut best_prefix = 0usize;
    // Classic FM slack: a side may exceed the balance bound by one largest
    // cell, otherwise an exactly balanced split could never move anything.
    let slack = areas.iter().cloned().fold(0.0f64, f64::max);

    while let Some((g, i)) = heap.pop() {
        if locked[i] {
            continue;
        }
        let fresh = gain(i, side, &cnt);
        if fresh != g {
            heap.push((fresh, i)); // lazy refresh
            continue;
        }
        let from = side[i] as usize;
        let to = 1 - from;
        // Balance guard: skip (lock) moves that overfill the target side.
        if side_area[to] + areas[i] > max_side + slack && side_area[to] > total_area * 0.05 {
            locked[i] = true;
            continue;
        }
        // Apply the move.
        locked[i] = true;
        side[i] = !side[i];
        side_area[from] -= areas[i];
        side_area[to] += areas[i];
        for &ni in &nets_of[i] {
            cnt[ni][from] -= 1;
            cnt[ni][to] += 1;
        }
        cur_cut -= fresh;
        moves.push(i);
        if cur_cut < best_cut {
            best_cut = cur_cut;
            best_prefix = moves.len();
        }
        // Re-push neighbours whose gains changed.
        for &ni in &nets_of[i] {
            for &p in &nets[ni] {
                if !locked[p] {
                    heap.push((gain(p, side, &cnt), p));
                }
            }
        }
    }

    // Roll back moves after the best prefix.
    for &i in moves.iter().skip(best_prefix) {
        side[i] = !side[i];
    }
    best_cut < cut0 as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacr_netlist::{Sink, Unit};

    /// Two 4-cliques joined by a single net: FM should find the obvious
    /// 2-block split with cut 1.
    #[test]
    fn separates_two_clusters() {
        let mut c = Circuit::new("clusters");
        let mut us = Vec::new();
        for i in 0..8 {
            us.push(c.add_unit(Unit::logic(format!("g{i}"), 1.0, 1.0)));
        }
        // cluster A: 0-3 chained densely; cluster B: 4-7.
        for base in [0usize, 4] {
            for i in base..base + 3 {
                c.add_net(us[i], vec![Sink::new(us[i + 1], 1), Sink::new(us[base], 1)]);
            }
        }
        // one bridge net
        c.add_net(us[3], vec![Sink::new(us[4], 1)]);
        let all: Vec<UnitId> = c.unit_ids().collect();
        let (l, r) = bipartition(&c, &all, 0.2, 8, 3);
        assert!(!l.is_empty() && !r.is_empty());
        assert!(
            l.len() >= 3 && r.len() >= 3,
            "split {}/{}",
            l.len(),
            r.len()
        );
        let cut = c
            .nets()
            .iter()
            .filter(|net| {
                let dl = l.contains(&net.driver);
                net.sinks.iter().any(|s| l.contains(&s.unit) != dl)
            })
            .count();
        assert_eq!(cut, 1, "expected the single-bridge cut, left={l:?}");
    }

    #[test]
    fn tiny_groups_degrade_gracefully() {
        let mut c = Circuit::new("tiny");
        let a = c.add_unit(Unit::logic("a", 1.0, 1.0));
        let (l, r) = bipartition(&c, &[a], 0.1, 4, 1);
        assert_eq!(l.len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn two_units_split_one_each() {
        let mut c = Circuit::new("two");
        let a = c.add_unit(Unit::logic("a", 1.0, 1.0));
        let b = c.add_unit(Unit::logic("b", 1.0, 1.0));
        c.add_net(a, vec![Sink::new(b, 1)]);
        let (l, r) = bipartition(&c, &[a, b], 0.1, 4, 1);
        assert_eq!(l.len(), 1);
        assert_eq!(r.len(), 1);
    }
}
