//! Multilevel bipartitioning: heavy-edge coarsening, FM on the coarsest
//! graph, then FM refinement at every uncoarsening level (the hMETIS
//! recipe, specialised to two sides).
//!
//! Flat FM degrades on large netlists — its single-vertex moves cannot
//! shift whole clusters. Coarsening by heavy-edge matching merges tightly
//! connected pairs first, so the coarse-level FM effectively moves
//! clusters, and each finer level only polishes.

use crate::fm::bipartition;
use lacr_netlist::{Circuit, UnitId};
use lacr_prng::{Rng, SliceRandom};
use std::collections::HashMap;

/// A coarsened hypergraph level.
#[derive(Debug, Clone)]
struct Level {
    /// For each coarse vertex: the fine vertices it contains (indices into
    /// the previous level's vertex space).
    groups: Vec<Vec<usize>>,
    /// Nets as coarse-vertex index lists (deduplicated, ≥ 2 pins).
    nets: Vec<Vec<usize>>,
    /// Vertex areas.
    areas: Vec<f64>,
}

/// Splits `group` into two area-balanced halves using multilevel FM.
///
/// Parameters mirror [`crate::bipartition`]; `coarsen_to` bounds the
/// coarsest level's vertex count (default ≈ 64 via
/// [`multilevel_bipartition`]'s wrapper behaviour).
///
/// # Examples
///
/// ```
/// use lacr_netlist::bench89;
/// use lacr_partition::multilevel_bipartition;
///
/// let c = bench89::generate("s953")?;
/// let all: Vec<_> = c.unit_ids().collect();
/// let (l, r) = multilevel_bipartition(&c, &all, 0.15, 4, 7);
/// assert_eq!(l.len() + r.len(), all.len());
/// assert!(!l.is_empty() && !r.is_empty());
/// # Ok::<(), lacr_netlist::UnknownBenchmarkError>(())
/// ```
pub fn multilevel_bipartition(
    circuit: &Circuit,
    group: &[UnitId],
    balance_tolerance: f64,
    passes: usize,
    seed: u64,
) -> (Vec<UnitId>, Vec<UnitId>) {
    let m = group.len();
    if m < 128 {
        // Small enough for flat FM.
        return bipartition(circuit, group, balance_tolerance, passes, seed);
    }
    let coarsen_to = 64usize;

    // Level 0: the fine hypergraph restricted to the group.
    let mut local: HashMap<UnitId, usize> = HashMap::with_capacity(m);
    for (i, &u) in group.iter().enumerate() {
        local.insert(u, i);
    }
    let mut nets: Vec<Vec<usize>> = Vec::new();
    for net in circuit.nets() {
        let mut pins: Vec<usize> = std::iter::once(net.driver)
            .chain(net.sinks.iter().map(|s| s.unit))
            .filter_map(|u| local.get(&u).copied())
            .collect();
        pins.sort_unstable();
        pins.dedup();
        if pins.len() >= 2 {
            nets.push(pins);
        }
    }
    let areas: Vec<f64> = group
        .iter()
        .map(|&u| circuit.unit(u).area.max(1e-3))
        .collect();
    let mut levels: Vec<Level> = vec![Level {
        groups: (0..m).map(|i| vec![i]).collect(),
        nets,
        areas,
    }];

    // Coarsen until small or progress stalls.
    let mut rng = Rng::seed_from_u64(seed ^ 0xc0a5);
    loop {
        let cur = levels.last().expect("at least level 0");
        let n = cur.groups.len();
        if n <= coarsen_to {
            break;
        }
        let next = coarsen(cur, &mut rng);
        if next.groups.len() as f64 > 0.9 * n as f64 {
            break; // diminishing returns
        }
        levels.push(next);
    }

    // Initial FM on the coarsest level via a temporary circuit-free FM:
    // reuse the generic pass by building side assignments directly.
    let coarsest = levels.last().expect("non-empty");
    let mut side = initial_split(coarsest, &mut rng, balance_tolerance);
    refine(coarsest, &mut side, balance_tolerance, passes * 2);

    // Uncoarsen with refinement at each level.
    for li in (0..levels.len() - 1).rev() {
        let finer = &levels[li];
        let coarser = &levels[li + 1];
        let mut fine_side = vec![false; finer.groups.len()];
        for (ci, members) in coarser.groups.iter().enumerate() {
            for &f in members {
                fine_side[f] = side[ci];
            }
        }
        side = fine_side;
        refine(finer, &mut side, balance_tolerance, passes);
    }

    let mut left = Vec::new();
    let mut right = Vec::new();
    for (i, &u) in group.iter().enumerate() {
        if side[i] {
            right.push(u);
        } else {
            left.push(u);
        }
    }
    if left.is_empty() {
        left.push(right.pop().expect("m >= 2"));
    }
    if right.is_empty() {
        right.push(left.pop().expect("m >= 2"));
    }
    (left, right)
}

/// Heavy-edge matching: vertices sharing many small nets merge first.
fn coarsen(level: &Level, rng: &mut Rng) -> Level {
    let n = level.groups.len();
    // Pairwise connectivity scores from nets (small nets weigh more).
    let mut score: HashMap<(usize, usize), f64> = HashMap::new();
    for pins in &level.nets {
        if pins.len() > 8 {
            continue; // big nets carry little clustering signal
        }
        let w = 1.0 / (pins.len() as f64 - 1.0);
        for i in 0..pins.len() {
            for j in i + 1..pins.len() {
                let key = (pins[i].min(pins[j]), pins[i].max(pins[j]));
                *score.entry(key).or_insert(0.0) += w;
            }
        }
    }
    // Visit vertices in random order; match each to its best unmatched
    // neighbour.
    let mut neighbours: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (&(a, b), &s) in &score {
        neighbours[a].push((b, s));
        neighbours[b].push((a, s));
    }
    // HashMap iteration order is randomised; sort each adjacency list so
    // the matching (and therefore the whole partitioner) is deterministic.
    for list in &mut neighbours {
        list.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut matched = vec![usize::MAX; n];
    for &v in &order {
        if matched[v] != usize::MAX {
            continue;
        }
        let best = neighbours[v]
            .iter()
            .find(|(u, _)| matched[*u] == usize::MAX && *u != v);
        if let Some(&(u, _)) = best {
            matched[v] = u;
            matched[u] = v;
        }
    }
    // Build coarse vertices.
    let mut coarse_of = vec![usize::MAX; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut areas: Vec<f64> = Vec::new();
    for v in 0..n {
        if coarse_of[v] != usize::MAX {
            continue;
        }
        let mut members = vec![v];
        coarse_of[v] = groups.len();
        let u = matched[v];
        if u != usize::MAX && coarse_of[u] == usize::MAX {
            coarse_of[u] = groups.len();
            members.push(u);
        }
        areas.push(members.iter().map(|&x| level.areas[x]).sum());
        groups.push(members);
    }
    // Project nets.
    let mut nets: Vec<Vec<usize>> = Vec::new();
    for pins in &level.nets {
        let mut coarse: Vec<usize> = pins.iter().map(|&p| coarse_of[p]).collect();
        coarse.sort_unstable();
        coarse.dedup();
        if coarse.len() >= 2 {
            nets.push(coarse);
        }
    }
    Level {
        groups,
        nets,
        areas,
    }
}

/// Random area-balanced initial split of a level.
fn initial_split(level: &Level, rng: &mut Rng, _tol: f64) -> Vec<bool> {
    let n = level.groups.len();
    let total: f64 = level.areas.iter().sum();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut side = vec![false; n];
    let mut left = 0.0;
    for &v in &order {
        if left + level.areas[v] <= total / 2.0 {
            left += level.areas[v];
        } else {
            side[v] = true;
        }
    }
    if side.iter().all(|&s| !s) && n > 1 {
        side[order[n - 1]] = true;
    }
    if side.iter().all(|&s| s) && n > 1 {
        side[order[0]] = false;
    }
    side
}

/// Greedy FM-style refinement passes on one level (recomputed gains, best
/// prefix kept — adequate because levels are small after coarsening and
/// the fine levels only polish).
fn refine(level: &Level, side: &mut [bool], tol: f64, passes: usize) {
    let n = level.groups.len();
    if n < 2 {
        return;
    }
    let total: f64 = level.areas.iter().sum();
    let max_side = total / 2.0 * (1.0 + tol) + level.areas.iter().cloned().fold(0.0, f64::max);
    let mut nets_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ni, pins) in level.nets.iter().enumerate() {
        for &p in pins {
            nets_of[p].push(ni);
        }
    }
    for _ in 0..passes {
        let mut cnt = vec![[0usize; 2]; level.nets.len()];
        for (ni, pins) in level.nets.iter().enumerate() {
            for &p in pins {
                cnt[ni][side[p] as usize] += 1;
            }
        }
        let cut0: i64 = cnt.iter().filter(|c| c[0] > 0 && c[1] > 0).count() as i64;
        let mut side_area = [0.0f64; 2];
        for v in 0..n {
            side_area[side[v] as usize] += level.areas[v];
        }
        let mut locked = vec![false; n];
        let mut moves: Vec<usize> = Vec::new();
        let mut cur = cut0;
        let mut best = cut0;
        let mut best_prefix = 0usize;
        for _ in 0..n {
            // Pick the best unlocked, balance-respecting move.
            let mut pick: Option<(i64, usize)> = None;
            for v in 0..n {
                if locked[v] {
                    continue;
                }
                let s = side[v] as usize;
                if side_area[1 - s] + level.areas[v] > max_side {
                    continue;
                }
                let mut g = 0i64;
                for &ni in &nets_of[v] {
                    if cnt[ni][1 - s] == 0 {
                        g -= 1;
                    }
                    if cnt[ni][s] == 1 {
                        g += 1;
                    }
                }
                if pick.map(|(pg, _)| g > pg).unwrap_or(true) {
                    pick = Some((g, v));
                }
            }
            let Some((g, v)) = pick else { break };
            let s = side[v] as usize;
            locked[v] = true;
            side[v] = !side[v];
            side_area[s] -= level.areas[v];
            side_area[1 - s] += level.areas[v];
            for &ni in &nets_of[v] {
                cnt[ni][s] -= 1;
                cnt[ni][1 - s] += 1;
            }
            cur -= g;
            moves.push(v);
            if cur < best {
                best = cur;
                best_prefix = moves.len();
            }
        }
        for &v in moves.iter().skip(best_prefix) {
            side[v] = !side[v];
        }
        if best >= cut0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacr_netlist::bench89;

    fn cut_of(circuit: &Circuit, left: &[UnitId]) -> usize {
        let in_left = |u: UnitId| left.contains(&u);
        circuit
            .nets()
            .iter()
            .filter(|net| {
                let dl = in_left(net.driver);
                net.sinks.iter().any(|s| in_left(s.unit) != dl)
            })
            .count()
    }

    #[test]
    fn multilevel_covers_and_balances() {
        let c = bench89::generate("s1196").unwrap();
        let all: Vec<UnitId> = c.unit_ids().collect();
        let (l, r) = multilevel_bipartition(&c, &all, 0.15, 4, 11);
        assert_eq!(l.len() + r.len(), all.len());
        let la: f64 = l.iter().map(|&u| c.unit(u).area.max(1e-3)).sum();
        let ra: f64 = r.iter().map(|&u| c.unit(u).area.max(1e-3)).sum();
        let total = la + ra;
        assert!(la < 0.75 * total && ra < 0.75 * total, "{la} vs {ra}");
    }

    #[test]
    fn multilevel_cut_not_worse_than_flat_on_big_circuits() {
        let c = bench89::generate("s1423").unwrap();
        let all: Vec<UnitId> = c.unit_ids().collect();
        let (ml_l, _) = multilevel_bipartition(&c, &all, 0.15, 4, 5);
        let (flat_l, _) = bipartition(&c, &all, 0.15, 4, 5);
        let ml_cut = cut_of(&c, &ml_l);
        let flat_cut = cut_of(&c, &flat_l);
        assert!(
            ml_cut as f64 <= flat_cut as f64 * 1.5,
            "multilevel {ml_cut} much worse than flat {flat_cut}"
        );
    }

    #[test]
    fn small_groups_fall_back_to_flat() {
        let c = bench89::generate("s344").unwrap();
        let few: Vec<UnitId> = c.unit_ids().take(20).collect();
        let (l, r) = multilevel_bipartition(&c, &few, 0.2, 4, 3);
        assert_eq!(l.len() + r.len(), 20);
    }

    #[test]
    fn deterministic() {
        let c = bench89::generate("s953").unwrap();
        let all: Vec<UnitId> = c.unit_ids().collect();
        let a = multilevel_bipartition(&c, &all, 0.15, 4, 9);
        let b = multilevel_bipartition(&c, &all, 0.15, 4, 9);
        assert_eq!(a, b);
    }
}
