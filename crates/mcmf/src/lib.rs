//! Minimum-cost flow and difference-constraint solvers.
//!
//! This crate is the mathematical substrate for minimum-area retiming
//! (Leiserson & Saxe, *Retiming Synchronous Circuitry*, Algorithmica 1991):
//! the linear program
//!
//! ```text
//! minimise   Σ_v a_v · r_v
//! subject to r_u − r_v ≤ b_uv          for every constraint (u, v, b)
//! ```
//!
//! is the LP dual of a transshipment (min-cost flow) problem, which
//! [`MinCostFlow`] solves with successive shortest paths and Johnson
//! potentials. [`solve_dual_program`] wraps the whole reduction and returns
//! optimal integer `r` values. [`DifferenceConstraints`] solves pure
//! feasibility (no objective) with Bellman–Ford, as used by min-period
//! retiming.
//!
//! All quantities are integers (`i64`); callers quantise real-valued data.

mod difference;
mod dual;
mod flow;

pub use difference::DifferenceConstraints;
pub use dual::DualSolver;
pub use flow::{FlowError, FlowSolution, MinCostFlow, NodeId};

use std::fmt;

/// A single difference constraint `r[u] − r[v] ≤ bound`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Index of the variable on the positive side.
    pub u: usize,
    /// Index of the variable on the negative side.
    pub v: usize,
    /// Upper bound on `r[u] − r[v]`.
    pub bound: i64,
}

impl Constraint {
    /// Creates a constraint `r[u] − r[v] ≤ bound`.
    pub fn new(u: usize, v: usize, bound: i64) -> Self {
        Self { u, v, bound }
    }
}

/// Error returned by [`solve_dual_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DualError {
    /// The constraint system itself is infeasible (negative cycle).
    Infeasible,
    /// The objective is unbounded below (the dual flow problem is
    /// infeasible: some imbalance cannot be routed).
    Unbounded,
    /// A variable index in a constraint or cost vector was out of range.
    VariableOutOfRange(usize),
}

impl fmt::Display for DualError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DualError::Infeasible => write!(f, "constraint system is infeasible"),
            DualError::Unbounded => write!(f, "objective is unbounded below"),
            DualError::VariableOutOfRange(i) => {
                write!(f, "variable index {i} out of range")
            }
        }
    }
}

impl std::error::Error for DualError {}

/// Solves `min Σ cost[v]·r[v]  s.t.  r[u] − r[v] ≤ bound` over integers.
///
/// `num_vars` is the number of `r` variables; every constraint and cost
/// index must be `< num_vars`. Duplicate `(u, v)` constraints are merged by
/// keeping the tightest bound. For retiming objectives the costs always sum
/// to zero; if they do not, a uniform shift of every variable changes the
/// objective while keeping every difference constraint satisfied, so the
/// program is unbounded and this function reports it as such.
///
/// Returns the optimal assignment `r` (anchored so `min r = 0`; only the
/// differences matter to retiming) and the optimal objective value.
///
/// # Errors
///
/// * [`DualError::Infeasible`] if the constraints admit no solution.
/// * [`DualError::Unbounded`] if the objective has no finite minimum.
/// * [`DualError::VariableOutOfRange`] for a bad index.
///
/// # Examples
///
/// ```
/// use lacr_mcmf::{solve_dual_program, Constraint};
///
/// // minimise r0 - r1  with  r0 - r1 <= 3  and  r1 - r0 <= 0
/// let (r, obj) = solve_dual_program(
///     2,
///     &[1, -1],
///     &[Constraint::new(0, 1, 3), Constraint::new(1, 0, 0)],
/// )?;
/// assert_eq!(obj, 0);
/// assert!(r[0] - r[1] <= 3 && r[1] - r[0] <= 0);
/// # Ok::<(), lacr_mcmf::DualError>(())
/// ```
pub fn solve_dual_program(
    num_vars: usize,
    cost: &[i64],
    constraints: &[Constraint],
) -> Result<(Vec<i64>, i64), DualError> {
    if cost.len() != num_vars {
        return Err(DualError::VariableOutOfRange(cost.len()));
    }
    for c in constraints {
        if c.u >= num_vars {
            return Err(DualError::VariableOutOfRange(c.u));
        }
        if c.v >= num_vars {
            return Err(DualError::VariableOutOfRange(c.v));
        }
    }
    // Feasibility first: an infeasible system must be reported as such, not
    // as an unroutable flow.
    let feas = DifferenceConstraints::new(num_vars, constraints.iter().copied());
    if feas.solve().is_none() {
        return Err(DualError::Infeasible);
    }
    if cost.iter().sum::<i64>() != 0 {
        return Err(DualError::Unbounded);
    }

    // Merge duplicate (u, v) arcs, keeping the minimum bound: only the
    // tightest constraint binds, and the dual flow may route any amount
    // through it.
    let mut merged: std::collections::HashMap<(usize, usize), i64> =
        std::collections::HashMap::with_capacity(constraints.len());
    for c in constraints {
        if c.u == c.v {
            // bound < 0 was already rejected by the feasibility check.
            continue;
        }
        merged
            .entry((c.u, c.v))
            .and_modify(|b| *b = (*b).min(c.bound))
            .or_insert(c.bound);
    }

    // Dual transshipment: one flow node per variable, one arc per merged
    // constraint (u -> v) with cost `bound` and infinite capacity; node v
    // must have (inflow − outflow) = cost[v].
    let mut flow = MinCostFlow::new();
    let nodes: Vec<NodeId> = (0..num_vars).map(|_| flow.add_node()).collect();
    for (&(u, v), &b) in &merged {
        flow.add_arc(nodes[u], nodes[v], i64::MAX / 4, b);
    }
    for (v, &c) in cost.iter().enumerate() {
        flow.set_imbalance(nodes[v], c);
    }
    let sol = match flow.solve() {
        Ok(s) => s,
        Err(FlowError::Infeasible | FlowError::NegativeCycle) => return Err(DualError::Unbounded),
    };

    // Complementary slackness: with potentials π from the final shortest
    // path computation, every residual arc has non-negative reduced cost
    // `b + π_u − π_v ≥ 0`, i.e. r = −π satisfies `r_u − r_v ≤ b`.
    let mut r: Vec<i64> = nodes.iter().map(|&n| -sol.potential(n)).collect();
    // Anchor: shift so the minimum is zero (differences are what matter).
    if let Some(&m) = r.iter().min() {
        for x in &mut r {
            *x -= m;
        }
    }
    let obj = cost.iter().zip(&r).map(|(&c, &x)| c * x).sum();
    debug_assert!(
        constraints.iter().all(|c| r[c.u] - r[c.v] <= c.bound),
        "dual potentials violate a primal constraint"
    );
    Ok((r, obj))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_program_simple_chain() {
        let cons = [
            Constraint::new(0, 1, 2),
            Constraint::new(1, 2, 2),
            Constraint::new(2, 0, 0),
        ];
        let (r, obj) = solve_dual_program(3, &[1, 0, -1], &cons).unwrap();
        for c in &cons {
            assert!(r[c.u] - r[c.v] <= c.bound);
        }
        // minimise r0 − r2 subject to r2 − r0 ≤ 0, so the optimum is 0.
        assert_eq!(obj, 0);
    }

    #[test]
    fn dual_program_forced_positive() {
        // r0 − r1 ≥ 1 encoded as r1 − r0 ≤ −1; minimise r0 − r1 → optimum 1.
        let cons = [Constraint::new(1, 0, -1), Constraint::new(0, 1, 5)];
        let (r, obj) = solve_dual_program(2, &[1, -1], &cons).unwrap();
        assert!(r[1] - r[0] <= -1);
        assert_eq!(obj, 1);
    }

    #[test]
    fn dual_program_detects_infeasible() {
        let cons = [Constraint::new(0, 1, -1), Constraint::new(1, 0, -1)];
        assert_eq!(
            solve_dual_program(2, &[1, -1], &cons),
            Err(DualError::Infeasible)
        );
    }

    #[test]
    fn dual_program_detects_unbounded_cost_sum() {
        let cons = [Constraint::new(0, 1, 1)];
        assert_eq!(
            solve_dual_program(2, &[1, 0], &cons),
            Err(DualError::Unbounded)
        );
    }

    #[test]
    fn dual_program_unbounded_direction() {
        // minimise r0 − r1 with only r0 − r1 ≤ 3: can push to −∞.
        let cons = [Constraint::new(0, 1, 3)];
        assert_eq!(
            solve_dual_program(2, &[1, -1], &cons),
            Err(DualError::Unbounded)
        );
    }

    #[test]
    fn dual_program_rejects_bad_index() {
        let cons = [Constraint::new(0, 7, 3)];
        assert_eq!(
            solve_dual_program(2, &[1, -1], &cons),
            Err(DualError::VariableOutOfRange(7))
        );
    }

    #[test]
    fn dual_program_merges_parallel_constraints() {
        // Two parallel (0,1) constraints: the tighter (bound 1) governs.
        let cons = [
            Constraint::new(0, 1, 5),
            Constraint::new(0, 1, 1),
            Constraint::new(1, 0, 0),
        ];
        let (r, _) = solve_dual_program(2, &[-1, 1], &cons).unwrap();
        assert!(r[0] - r[1] <= 1);
        // maximise r0 − r1 (cost −1,1) → hit the tight bound exactly.
        assert_eq!(r[0] - r[1], 1);
    }

    #[test]
    fn dual_program_self_loop_nonnegative_ok() {
        let cons = [
            Constraint::new(0, 0, 0),
            Constraint::new(0, 1, 1),
            Constraint::new(1, 0, 0),
        ];
        let (r, _) = solve_dual_program(2, &[1, -1], &cons).unwrap();
        assert!(r[0] - r[1] <= 1);
    }

    #[test]
    fn dual_program_self_loop_negative_infeasible() {
        let cons = [Constraint::new(0, 0, -1)];
        assert_eq!(
            solve_dual_program(1, &[0], &cons),
            Err(DualError::Infeasible)
        );
    }

    #[test]
    fn dual_program_diamond_prefers_cheap_side() {
        // Diamond 0→{1,2}→3 with a cycle closure; minimise r1 − r2 pressure.
        let cons = [
            Constraint::new(0, 1, 1),
            Constraint::new(1, 0, 0),
            Constraint::new(0, 2, 4),
            Constraint::new(2, 0, 0),
            Constraint::new(1, 3, 2),
            Constraint::new(3, 1, 0),
            Constraint::new(2, 3, 2),
            Constraint::new(3, 2, 0),
        ];
        // objective: maximise r0 − r3 → cost (−1, 0, 0, 1)
        let (r, obj) = solve_dual_program(4, &[-1, 0, 0, 1], &cons).unwrap();
        for c in &cons {
            assert!(r[c.u] - r[c.v] <= c.bound, "violated {c:?} with r={r:?}");
        }
        // r0 − r3 ≤ min(1 + 2, 4 + 2) = 3, and achievable.
        assert_eq!(obj, -3);
    }

    #[test]
    fn dual_program_zero_cost_returns_feasible() {
        let cons = [Constraint::new(0, 1, 1), Constraint::new(1, 0, 2)];
        let (r, obj) = solve_dual_program(2, &[0, 0], &cons).unwrap();
        assert_eq!(obj, 0);
        assert!(r[0] - r[1] <= 1 && r[1] - r[0] <= 2);
    }
}
