//! Successive-shortest-path minimum-cost flow with Johnson potentials.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Opaque identifier of a flow-network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// The raw index of the node (insertion order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an arc as returned by [`MinCostFlow::add_arc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArcId(usize);

/// Error produced by [`MinCostFlow::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowError {
    /// The node imbalances cannot all be satisfied by any flow.
    Infeasible,
    /// The network contains a negative-cost cycle of positive capacity, so
    /// the minimum cost is unbounded.
    NegativeCycle,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Infeasible => write!(f, "flow imbalances cannot be satisfied"),
            FlowError::NegativeCycle => {
                write!(f, "network contains a negative-cost cycle")
            }
        }
    }
}

impl std::error::Error for FlowError {}

#[derive(Debug, Clone)]
struct HalfArc {
    to: usize,
    cap: i64,
    cost: i64,
    /// Index of the paired reverse half-arc in `arcs`.
    rev: usize,
}

/// A minimum-cost flow problem over a directed network with per-node
/// imbalances.
///
/// A node with imbalance `b > 0` must receive `b` more units than it sends
/// (a consumer); `b < 0` marks a producer. [`MinCostFlow::solve`] finds the
/// cheapest flow satisfying every imbalance, or reports infeasibility.
///
/// # Examples
///
/// ```
/// use lacr_mcmf::MinCostFlow;
///
/// let mut net = MinCostFlow::new();
/// let a = net.add_node();
/// let b = net.add_node();
/// net.add_arc(a, b, 10, 3);
/// net.set_imbalance(a, -4); // a produces 4 units
/// net.set_imbalance(b, 4); // b consumes 4 units
/// let sol = net.solve()?;
/// assert_eq!(sol.total_cost(), 12);
/// # Ok::<(), lacr_mcmf::FlowError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MinCostFlow {
    /// Adjacency lists of half-arc indices.
    adj: Vec<Vec<usize>>,
    arcs: Vec<HalfArc>,
    imbalance: Vec<i64>,
    /// Insertion-order list mapping [`ArcId`] to forward half-arc index.
    user_arcs: Vec<usize>,
}

impl MinCostFlow {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of user-added arcs.
    pub fn num_arcs(&self) -> usize {
        self.user_arcs.len()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.imbalance.push(0);
        NodeId(self.adj.len() - 1)
    }

    /// Adds a directed arc `from → to` with the given capacity and per-unit
    /// cost. Capacity must be non-negative.
    ///
    /// # Panics
    ///
    /// Panics if `cap < 0` or either endpoint does not belong to this
    /// network.
    pub fn add_arc(&mut self, from: NodeId, to: NodeId, cap: i64, cost: i64) -> ArcId {
        assert!(cap >= 0, "arc capacity must be non-negative");
        assert!(from.0 < self.adj.len() && to.0 < self.adj.len());
        let fwd = self.arcs.len();
        let bwd = fwd + 1;
        self.arcs.push(HalfArc {
            to: to.0,
            cap,
            cost,
            rev: bwd,
        });
        self.arcs.push(HalfArc {
            to: from.0,
            cap: 0,
            cost: -cost,
            rev: fwd,
        });
        self.adj[from.0].push(fwd);
        self.adj[to.0].push(bwd);
        self.user_arcs.push(fwd);
        ArcId(self.user_arcs.len() - 1)
    }

    /// Sets the imbalance of `node`: positive = must receive that much net
    /// inflow, negative = must emit that much net outflow.
    pub fn set_imbalance(&mut self, node: NodeId, imbalance: i64) {
        self.imbalance[node.0] = imbalance;
    }

    /// Solves the problem.
    ///
    /// # Errors
    ///
    /// * [`FlowError::Infeasible`] if the imbalances cannot be satisfied
    ///   (including when they do not sum to zero).
    /// * [`FlowError::NegativeCycle`] if the network has a negative-cost
    ///   cycle with positive capacity.
    pub fn solve(&self) -> Result<FlowSolution, FlowError> {
        if self.imbalance.iter().sum::<i64>() != 0 {
            return Err(FlowError::Infeasible);
        }
        let mut arcs = self.arcs.clone();
        let mut adj = self.adj.clone();
        let n = self.adj.len();

        // Initial potentials from a virtual source connected to every node
        // with zero cost: Bellman–Ford over positive-capacity arcs. Detects
        // negative cycles reachable anywhere.
        let mut pi = vec![0i64; n];
        for round in 0..n {
            let mut changed = false;
            for u in 0..n {
                for &ai in &adj[u] {
                    let a = &arcs[ai];
                    if a.cap > 0 && pi[u].saturating_add(a.cost) < pi[a.to] {
                        pi[a.to] = pi[u].saturating_add(a.cost);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
            if round == n.saturating_sub(1) {
                return Err(FlowError::NegativeCycle);
            }
        }

        // Super source / sink for the imbalances.
        let s = n;
        let t = n + 1;
        adj.push(Vec::new());
        adj.push(Vec::new());
        let mut pi_full = pi;
        pi_full.push(0);
        pi_full.push(*pi_full.iter().take(n).min().unwrap_or(&0));
        let mut remaining = 0i64;
        for v in 0..n {
            let b = self.imbalance[v];
            if b < 0 {
                // producer: S -> v with capacity −b
                push_arc(&mut arcs, &mut adj, s, v, -b, 0);
            } else if b > 0 {
                push_arc(&mut arcs, &mut adj, v, t, b, 0);
                remaining += b;
            }
        }

        let mut pi = pi_full;
        let mut total_cost: i64 = 0;
        let nn = adj.len();
        let mut dist = vec![i64::MAX; nn];
        let mut prev_arc = vec![usize::MAX; nn];
        while remaining > 0 {
            // Dijkstra over reduced costs from s.
            dist.iter_mut().for_each(|d| *d = i64::MAX);
            prev_arc.iter_mut().for_each(|p| *p = usize::MAX);
            dist[s] = 0;
            let mut heap = BinaryHeap::new();
            heap.push(Reverse((0i64, s)));
            let mut dist_t = i64::MAX;
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                if u == t {
                    // Early exit: remaining tentative labels are ≥ d, and
                    // capping the potential update at dist[t] keeps every
                    // residual reduced cost non-negative.
                    dist_t = d;
                    break;
                }
                for &ai in &adj[u] {
                    let a = &arcs[ai];
                    if a.cap <= 0 {
                        continue;
                    }
                    let rc = a.cost + pi[u] - pi[a.to];
                    debug_assert!(rc >= 0, "negative reduced cost {rc}");
                    let nd = d + rc;
                    if nd < dist[a.to] {
                        dist[a.to] = nd;
                        prev_arc[a.to] = ai;
                        heap.push(Reverse((nd, a.to)));
                    }
                }
            }
            if dist_t == i64::MAX {
                return Err(FlowError::Infeasible);
            }
            // Update potentials, capped at dist[t] (Johnson re-weighting
            // for the early-exit variant). Unvisited nodes shift by the
            // full dist[t]: a uniform shift preserves reduced costs among
            // them and keeps arcs crossing the visited frontier
            // non-negative.
            for v in 0..nn {
                pi[v] += dist[v].min(dist_t);
            }
            // Bottleneck along the s→t path.
            let mut bottleneck = remaining;
            let mut v = t;
            while v != s {
                let ai = prev_arc[v];
                bottleneck = bottleneck.min(arcs[ai].cap);
                v = arcs[arcs[ai].rev].to;
            }
            let mut v = t;
            while v != s {
                let ai = prev_arc[v];
                arcs[ai].cap -= bottleneck;
                let rev = arcs[ai].rev;
                arcs[rev].cap += bottleneck;
                total_cost += bottleneck * arcs[ai].cost;
                v = arcs[rev].to;
            }
            remaining -= bottleneck;
        }

        // Recover clean dual potentials with one Bellman–Ford over the final
        // residual network (original costs), from a virtual source at
        // distance 0 to every original node. Optimality of the flow
        // guarantees no negative residual cycle, so this terminates.
        let mut pot = vec![0i64; n];
        for _ in 0..n {
            let mut changed = false;
            for u in 0..n {
                for &ai in &adj[u] {
                    let a = &arcs[ai];
                    if a.to >= n || u >= n {
                        continue;
                    }
                    if a.cap > 0 && pot[u].saturating_add(a.cost) < pot[a.to] {
                        pot[a.to] = pot[u].saturating_add(a.cost);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Per-arc flows: flow on a user arc equals the capacity now held by
        // its reverse half-arc.
        let flows = self
            .user_arcs
            .iter()
            .map(|&fwd| arcs[arcs[fwd].rev].cap)
            .collect();
        Ok(FlowSolution {
            total_cost,
            flows,
            potentials: pot,
        })
    }
}

fn push_arc(
    arcs: &mut Vec<HalfArc>,
    adj: &mut [Vec<usize>],
    from: usize,
    to: usize,
    cap: i64,
    cost: i64,
) {
    let fwd = arcs.len();
    let bwd = fwd + 1;
    arcs.push(HalfArc {
        to,
        cap,
        cost,
        rev: bwd,
    });
    arcs.push(HalfArc {
        to: from,
        cap: 0,
        cost: -cost,
        rev: fwd,
    });
    adj[from].push(fwd);
    adj[to].push(bwd);
}

/// The result of [`MinCostFlow::solve`].
#[derive(Debug, Clone)]
pub struct FlowSolution {
    total_cost: i64,
    flows: Vec<i64>,
    potentials: Vec<i64>,
}

impl FlowSolution {
    /// Total cost of the optimal flow.
    pub fn total_cost(&self) -> i64 {
        self.total_cost
    }

    /// Flow shipped on the `idx`-th arc (insertion order of
    /// [`MinCostFlow::add_arc`]).
    pub fn flow(&self, arc: ArcId) -> i64 {
        self.flows[arc.0]
    }

    /// Flows on every user arc in insertion order.
    pub fn flows(&self) -> &[i64] {
        &self.flows
    }

    /// Optimal dual potential of `node`: shortest-path distance in the final
    /// residual network. Every residual arc `(u, v)` with cost `c` satisfies
    /// `potential(v) ≤ potential(u) + c`, which is what retiming uses to
    /// read off an optimal labelling.
    pub fn potential(&self, node: NodeId) -> i64 {
        self.potentials[node.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_two_node() {
        let mut net = MinCostFlow::new();
        let a = net.add_node();
        let b = net.add_node();
        let arc = net.add_arc(a, b, 10, 3);
        net.set_imbalance(a, -4);
        net.set_imbalance(b, 4);
        let sol = net.solve().unwrap();
        assert_eq!(sol.total_cost(), 12);
        assert_eq!(sol.flow(arc), 4);
    }

    #[test]
    fn chooses_cheaper_path() {
        let mut net = MinCostFlow::new();
        let s = net.add_node();
        let m1 = net.add_node();
        let m2 = net.add_node();
        let t = net.add_node();
        let a1 = net.add_arc(s, m1, 5, 1);
        let a2 = net.add_arc(m1, t, 5, 1);
        let b1 = net.add_arc(s, m2, 5, 10);
        let b2 = net.add_arc(m2, t, 5, 10);
        net.set_imbalance(s, -3);
        net.set_imbalance(t, 3);
        let sol = net.solve().unwrap();
        assert_eq!(sol.total_cost(), 6);
        assert_eq!(sol.flow(a1), 3);
        assert_eq!(sol.flow(a2), 3);
        assert_eq!(sol.flow(b1), 0);
        assert_eq!(sol.flow(b2), 0);
    }

    #[test]
    fn splits_when_capacity_limits() {
        let mut net = MinCostFlow::new();
        let s = net.add_node();
        let t = net.add_node();
        let cheap = net.add_arc(s, t, 2, 1);
        let dear = net.add_arc(s, t, 10, 5);
        net.set_imbalance(s, -6);
        net.set_imbalance(t, 6);
        let sol = net.solve().unwrap();
        assert_eq!(sol.flow(cheap), 2);
        assert_eq!(sol.flow(dear), 4);
        assert_eq!(sol.total_cost(), 2 + 20);
    }

    #[test]
    fn infeasible_when_capacity_missing() {
        let mut net = MinCostFlow::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_arc(a, b, 1, 1);
        net.set_imbalance(a, -5);
        net.set_imbalance(b, 5);
        assert_eq!(net.solve().unwrap_err(), FlowError::Infeasible);
    }

    #[test]
    fn infeasible_when_imbalances_do_not_sum_to_zero() {
        let mut net = MinCostFlow::new();
        let a = net.add_node();
        net.set_imbalance(a, 1);
        assert_eq!(net.solve().unwrap_err(), FlowError::Infeasible);
    }

    #[test]
    fn negative_cycle_detected() {
        let mut net = MinCostFlow::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_arc(a, b, 5, -2);
        net.add_arc(b, a, 5, 1);
        assert_eq!(net.solve().unwrap_err(), FlowError::NegativeCycle);
    }

    #[test]
    fn negative_arc_without_cycle_ok() {
        let mut net = MinCostFlow::new();
        let s = net.add_node();
        let t = net.add_node();
        let arc = net.add_arc(s, t, 5, -3);
        net.set_imbalance(s, -2);
        net.set_imbalance(t, 2);
        let sol = net.solve().unwrap();
        assert_eq!(sol.total_cost(), -6);
        assert_eq!(sol.flow(arc), 2);
    }

    #[test]
    fn zero_demand_is_zero_cost() {
        let mut net = MinCostFlow::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_arc(a, b, 5, 7);
        let sol = net.solve().unwrap();
        assert_eq!(sol.total_cost(), 0);
    }

    #[test]
    fn potentials_certify_residual_optimality() {
        let mut net = MinCostFlow::new();
        let s = net.add_node();
        let m = net.add_node();
        let t = net.add_node();
        net.add_arc(s, m, 4, 2);
        net.add_arc(m, t, 4, 2);
        net.add_arc(s, t, 1, 1);
        net.set_imbalance(s, -3);
        net.set_imbalance(t, 3);
        let sol = net.solve().unwrap();
        // saturated cheap arc: 1·1; remaining 2 via m: 2·4 = 8.
        assert_eq!(sol.total_cost(), 9);
        // forward arcs with residual capacity must have non-negative
        // reduced cost under the returned potentials.
        let (ps, pm, pt) = (sol.potential(s), sol.potential(m), sol.potential(t));
        assert!(2 + ps - pm >= 0);
        assert!(2 + pm - pt >= 0);
    }

    #[test]
    fn multi_producer_multi_consumer() {
        let mut net = MinCostFlow::new();
        let p1 = net.add_node();
        let p2 = net.add_node();
        let c1 = net.add_node();
        let c2 = net.add_node();
        net.add_arc(p1, c1, 10, 1);
        net.add_arc(p1, c2, 10, 4);
        net.add_arc(p2, c1, 10, 3);
        net.add_arc(p2, c2, 10, 1);
        net.set_imbalance(p1, -5);
        net.set_imbalance(p2, -5);
        net.set_imbalance(c1, 5);
        net.set_imbalance(c2, 5);
        let sol = net.solve().unwrap();
        assert_eq!(sol.total_cost(), 10); // p1→c1 ×5, p2→c2 ×5
    }
}
