//! Incremental solver for a *family* of dual programs sharing one
//! constraint set.
//!
//! LAC-retiming solves a series of weighted min-area retimings whose
//! constraints never change — only the objective coefficients (node
//! imbalances of the dual transshipment) move a little each round.
//! [`DualSolver`] keeps the residual network and Johnson potentials
//! between solves: because arc costs are fixed, the previous optimal flow
//! remains reduced-cost optimal, and each new solve only has to route the
//! *difference* between the old and new imbalances. After the first round
//! this is typically a tiny fraction of a from-scratch solve.

use crate::difference::DifferenceConstraints;
use crate::{Constraint, DualError};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    cap: i64,
    cost: i64,
    rev: usize,
}

/// An incremental solver for
/// `min Σ cost[v]·r[v]  s.t.  r[u] − r[v] ≤ bound` with a fixed constraint
/// set and varying costs.
///
/// # Examples
///
/// ```
/// use lacr_mcmf::{Constraint, DualSolver};
///
/// let cons = [Constraint::new(0, 1, 3), Constraint::new(1, 0, 0)];
/// let mut solver = DualSolver::new(2, &cons)?;
/// let (r1, obj1) = solver.solve(&[1, -1])?;
/// assert_eq!(obj1, 0);
/// assert!(r1[0] - r1[1] <= 3 && r1[1] - r1[0] <= 0);
/// // Re-solve with flipped costs: warm-started, same constraints.
/// let (r2, obj2) = solver.solve(&[-1, 1])?;
/// assert_eq!(obj2, -3);
/// assert_eq!(r2[0] - r2[1], 3);
/// # Ok::<(), lacr_mcmf::DualError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DualSolver {
    n: usize,
    /// Residual arcs: interior (constraint) arcs only persist; s/t arcs
    /// are appended per solve and truncated afterwards.
    arcs: Vec<Arc>,
    adj: Vec<Vec<usize>>,
    pi: Vec<i64>,
    /// Imbalance satisfied by the current interior flow.
    cur: Vec<i64>,
    /// Pristine copies for rebuilding after a failed solve (a partial
    /// routing leaves the flow inconsistent with `cur`).
    arcs0: Vec<Arc>,
    pi0: Vec<i64>,
}

const INF_CAP: i64 = i64::MAX / 4;

impl DualSolver {
    /// Builds the solver: verifies feasibility of the constraint system
    /// once, merges parallel constraints and prepares the flow network.
    ///
    /// # Errors
    ///
    /// [`DualError::Infeasible`] when the constraints have no solution;
    /// [`DualError::VariableOutOfRange`] for a bad index.
    pub fn new(num_vars: usize, constraints: &[Constraint]) -> Result<Self, DualError> {
        for c in constraints {
            if c.u >= num_vars {
                return Err(DualError::VariableOutOfRange(c.u));
            }
            if c.v >= num_vars {
                return Err(DualError::VariableOutOfRange(c.v));
            }
        }
        let feas = DifferenceConstraints::new(num_vars, constraints.iter().copied());
        let potentials = feas.solve().ok_or(DualError::Infeasible)?;

        // BTreeMap, not HashMap: the residual arcs are laid out in map
        // iteration order, and tie-breaks during path search follow
        // adjacency order — a hash-seeded layout would leak into which of
        // several optimal duals is returned, run to run.
        let mut merged: BTreeMap<(usize, usize), i64> = BTreeMap::new();
        for c in constraints {
            if c.u == c.v {
                continue; // non-negative self-bound, vacuous
            }
            merged
                .entry((c.u, c.v))
                .and_modify(|b| *b = (*b).min(c.bound))
                .or_insert(c.bound);
        }

        // Nodes 0..n are variables; n = super source, n+1 = super sink.
        let nn = num_vars + 2;
        let mut arcs = Vec::with_capacity(2 * merged.len());
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nn];
        for (&(u, v), &b) in &merged {
            let fwd = arcs.len();
            arcs.push(Arc {
                to: v,
                cap: INF_CAP,
                cost: b,
                rev: fwd + 1,
            });
            arcs.push(Arc {
                to: u,
                cap: 0,
                cost: -b,
                rev: fwd,
            });
            adj[u].push(fwd);
            adj[v].push(fwd + 1);
        }
        // Initial potentials: the Bellman–Ford solution of the constraint
        // system gives distances `r` with `r_u − r_v ≤ b` for every arc,
        // i.e. `b + (−r_u) − (−r_v) ≥ 0`: π = −r is dual-feasible.
        let mut pi: Vec<i64> = potentials.iter().map(|&r| -r).collect();
        pi.push(0); // s, fixed up per solve
        pi.push(0); // t, fixed up per solve
        Ok(Self {
            n: num_vars,
            arcs0: arcs.clone(),
            pi0: pi.clone(),
            arcs,
            adj,
            pi,
            cur: vec![0; num_vars],
        })
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Solves for the given cost vector, warm-starting from the previous
    /// solution.
    ///
    /// Returns the optimal assignment (anchored at `min r = 0`) and its
    /// objective value.
    ///
    /// # Errors
    ///
    /// [`DualError::Unbounded`] when the objective has no finite minimum
    /// (costs not summing to zero, or an imbalance the constraint arcs
    /// cannot route).
    ///
    /// # Panics
    ///
    /// Panics if `cost.len() != num_vars()`.
    pub fn solve(&mut self, cost: &[i64]) -> Result<(Vec<i64>, i64), DualError> {
        assert_eq!(cost.len(), self.n);
        if cost.iter().sum::<i64>() != 0 {
            return Err(DualError::Unbounded);
        }
        let s = self.n;
        let t = self.n + 1;

        // Deltas to route on top of the existing interior flow.
        let interior_arcs = self.arcs.len();
        let mut touched: Vec<(usize, usize)> = Vec::new(); // (node, old adj len)
        let mut remaining = 0i64;
        let mut pi_s = i64::MIN;
        let mut pi_t = i64::MAX;
        touched.push((s, self.adj[s].len()));
        touched.push((t, self.adj[t].len()));
        for (v, (&c, &cur)) in cost.iter().zip(&self.cur).enumerate() {
            let d = c - cur;
            if d == 0 {
                continue;
            }
            touched.push((v, self.adj[v].len()));
            let fwd = self.arcs.len();
            if d < 0 {
                // v must shed inflow: s → v supplies the delta.
                self.arcs.push(Arc {
                    to: v,
                    cap: -d,
                    cost: 0,
                    rev: fwd + 1,
                });
                self.arcs.push(Arc {
                    to: s,
                    cap: 0,
                    cost: 0,
                    rev: fwd,
                });
                self.adj[s].push(fwd);
                self.adj[v].push(fwd + 1);
                pi_s = pi_s.max(self.pi[v]);
            } else {
                self.arcs.push(Arc {
                    to: t,
                    cap: d,
                    cost: 0,
                    rev: fwd + 1,
                });
                self.arcs.push(Arc {
                    to: v,
                    cap: 0,
                    cost: 0,
                    rev: fwd,
                });
                self.adj[v].push(fwd);
                self.adj[t].push(fwd + 1);
                pi_t = pi_t.min(self.pi[v]);
                remaining += d;
            }
        }
        // Dual-feasible potentials for the fresh s/t arcs: the zero-cost
        // arc s→v needs π_s ≥ π_v, and v→t needs π_t ≤ π_v.
        if pi_s != i64::MIN {
            self.pi[s] = pi_s;
        }
        if pi_t != i64::MAX {
            self.pi[t] = pi_t;
        }

        let result = self.route(s, t, remaining);
        // Truncate the temporary s/t arcs whatever happened.
        for &(v, len) in &touched {
            self.adj[v].truncate(len);
        }
        self.arcs.truncate(interior_arcs);
        if result.is_err() {
            // A partial routing left flow inconsistent with `cur`; restore
            // the pristine network so later solves stay correct.
            self.arcs.clone_from(&self.arcs0);
            self.pi.clone_from(&self.pi0);
            self.cur.iter_mut().for_each(|c| *c = 0);
        }
        result?;

        self.cur.copy_from_slice(cost);
        let mut r: Vec<i64> = (0..self.n).map(|v| -self.pi[v]).collect();
        if let Some(&m) = r.iter().min() {
            for x in &mut r {
                *x -= m;
            }
        }
        let obj = cost.iter().zip(&r).map(|(&c, &x)| c * x).sum();
        Ok((r, obj))
    }

    /// Primal–dual min-cost routing of `remaining` units from `s` to `t`.
    ///
    /// Each *phase* runs one Dijkstra over reduced costs, makes the dual
    /// update, and then augments along as many zero-reduced-cost paths as
    /// a cursor-based DFS can find before the admissible subgraph dries
    /// up. On the dense W/D constraint networks of LAC retiming this
    /// replaces one full Dijkstra *per augmenting path* with one per
    /// phase — the number of phases is bounded by the number of distinct
    /// shortest-path costs, typically orders of magnitude smaller.
    fn route(&mut self, s: usize, t: usize, mut remaining: i64) -> Result<(), DualError> {
        let nn = self.adj.len();
        let mut dist = vec![i64::MAX; nn];
        // DFS state, reset per phase: `cur[v]` is the next adjacency slot
        // to try at `v`, `on_path` guards against zero-cost cycles.
        let mut cur = vec![0usize; nn];
        let mut on_path = vec![false; nn];
        let mut path: Vec<usize> = Vec::new();
        let mut heap: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
        // Statistics, accumulated locally (the loop is hot) and flushed
        // as counters on both exits.
        let mut augmentations = 0_u64;
        let mut phases = 0_u64;
        let mut pot_updates = 0_u64;
        let flush = |augmentations: u64, phases: u64, pot_updates: u64| {
            lacr_obs::counter!("mcmf.ssp_iterations", augmentations);
            lacr_obs::counter!("mcmf.dijkstra_phases", phases);
            lacr_obs::counter!("mcmf.potential_updates", pot_updates);
        };
        while remaining > 0 {
            phases += 1;
            dist.iter_mut().for_each(|d| *d = i64::MAX);
            dist[s] = 0;
            heap.clear();
            heap.push(Reverse((0i64, s)));
            let mut dist_t = i64::MAX;
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                if u == t {
                    dist_t = d;
                    break;
                }
                for &ai in &self.adj[u] {
                    let a = &self.arcs[ai];
                    if a.cap <= 0 {
                        continue;
                    }
                    let rc = a.cost + self.pi[u] - self.pi[a.to];
                    debug_assert!(rc >= 0, "negative reduced cost {rc}");
                    let nd = d + rc;
                    if nd < dist[a.to] {
                        dist[a.to] = nd;
                        heap.push(Reverse((nd, a.to)));
                    }
                }
            }
            if dist_t == i64::MAX {
                flush(augmentations, phases, pot_updates);
                return Err(DualError::Unbounded);
            }
            for (p, &d) in self.pi.iter_mut().zip(&dist) {
                let delta = d.min(dist_t);
                if delta != 0 {
                    pot_updates += 1;
                }
                *p += delta;
            }
            // Blocking-flow sweep over the admissible subgraph (arcs with
            // capacity and zero reduced cost under the updated
            // potentials). Cursors never rewind, so each arc is inspected
            // O(1) times per phase; any admissible path the sweep misses
            // because a node was transiently on the path is picked up by
            // the next phase's fresh cursors at unchanged potentials.
            cur.iter_mut().for_each(|c| *c = 0);
            path.clear();
            on_path[s] = true;
            let mut v = s;
            while remaining > 0 {
                if v == t {
                    let mut bottleneck = remaining;
                    for &ai in &path {
                        bottleneck = bottleneck.min(self.arcs[ai].cap);
                    }
                    for &ai in &path {
                        self.arcs[ai].cap -= bottleneck;
                        let rev = self.arcs[ai].rev;
                        self.arcs[rev].cap += bottleneck;
                        on_path[self.arcs[ai].to] = false;
                    }
                    remaining -= bottleneck;
                    augmentations += 1;
                    path.clear();
                    v = s;
                    continue;
                }
                let mut advanced = false;
                while cur[v] < self.adj[v].len() {
                    let ai = self.adj[v][cur[v]];
                    let a = &self.arcs[ai];
                    if a.cap > 0 && !on_path[a.to] && a.cost + self.pi[v] - self.pi[a.to] == 0 {
                        path.push(ai);
                        on_path[a.to] = true;
                        v = a.to;
                        advanced = true;
                        break;
                    }
                    cur[v] += 1;
                }
                if advanced {
                    continue;
                }
                // Dead end: retreat one step, skipping the arc that led
                // here. At the source the phase is exhausted.
                match path.pop() {
                    Some(ai) => {
                        on_path[v] = false;
                        v = self.arcs[self.arcs[ai].rev].to;
                        cur[v] += 1;
                    }
                    None => break,
                }
            }
            on_path.iter_mut().for_each(|b| *b = false);
        }
        flush(augmentations, phases, pot_updates);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacr_prng::Rng;

    #[test]
    fn matches_one_shot_solver_on_random_instances() {
        let mut rng = Rng::seed_from_u64(5);
        for case in 0..50 {
            let n = rng.gen_range(2..6usize);
            // A ring of constraints keeps everything bounded.
            let mut cons = Vec::new();
            for i in 0..n {
                cons.push(Constraint::new(i, (i + 1) % n, rng.gen_range(0..4)));
            }
            for _ in 0..rng.gen_range(0..4) {
                cons.push(Constraint::new(
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(0..5),
                ));
            }
            let mut solver = match DualSolver::new(n, &cons) {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Several cost vectors in sequence, comparing against the
            // stateless reference each time.
            for round in 0..4 {
                let mut cost: Vec<i64> = (0..n).map(|_| rng.gen_range(-5..=5)).collect();
                let sum: i64 = cost.iter().sum();
                cost[0] -= sum;
                let warm = solver.solve(&cost);
                let reference = crate::solve_dual_program(n, &cost, &cons);
                match (warm, reference) {
                    (Ok((r, obj)), Ok((_, obj_ref))) => {
                        assert_eq!(obj, obj_ref, "case {case} round {round}");
                        for c in &cons {
                            assert!(r[c.u] - r[c.v] <= c.bound);
                        }
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    (a, b) => panic!("case {case} round {round}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn repeated_same_cost_is_stable() {
        let cons = [Constraint::new(0, 1, 2), Constraint::new(1, 0, 1)];
        let mut solver = DualSolver::new(2, &cons).unwrap();
        let (r1, o1) = solver.solve(&[3, -3]).unwrap();
        let (r2, o2) = solver.solve(&[3, -3]).unwrap();
        assert_eq!(o1, o2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn infeasible_constraints_rejected_up_front() {
        let cons = [Constraint::new(0, 1, -2), Constraint::new(1, 0, 1)];
        assert_eq!(
            DualSolver::new(2, &cons).unwrap_err(),
            DualError::Infeasible
        );
    }

    #[test]
    fn unbounded_detected_per_solve() {
        // Only one direction constrained: pushing cost along the free
        // direction is unbounded.
        let cons = [Constraint::new(0, 1, 2)];
        let mut solver = DualSolver::new(2, &cons).unwrap();
        assert_eq!(solver.solve(&[1, -1]), Err(DualError::Unbounded));
        // The solver survives the failure and can solve a bounded cost.
        let (r, obj) = solver.solve(&[-1, 1]).unwrap();
        assert_eq!(obj, -2);
        assert_eq!(r[0] - r[1], 2);
    }

    #[test]
    fn nonzero_cost_sum_rejected() {
        let cons = [Constraint::new(0, 1, 1), Constraint::new(1, 0, 0)];
        let mut solver = DualSolver::new(2, &cons).unwrap();
        assert_eq!(solver.solve(&[1, 1]), Err(DualError::Unbounded));
    }

    #[test]
    fn bad_index_rejected() {
        let cons = [Constraint::new(0, 5, 1)];
        assert_eq!(
            DualSolver::new(2, &cons).unwrap_err(),
            DualError::VariableOutOfRange(5)
        );
    }
}
