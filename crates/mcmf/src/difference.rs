//! Bellman–Ford solver for systems of difference constraints.

use crate::Constraint;

/// A system of difference constraints `r[u] − r[v] ≤ bound`, solved for
/// feasibility with Bellman–Ford.
///
/// Used by min-period retiming: a clock period `T` is feasible exactly when
/// the corresponding constraint system has a solution, and any Bellman–Ford
/// solution is a valid retiming vector.
///
/// # Examples
///
/// ```
/// use lacr_mcmf::{Constraint, DifferenceConstraints};
///
/// let sys = DifferenceConstraints::new(
///     2,
///     [Constraint::new(0, 1, 1), Constraint::new(1, 0, 0)],
/// );
/// let r = sys.solve().expect("feasible");
/// assert!(r[0] - r[1] <= 1 && r[1] - r[0] <= 0);
/// ```
#[derive(Debug, Clone)]
pub struct DifferenceConstraints {
    num_vars: usize,
    constraints: Vec<Constraint>,
}

impl DifferenceConstraints {
    /// Builds a system over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if a constraint references a variable `>= num_vars`.
    pub fn new<I: IntoIterator<Item = Constraint>>(num_vars: usize, constraints: I) -> Self {
        let constraints: Vec<Constraint> = constraints.into_iter().collect();
        for c in &constraints {
            assert!(
                c.u < num_vars && c.v < num_vars,
                "constraint {c:?} references a variable >= {num_vars}"
            );
        }
        Self {
            num_vars,
            constraints,
        }
    }

    /// Number of variables in the system.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The constraints of the system.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds one more constraint.
    ///
    /// # Panics
    ///
    /// Panics if the constraint references a variable out of range.
    pub fn push(&mut self, c: Constraint) {
        assert!(c.u < self.num_vars && c.v < self.num_vars);
        self.constraints.push(c);
    }

    /// Solves the system, returning one feasible assignment, or `None` if
    /// the system is infeasible (the constraint graph has a negative cycle).
    ///
    /// The returned assignment is the pointwise-maximum solution with all
    /// values ≤ 0 (standard single-source Bellman–Ford from a virtual
    /// source), shifted so that the minimum value is 0.
    pub fn solve(&self) -> Option<Vec<i64>> {
        self.solve_from(vec![0i64; self.num_vars])
    }

    /// Like [`Self::solve`], but warm-started from `initial` potentials —
    /// typically the solution of a *nearby* system (the previous probe of
    /// a binary search whose constraint set only shifted slightly).
    ///
    /// Sound for arbitrary `initial`: relaxation only lowers values and is
    /// exactly Bellman–Ford from a virtual source with an edge of weight
    /// `initial[v]` to each `v`, so `n − 1` full rounds still reach the
    /// fixpoint when the system is feasible, an n-th changing round still
    /// certifies a negative cycle, and *any* fixpoint satisfies every
    /// constraint. When `initial` already satisfies most constraints the
    /// loop exits after one or two rounds.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != num_vars()`.
    pub fn solve_warm(&self, initial: &[i64]) -> Option<Vec<i64>> {
        assert_eq!(initial.len(), self.num_vars);
        self.solve_from(initial.to_vec())
    }

    fn solve_from(&self, mut dist: Vec<i64>) -> Option<Vec<i64>> {
        // Constraint r_u − r_v ≤ b becomes edge v → u with weight b; dist
        // from a virtual source (dist = initial value for each vertex)
        // yields r = dist.
        let n = self.num_vars;
        if n == 0 {
            return Some(Vec::new());
        }
        // Queue-based Bellman–Ford (SPFA). The result is independent of
        // relaxation order: from a fixed initial vector the relaxation
        // operator has a unique greatest fixpoint ≤ init (the pointwise
        // min over walks), and every terminating relaxation sequence ends
        // there — so this is bit-identical to round-based Bellman–Ford,
        // just without re-scanning settled constraints. Infeasible systems
        // are the big win: the round-based loop certifies a negative cycle
        // only after `n` full passes (Θ(n·m)), while a path-length witness
        // reaches `n` edges after only a few laps of the cycle.
        //
        // CSR adjacency grouped by source `v` of the edge `v → u`.
        let m = self.constraints.len();
        let mut head = vec![0u32; n + 1];
        for c in &self.constraints {
            head[c.v + 1] += 1;
        }
        for i in 0..n {
            head[i + 1] += head[i];
        }
        let mut adj = vec![(0u32, 0i64); m];
        let mut cursor: Vec<u32> = head[..n].to_vec();
        for c in &self.constraints {
            adj[cursor[c.v] as usize] = (c.u as u32, c.bound);
            cursor[c.v] += 1;
        }
        // Every vertex starts relaxed by its virtual-source edge, so every
        // vertex starts queued with a path of one (virtual) edge. A simple
        // virtual-source path touches at most `n` real vertices, so any
        // relaxation pushing a path length past `n` has revisited a vertex
        // along a strictly improving walk — a negative cycle. Feasible
        // systems can never trip this, so detection is exact.
        let mut queue: std::collections::VecDeque<u32> = (0..n as u32).collect();
        let mut in_queue = vec![true; n];
        let mut path_len = vec![1u32; n];
        let mut relaxations = 0_u64;
        let mut feasible = true;
        'relax: while let Some(v) = queue.pop_front() {
            in_queue[v as usize] = false;
            let dv = dist[v as usize];
            let lv = path_len[v as usize];
            for &(u, b) in &adj[head[v as usize] as usize..head[v as usize + 1] as usize] {
                let u = u as usize;
                let cand = dv.saturating_add(b);
                if cand < dist[u] {
                    dist[u] = cand;
                    path_len[u] = lv + 1;
                    relaxations += 1;
                    if path_len[u] as usize > n {
                        feasible = false; // negative cycle
                        break 'relax;
                    }
                    if !in_queue[u] {
                        in_queue[u] = true;
                        queue.push_back(u as u32);
                    }
                }
            }
        }
        lacr_obs::counter!("mcmf.bf_relaxations", relaxations);
        if !feasible {
            return None;
        }
        // One extra scan to be safe against the boundary case n == 1 etc.
        if self
            .constraints
            .iter()
            .any(|c| dist[c.v].saturating_add(c.bound) < dist[c.u])
        {
            return None;
        }
        let m = *dist.iter().min().unwrap_or(&0);
        for d in &mut dist {
            *d -= m;
        }
        Some(dist)
    }

    /// Returns `true` when the system has at least one solution.
    pub fn is_feasible(&self) -> bool {
        self.solve().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_system_is_feasible() {
        let sys = DifferenceConstraints::new(3, []);
        assert_eq!(sys.solve().unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn zero_vars() {
        let sys = DifferenceConstraints::new(0, []);
        assert!(sys.solve().unwrap().is_empty());
    }

    #[test]
    fn simple_feasible() {
        let sys = DifferenceConstraints::new(
            3,
            [
                Constraint::new(0, 1, 3),
                Constraint::new(1, 2, -2),
                Constraint::new(2, 0, 1),
            ],
        );
        let r = sys.solve().expect("feasible");
        assert!(r[0] - r[1] <= 3);
        assert!(r[1] - r[2] <= -2);
        assert!(r[2] - r[0] <= 1);
    }

    #[test]
    fn negative_cycle_detected() {
        let sys =
            DifferenceConstraints::new(2, [Constraint::new(0, 1, -1), Constraint::new(1, 0, 0)]);
        assert!(sys.solve().is_none());
        assert!(!sys.is_feasible());
    }

    #[test]
    fn negative_self_loop_detected() {
        let sys = DifferenceConstraints::new(1, [Constraint::new(0, 0, -1)]);
        assert!(sys.solve().is_none());
    }

    #[test]
    fn push_extends_system() {
        let mut sys = DifferenceConstraints::new(2, [Constraint::new(0, 1, 5)]);
        assert!(sys.is_feasible());
        sys.push(Constraint::new(1, 0, -6));
        assert!(!sys.is_feasible());
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let _ = DifferenceConstraints::new(1, [Constraint::new(0, 1, 0)]);
    }

    #[test]
    fn long_chain_of_tight_constraints() {
        // r0 ≤ r1 − 1 ≤ r2 − 2 ≤ ... forcing a spread of n−1.
        let n = 64;
        let mut cons = Vec::new();
        for i in 0..n - 1 {
            cons.push(Constraint::new(i, i + 1, -1));
        }
        let sys = DifferenceConstraints::new(n, cons);
        let r = sys.solve().expect("feasible");
        for i in 0..n - 1 {
            assert!(r[i] - r[i + 1] <= -1);
        }
        assert!(r[n - 1] - r[0] >= (n - 1) as i64);
    }

    #[test]
    fn warm_start_from_previous_solution_is_valid() {
        let cons = [
            Constraint::new(0, 1, 3),
            Constraint::new(1, 2, -2),
            Constraint::new(2, 0, 1),
        ];
        let sys = DifferenceConstraints::new(3, cons);
        let r = sys.solve().expect("feasible");
        // Re-solving a tightened system from the previous solution must
        // still produce a valid assignment of the *new* system.
        let mut tightened = sys.clone();
        tightened.push(Constraint::new(0, 2, -1));
        let w = tightened.solve_warm(&r).expect("still feasible");
        for c in tightened.constraints() {
            assert!(w[c.u] - w[c.v] <= c.bound, "violated {c:?}");
        }
    }

    #[test]
    fn warm_start_detects_infeasibility() {
        let sys =
            DifferenceConstraints::new(2, [Constraint::new(0, 1, -1), Constraint::new(1, 0, 0)]);
        assert!(sys.solve_warm(&[5, -7]).is_none());
    }

    #[test]
    fn warm_start_from_arbitrary_garbage_matches_cold_feasibility() {
        // Feasibility must not depend on the starting potentials.
        let cons = [
            Constraint::new(0, 1, 2),
            Constraint::new(1, 2, 0),
            Constraint::new(2, 0, -2),
        ];
        let sys = DifferenceConstraints::new(3, cons);
        for init in [[0, 0, 0], [100, -100, 3], [i64::MAX / 8, 0, -1]] {
            let r = sys.solve_warm(&init).expect("feasible from any start");
            for c in sys.constraints() {
                assert!(r[c.u] - r[c.v] <= c.bound);
            }
        }
    }

    /// The queue-based solver must return *exactly* what the classic
    /// round-based Bellman–Ford returns — same feasibility verdict, same
    /// vector — on random systems from both sides of the feasibility
    /// boundary, cold and warm-started. (The solution is the unique
    /// greatest fixpoint of the relaxation operator below the initial
    /// vector, so relaxation order must not matter; this pins it.)
    #[test]
    fn spfa_matches_round_based_reference() {
        fn reference(sys: &DifferenceConstraints, mut dist: Vec<i64>) -> Option<Vec<i64>> {
            let n = sys.num_vars();
            for round in 0..n {
                let mut changed = false;
                for c in sys.constraints() {
                    let cand = dist[c.v].saturating_add(c.bound);
                    if cand < dist[c.u] {
                        dist[c.u] = cand;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
                if round == n - 1 {
                    return None;
                }
            }
            let m = *dist.iter().min().unwrap_or(&0);
            Some(dist.iter().map(|d| d - m).collect())
        }
        // Deterministic xorshift so the cases are replayable.
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut infeasible_seen = 0;
        for _ in 0..200 {
            let n = (next() % 12 + 1) as usize;
            let m = (next() % (4 * n as u64 + 1)) as usize;
            let cons: Vec<Constraint> = (0..m)
                .map(|_| {
                    Constraint::new(
                        (next() % n as u64) as usize,
                        (next() % n as u64) as usize,
                        (next() % 9) as i64 - 3,
                    )
                })
                .collect();
            let sys = DifferenceConstraints::new(n, cons);
            let init: Vec<i64> = (0..n).map(|_| (next() % 21) as i64 - 10).collect();
            let cold = sys.solve();
            assert_eq!(cold, reference(&sys, vec![0; n]));
            let warm = sys.solve_warm(&init);
            assert_eq!(warm, reference(&sys, init));
            assert_eq!(cold.is_some(), warm.is_some(), "verdict differs by start");
            if cold.is_none() {
                infeasible_seen += 1;
            }
        }
        assert!(infeasible_seen > 20, "want both sides: {infeasible_seen}");
    }

    #[test]
    fn solution_is_shifted_to_zero_minimum() {
        let sys =
            DifferenceConstraints::new(2, [Constraint::new(0, 1, -5), Constraint::new(1, 0, 10)]);
        let r = sys.solve().unwrap();
        assert_eq!(*r.iter().min().unwrap(), 0);
    }
}
