//! Bellman–Ford solver for systems of difference constraints.

use crate::Constraint;

/// A system of difference constraints `r[u] − r[v] ≤ bound`, solved for
/// feasibility with Bellman–Ford.
///
/// Used by min-period retiming: a clock period `T` is feasible exactly when
/// the corresponding constraint system has a solution, and any Bellman–Ford
/// solution is a valid retiming vector.
///
/// # Examples
///
/// ```
/// use lacr_mcmf::{Constraint, DifferenceConstraints};
///
/// let sys = DifferenceConstraints::new(
///     2,
///     [Constraint::new(0, 1, 1), Constraint::new(1, 0, 0)],
/// );
/// let r = sys.solve().expect("feasible");
/// assert!(r[0] - r[1] <= 1 && r[1] - r[0] <= 0);
/// ```
#[derive(Debug, Clone)]
pub struct DifferenceConstraints {
    num_vars: usize,
    constraints: Vec<Constraint>,
}

impl DifferenceConstraints {
    /// Builds a system over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if a constraint references a variable `>= num_vars`.
    pub fn new<I: IntoIterator<Item = Constraint>>(num_vars: usize, constraints: I) -> Self {
        let constraints: Vec<Constraint> = constraints.into_iter().collect();
        for c in &constraints {
            assert!(
                c.u < num_vars && c.v < num_vars,
                "constraint {c:?} references a variable >= {num_vars}"
            );
        }
        Self {
            num_vars,
            constraints,
        }
    }

    /// Number of variables in the system.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The constraints of the system.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds one more constraint.
    ///
    /// # Panics
    ///
    /// Panics if the constraint references a variable out of range.
    pub fn push(&mut self, c: Constraint) {
        assert!(c.u < self.num_vars && c.v < self.num_vars);
        self.constraints.push(c);
    }

    /// Solves the system, returning one feasible assignment, or `None` if
    /// the system is infeasible (the constraint graph has a negative cycle).
    ///
    /// The returned assignment is the pointwise-maximum solution with all
    /// values ≤ 0 (standard single-source Bellman–Ford from a virtual
    /// source), shifted so that the minimum value is 0.
    pub fn solve(&self) -> Option<Vec<i64>> {
        // Constraint r_u − r_v ≤ b becomes edge v → u with weight b; dist
        // from a virtual source (dist 0 to all) yields r = dist.
        let n = self.num_vars;
        if n == 0 {
            return Some(Vec::new());
        }
        let mut dist = vec![0i64; n];
        // Bellman–Ford with early exit; the virtual source is simulated by
        // the all-zeros initialisation.
        let mut relaxations = 0_u64;
        let mut feasible = true;
        for round in 0..n {
            let mut changed = false;
            for c in &self.constraints {
                let cand = dist[c.v].saturating_add(c.bound);
                if cand < dist[c.u] {
                    dist[c.u] = cand;
                    changed = true;
                    relaxations += 1;
                }
            }
            if !changed {
                break;
            }
            if round == n - 1 && changed {
                feasible = false; // negative cycle
                break;
            }
        }
        lacr_obs::counter!("mcmf.bf_relaxations", relaxations);
        if !feasible {
            return None;
        }
        // One extra scan to be safe against the boundary case n == 1 etc.
        if self
            .constraints
            .iter()
            .any(|c| dist[c.v].saturating_add(c.bound) < dist[c.u])
        {
            return None;
        }
        let m = *dist.iter().min().unwrap_or(&0);
        for d in &mut dist {
            *d -= m;
        }
        Some(dist)
    }

    /// Returns `true` when the system has at least one solution.
    pub fn is_feasible(&self) -> bool {
        self.solve().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_system_is_feasible() {
        let sys = DifferenceConstraints::new(3, []);
        assert_eq!(sys.solve().unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn zero_vars() {
        let sys = DifferenceConstraints::new(0, []);
        assert!(sys.solve().unwrap().is_empty());
    }

    #[test]
    fn simple_feasible() {
        let sys = DifferenceConstraints::new(
            3,
            [
                Constraint::new(0, 1, 3),
                Constraint::new(1, 2, -2),
                Constraint::new(2, 0, 1),
            ],
        );
        let r = sys.solve().expect("feasible");
        assert!(r[0] - r[1] <= 3);
        assert!(r[1] - r[2] <= -2);
        assert!(r[2] - r[0] <= 1);
    }

    #[test]
    fn negative_cycle_detected() {
        let sys =
            DifferenceConstraints::new(2, [Constraint::new(0, 1, -1), Constraint::new(1, 0, 0)]);
        assert!(sys.solve().is_none());
        assert!(!sys.is_feasible());
    }

    #[test]
    fn negative_self_loop_detected() {
        let sys = DifferenceConstraints::new(1, [Constraint::new(0, 0, -1)]);
        assert!(sys.solve().is_none());
    }

    #[test]
    fn push_extends_system() {
        let mut sys = DifferenceConstraints::new(2, [Constraint::new(0, 1, 5)]);
        assert!(sys.is_feasible());
        sys.push(Constraint::new(1, 0, -6));
        assert!(!sys.is_feasible());
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let _ = DifferenceConstraints::new(1, [Constraint::new(0, 1, 0)]);
    }

    #[test]
    fn long_chain_of_tight_constraints() {
        // r0 ≤ r1 − 1 ≤ r2 − 2 ≤ ... forcing a spread of n−1.
        let n = 64;
        let mut cons = Vec::new();
        for i in 0..n - 1 {
            cons.push(Constraint::new(i, i + 1, -1));
        }
        let sys = DifferenceConstraints::new(n, cons);
        let r = sys.solve().expect("feasible");
        for i in 0..n - 1 {
            assert!(r[i] - r[i + 1] <= -1);
        }
        assert!(r[n - 1] - r[0] >= (n - 1) as i64);
    }

    #[test]
    fn solution_is_shifted_to_zero_minimum() {
        let sys =
            DifferenceConstraints::new(2, [Constraint::new(0, 1, -5), Constraint::new(1, 0, 10)]);
        let r = sys.solve().unwrap();
        assert_eq!(*r.iter().min().unwrap(), 0);
    }
}
