//! LAC-retiming and the interconnect-planning pipeline — the paper's
//! primary contribution (Lu & Koh, DATE 2003).
//!
//! * [`expand`](mod@expand) — interconnect retiming-graph expansion (§3.2): routed
//!   connections become chains of interconnect units;
//! * [`lac`] — local area constrained retiming (§4.2): the adaptive
//!   weighted min-area loop, plus per-tile violation accounting;
//! * [`planner`] — the full Figure-1 pipeline (partition → floorplan →
//!   route → repeaters → retime) with the floorplan-expansion feedback
//!   iteration;
//! * [`experiment`] — the Table-1 driver: `T_init`, `T_min`,
//!   `T_clk = T_min + 0.2 (T_init − T_min)`, both retimers, formatted rows.
//!
//! # Examples
//!
//! Plan a benchmark circuit end to end:
//!
//! ```no_run
//! use lacr_core::experiment::{run_circuit, ExperimentConfig};
//!
//! let cfg = ExperimentConfig::default();
//! let row = run_circuit("s344", &cfg.planner)?;
//! println!(
//!     "{}: baseline N_FOA {} vs LAC {}",
//!     row.circuit, row.min_area.n_foa, row.lac.n_foa
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod budget;
pub mod error;
pub mod expand;
pub mod experiment;
pub mod lac;
pub mod planner;
pub mod render;
pub mod summary;
pub mod writeback;

pub use budget::Budget;
pub use error::{Degradation, PlanError, PlanErrorKind, Stage};
pub use expand::{expand, try_expand, ExpandOptions, ExpandedDesign};
pub use lac::{lac_retiming, score_outcome, LacConfig, LacResult, TileOccupancy};
pub use planner::{
    build_physical_plan, growth_from_violations, plan_retimings, plan_retimings_at,
    plan_with_iterations, try_build_physical_plan, try_plan_retimings, try_plan_retimings_at,
    try_plan_with_iterations, FloorplanEngine, IteratedPlan, PhysicalPlan, PlanReport,
    PlannerConfig, TimedRun,
};
pub use summary::{summarize, PlanSummary};
pub use writeback::{retimed_circuit, try_retimed_circuit};
