//! Writing a retiming result back into the RT-level netlist.
//!
//! The planner's contract (§1) is that "correct timing and system
//! behaviors are guaranteed; thus the iterations between high level
//! designs and physical designs can be avoided" — the high-level design
//! receives an updated netlist whose per-connection flip-flop counts
//! reflect the relocations. [`retimed_circuit`] produces exactly that: a
//! copy of the input circuit with every connection's flip-flop count
//! replaced by the sum of the retimed weights along its interconnect
//! chain.

use crate::expand::ExpandedDesign;
use lacr_netlist::Circuit;

/// Builds the retimed netlist: the input circuit with each connection's
/// flip-flop count updated from `weights` (an edge-weight vector of the
/// expanded graph, e.g. [`lacr_retime::RetimingOutcome::weights`]).
///
/// The total flip-flop count of the result equals the sum of `weights`
/// (every expanded edge belongs to exactly one connection chain).
///
/// # Panics
///
/// Panics if `expanded` was not built from `circuit` (chain/connection
/// count mismatch) or `weights` does not match the expanded graph, or if
/// any chain weight is negative or exceeds `u32::MAX`.
pub fn retimed_circuit(circuit: &Circuit, expanded: &ExpandedDesign, weights: &[i64]) -> Circuit {
    assert_eq!(
        weights.len(),
        expanded.graph.num_edges(),
        "weights mismatch"
    );
    let num_connections: usize = circuit.nets().iter().map(|n| n.sinks.len()).sum();
    assert_eq!(
        expanded.connection_chains.len(),
        num_connections,
        "expansion does not belong to this circuit"
    );

    let mut out = circuit.clone();
    let mut chain_iter = expanded.connection_chains.iter();
    for ni in 0..out.num_nets() {
        let num_sinks = out.net(lacr_netlist::NetId(ni as u32)).sinks.len();
        for si in 0..num_sinks {
            let chain = chain_iter.next().expect("chain per connection");
            let flops: i64 = chain.iter().map(|e| weights[e.index()]).sum();
            assert!(
                (0..=i64::from(u32::MAX)).contains(&flops),
                "illegal chain weight {flops}"
            );
            out.net_mut(lacr_netlist::NetId(ni as u32)).sinks[si].flops = flops as u32;
        }
    }
    debug_assert_eq!(
        out.num_flops() as i64,
        weights.iter().sum::<i64>(),
        "flip-flop conservation through write-back"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{build_physical_plan, plan_retimings, PlannerConfig};
    use lacr_floorplan::anneal::FloorplanConfig;
    use lacr_netlist::bench89;

    fn quick() -> PlannerConfig {
        PlannerConfig {
            floorplan: FloorplanConfig {
                moves: 800,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn writeback_conserves_and_validates() {
        let cfg = quick();
        let circuit = bench89::generate("s344").unwrap();
        let plan = build_physical_plan(&circuit, &cfg, &[]);
        let report = plan_retimings(&plan, &cfg).unwrap();
        let out = &report.lac.result.outcome;
        let retimed = retimed_circuit(&circuit, &plan.expanded, &out.weights);
        assert_eq!(retimed.num_flops() as i64, out.total_flops);
        assert_eq!(retimed.num_units(), circuit.num_units());
        assert_eq!(retimed.num_nets(), circuit.num_nets());
        assert!(retimed.validate().is_empty(), "{:?}", retimed.validate());
    }

    #[test]
    fn identity_weights_reproduce_the_input() {
        let cfg = quick();
        let circuit = bench89::generate("s382").unwrap();
        let plan = build_physical_plan(&circuit, &cfg, &[]);
        let identity = plan.expanded.graph.weights();
        let same = retimed_circuit(&circuit, &plan.expanded, &identity);
        // Flop counts per connection are unchanged.
        let orig: Vec<u32> = circuit.edges().map(|e| e.flops).collect();
        let back: Vec<u32> = same.edges().map(|e| e.flops).collect();
        assert_eq!(orig, back);
    }

    #[test]
    fn replanning_the_retimed_circuit_is_already_balanced() {
        // After write-back, the circuit's flip-flops sit where retiming
        // put them, so T_init of a fresh plan should be near the old
        // T_clk rather than the old T_init.
        let cfg = quick();
        let circuit = bench89::generate("s526").unwrap();
        let plan = build_physical_plan(&circuit, &cfg, &[]);
        let report = plan_retimings(&plan, &cfg).unwrap();
        let retimed = retimed_circuit(&circuit, &plan.expanded, &report.lac.result.outcome.weights);
        let plan2 = build_physical_plan(&retimed, &cfg, &[]);
        assert!(
            plan2.t_init < plan.t_init,
            "rebalanced circuit should start faster: {} !< {}",
            plan2.t_init,
            plan.t_init
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_weights_panic() {
        let cfg = quick();
        let circuit = bench89::generate("s344").unwrap();
        let plan = build_physical_plan(&circuit, &cfg, &[]);
        let _ = retimed_circuit(&circuit, &plan.expanded, &[0, 1, 2]);
    }
}
