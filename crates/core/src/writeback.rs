//! Writing a retiming result back into the RT-level netlist.
//!
//! The planner's contract (§1) is that "correct timing and system
//! behaviors are guaranteed; thus the iterations between high level
//! designs and physical designs can be avoided" — the high-level design
//! receives an updated netlist whose per-connection flip-flop counts
//! reflect the relocations. [`retimed_circuit`] produces exactly that: a
//! copy of the input circuit with every connection's flip-flop count
//! replaced by the sum of the retimed weights along its interconnect
//! chain.

use crate::error::{PlanError, PlanErrorKind, Stage};
use crate::expand::ExpandedDesign;
use lacr_netlist::Circuit;

/// Builds the retimed netlist: the input circuit with each connection's
/// flip-flop count updated from `weights` (an edge-weight vector of the
/// expanded graph, e.g. [`lacr_retime::RetimingOutcome::weights`]).
///
/// The total flip-flop count of the result equals the sum of `weights`
/// (every expanded edge belongs to exactly one connection chain).
///
/// # Panics
///
/// Panics if `expanded` was not built from `circuit` (chain/connection
/// count mismatch) or `weights` does not match the expanded graph, or if
/// any chain weight is negative or exceeds `u32::MAX`.
/// [`try_retimed_circuit`] reports the same conditions as typed errors.
pub fn retimed_circuit(circuit: &Circuit, expanded: &ExpandedDesign, weights: &[i64]) -> Circuit {
    try_retimed_circuit(circuit, expanded, weights).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`retimed_circuit`].
///
/// # Errors
///
/// Returns a [`PlanError`] at [`Stage::Writeback`] when `weights` is not
/// parallel to the expanded graph, `expanded` was built from a different
/// circuit, or a chain's total weight falls outside `0..=u32::MAX`.
pub fn try_retimed_circuit(
    circuit: &Circuit,
    expanded: &ExpandedDesign,
    weights: &[i64],
) -> Result<Circuit, PlanError> {
    let fail = |msg: String| PlanError::new(Stage::Writeback, PlanErrorKind::Writeback(msg));
    if weights.len() != expanded.graph.num_edges() {
        return Err(fail(format!(
            "weights mismatch: {} weights for {} graph edges",
            weights.len(),
            expanded.graph.num_edges()
        )));
    }
    let num_connections: usize = circuit.nets().iter().map(|n| n.sinks.len()).sum();
    if expanded.connection_chains.len() != num_connections {
        return Err(fail(format!(
            "expansion does not belong to this circuit: {} chains for {} connections",
            expanded.connection_chains.len(),
            num_connections
        )));
    }

    let mut out = circuit.clone();
    let mut chain_iter = expanded.connection_chains.iter();
    for ni in 0..out.num_nets() {
        let num_sinks = out.net(lacr_netlist::NetId(ni as u32)).sinks.len();
        for si in 0..num_sinks {
            let chain = chain_iter.next().expect("chain count checked above");
            let flops: i64 = chain.iter().map(|e| weights[e.index()]).sum();
            if !(0..=i64::from(u32::MAX)).contains(&flops) {
                return Err(fail(format!(
                    "net {ni} sink {si}: illegal chain weight {flops}"
                )));
            }
            out.net_mut(lacr_netlist::NetId(ni as u32)).sinks[si].flops = flops as u32;
        }
    }
    debug_assert_eq!(
        out.num_flops() as i64,
        weights.iter().sum::<i64>(),
        "flip-flop conservation through write-back"
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{build_physical_plan, plan_retimings, PlannerConfig};
    use lacr_floorplan::anneal::FloorplanConfig;
    use lacr_netlist::bench89;

    fn quick() -> PlannerConfig {
        PlannerConfig {
            floorplan: FloorplanConfig {
                moves: 800,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn writeback_conserves_and_validates() {
        let cfg = quick();
        let circuit = bench89::generate("s344").unwrap();
        let plan = build_physical_plan(&circuit, &cfg, &[]);
        let report = plan_retimings(&plan, &cfg).unwrap();
        let out = &report.lac.result.outcome;
        let retimed = retimed_circuit(&circuit, &plan.expanded, &out.weights);
        assert_eq!(retimed.num_flops() as i64, out.total_flops);
        assert_eq!(retimed.num_units(), circuit.num_units());
        assert_eq!(retimed.num_nets(), circuit.num_nets());
        assert!(retimed.validate().is_empty(), "{:?}", retimed.validate());
    }

    #[test]
    fn identity_weights_reproduce_the_input() {
        let cfg = quick();
        let circuit = bench89::generate("s382").unwrap();
        let plan = build_physical_plan(&circuit, &cfg, &[]);
        let identity = plan.expanded.graph.weights();
        let same = retimed_circuit(&circuit, &plan.expanded, &identity);
        // Flop counts per connection are unchanged.
        let orig: Vec<u32> = circuit.edges().map(|e| e.flops).collect();
        let back: Vec<u32> = same.edges().map(|e| e.flops).collect();
        assert_eq!(orig, back);
    }

    #[test]
    fn replanning_the_retimed_circuit_is_already_balanced() {
        // After write-back, the circuit's flip-flops sit where retiming
        // put them, so T_init of a fresh plan should be near the old
        // T_clk rather than the old T_init.
        let cfg = quick();
        let circuit = bench89::generate("s526").unwrap();
        let plan = build_physical_plan(&circuit, &cfg, &[]);
        let report = plan_retimings(&plan, &cfg).unwrap();
        let retimed = retimed_circuit(&circuit, &plan.expanded, &report.lac.result.outcome.weights);
        let plan2 = build_physical_plan(&retimed, &cfg, &[]);
        assert!(
            plan2.t_init < plan.t_init,
            "rebalanced circuit should start faster: {} !< {}",
            plan2.t_init,
            plan.t_init
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_weights_panic() {
        let cfg = quick();
        let circuit = bench89::generate("s344").unwrap();
        let plan = build_physical_plan(&circuit, &cfg, &[]);
        let _ = retimed_circuit(&circuit, &plan.expanded, &[0, 1, 2]);
    }

    #[test]
    fn try_writeback_reports_typed_errors() {
        let cfg = quick();
        let circuit = bench89::generate("s344").unwrap();
        let plan = build_physical_plan(&circuit, &cfg, &[]);

        let err = try_retimed_circuit(&circuit, &plan.expanded, &[0, 1, 2]).unwrap_err();
        assert_eq!(err.stage, crate::error::Stage::Writeback);
        assert!(err.to_string().contains("weights mismatch"), "{err}");

        let negative = vec![-1i64; plan.expanded.graph.num_edges()];
        let err = try_retimed_circuit(&circuit, &plan.expanded, &negative).unwrap_err();
        assert!(err.to_string().contains("illegal chain weight"), "{err}");

        let other = bench89::generate("s382").unwrap();
        let err = try_retimed_circuit(&other, &plan.expanded, &plan.expanded.graph.weights())
            .unwrap_err();
        assert!(err.to_string().contains("does not belong"), "{err}");
    }
}
