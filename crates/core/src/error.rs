//! The workspace error taxonomy: every fallible planning stage reports a
//! typed error with *stage provenance*, and recoverable trouble is
//! reported as a [`Degradation`] attached to the plan instead of an
//! abort.
//!
//! The planning pipeline is an *early-planning* loop (§5 of the paper
//! runs it on first-iteration floorplans "without any physical
//! information"), so it must fail soft: malformed inputs come back as a
//! [`PlanError`] naming the stage that rejected them, and budget
//! expiry / legalization failure / routing overflow degrade the plan
//! (best-so-far results plus a [`Degradation`] note) rather than
//! crashing the caller.

use lacr_floorplan::FloorplanError;
use lacr_repeater::RepeaterError;
use lacr_retime::RetimeError;
use lacr_route::RouteError;
use std::fmt;

/// The pipeline stage an error or degradation originated from, in
/// pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Input validation (circuit, technology, configuration).
    Validate,
    /// Partitioning units into soft blocks.
    Partition,
    /// Sequence-pair / slicing floorplanning.
    Floorplan,
    /// Tile-grid construction over the floorplan.
    TileGrid,
    /// Congestion-aware global routing.
    Route,
    /// `L_max` repeater planning.
    Repeater,
    /// Netlist expansion into interconnect units.
    Expand,
    /// Clock-period characterisation (T_init / T_min).
    Timing,
    /// Period-constraint generation.
    Constraints,
    /// (Weighted) min-area retiming.
    MinArea,
    /// Local-area-constrained retiming rounds.
    Lac,
    /// Writing the retimed netlist back.
    Writeback,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::Validate => "validate",
            Stage::Partition => "partition",
            Stage::Floorplan => "floorplan",
            Stage::TileGrid => "tile-grid",
            Stage::Route => "route",
            Stage::Repeater => "repeater",
            Stage::Expand => "expand",
            Stage::Timing => "timing",
            Stage::Constraints => "constraints",
            Stage::MinArea => "min-area",
            Stage::Lac => "lac",
            Stage::Writeback => "writeback",
        };
        f.write_str(name)
    }
}

/// What went wrong, independent of where.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanErrorKind {
    /// The circuit fails [`lacr_netlist::Circuit::validate`]; carries the
    /// full list of problems.
    InvalidCircuit(Vec<String>),
    /// The technology fails `Technology::validate`.
    InvalidTechnology(Vec<String>),
    /// The planner configuration itself is unusable.
    InvalidConfig(Vec<String>),
    /// The per-block growth vector does not match the block count.
    GrowthMismatch {
        /// Blocks in the partitioning.
        expected: usize,
        /// Entries in the supplied growth vector.
        got: usize,
    },
    /// Floorplanning rejected the block specs.
    Floorplan(FloorplanError),
    /// Routing rejected the net list.
    Route(RouteError),
    /// Repeater planning could not satisfy `L_max`.
    Repeater(RepeaterError),
    /// Graph expansion found an inconsistency between the routing and the
    /// circuit (mismatched nets, cells, or options).
    Expand(String),
    /// The expanded graph has a combinational (zero-weight) cycle, so no
    /// clock period exists.
    CombinationalCycle,
    /// Retiming failed (period infeasible, or an internal solver failure
    /// that survived the whole degradation ladder).
    Retime(RetimeError),
    /// Writing the retimed circuit back failed.
    Writeback(String),
}

impl fmt::Display for PlanErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidCircuit(problems) => {
                write!(f, "invalid circuit: {}", problems.join("; "))
            }
            Self::InvalidTechnology(problems) => {
                write!(f, "invalid technology: {}", problems.join("; "))
            }
            Self::InvalidConfig(problems) => {
                write!(f, "invalid planner config: {}", problems.join("; "))
            }
            Self::GrowthMismatch { expected, got } => {
                write!(f, "growth vector has {got} entries for {expected} blocks")
            }
            Self::Floorplan(e) => write!(f, "{e}"),
            Self::Route(e) => write!(f, "{e}"),
            Self::Repeater(e) => write!(f, "{e}"),
            Self::Expand(msg) => write!(f, "{msg}"),
            Self::CombinationalCycle => {
                write!(f, "expanded graph has a cycle with no flip-flop")
            }
            Self::Retime(e) => write!(f, "{e}"),
            Self::Writeback(msg) => write!(f, "{msg}"),
        }
    }
}

/// A typed, stage-tagged planning error — the unified error type of the
/// whole pipeline (re-exported as `lacr::PlanError`).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanError {
    /// The pipeline stage that failed.
    pub stage: Stage,
    /// What went wrong.
    pub kind: PlanErrorKind,
}

impl PlanError {
    /// Builds an error tagged with its originating stage.
    pub fn new(stage: Stage, kind: PlanErrorKind) -> Self {
        Self { stage, kind }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage, self.kind)
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            PlanErrorKind::Floorplan(e) => Some(e),
            PlanErrorKind::Route(e) => Some(e),
            PlanErrorKind::Repeater(e) => Some(e),
            PlanErrorKind::Retime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for RetimeError {
    /// Legacy bridge: the panicking wrappers and old `Result<_,
    /// RetimeError>` signatures fold a [`PlanError`] back into the
    /// retiming error space.
    fn from(e: PlanError) -> Self {
        match e.kind {
            PlanErrorKind::Retime(r) => r,
            kind => RetimeError::Internal(format!("[{}] {kind}", e.stage)),
        }
    }
}

/// A recoverable quality loss the pipeline absorbed instead of failing:
/// an expired budget, a fallback solver, residual overflow. Plans carry
/// these so callers (and the CLI, which maps them to exit code 3) can
/// tell a pristine result from a degraded one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The stage that degraded.
    pub stage: Stage,
    /// Human-readable reason (deadline expiry, fallback taken, residual
    /// overflow, …).
    pub reason: String,
}

impl Degradation {
    /// Builds a degradation note. Every rung of the degradation ladder
    /// passes through here, so construction doubles as the structured
    /// `degradation` observability event.
    pub fn new(stage: Stage, reason: impl Into<String>) -> Self {
        let d = Self {
            stage,
            reason: reason.into(),
        };
        lacr_obs::event!(
            "degradation",
            stage = d.stage.to_string(),
            reason = d.reason.as_str()
        );
        d
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage, self.reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_detail() {
        let e = PlanError::new(
            Stage::Validate,
            PlanErrorKind::InvalidCircuit(vec!["unit 3: area is NaN".into()]),
        );
        let s = e.to_string();
        assert!(s.contains("validate"), "{s}");
        assert!(s.contains("NaN"), "{s}");
    }

    #[test]
    fn retime_error_roundtrips_through_plan_error() {
        let original = RetimeError::PeriodInfeasible { target: 42 };
        let plan = PlanError::new(Stage::MinArea, PlanErrorKind::Retime(original.clone()));
        assert_eq!(RetimeError::from(plan), original);
        let other = PlanError::new(Stage::Route, PlanErrorKind::CombinationalCycle);
        match RetimeError::from(other) {
            RetimeError::Internal(msg) => assert!(msg.contains("route"), "{msg}"),
            e => panic!("expected Internal, got {e:?}"),
        }
    }

    #[test]
    fn degradation_displays_stage() {
        let d = Degradation::new(Stage::Lac, "2 tiles still overflow");
        assert_eq!(d.to_string(), "[lac] 2 tiles still overflow");
    }

    #[test]
    fn stages_order_follows_pipeline() {
        assert!(Stage::Validate < Stage::Floorplan);
        assert!(Stage::Route < Stage::Lac);
        assert!(Stage::Lac < Stage::Writeback);
    }
}
