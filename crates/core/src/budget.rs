//! Wall-clock and iteration budgets for the planning pipeline.
//!
//! A [`Budget`] is threaded from `PlannerConfig` into every unbounded
//! search loop — the floorplan annealer's move loop, the router's
//! rip-up passes, the LAC re-weight rounds — so an expired budget makes
//! each stage return its best-so-far result (tagged with a
//! `Degradation`) instead of running open-ended.
//!
//! # Determinism
//!
//! [`Budget::expired`] is *sticky*: the first poll that observes the
//! deadline in the past latches the budget as expired, and every later
//! poll returns `true` without consulting the clock again. Stages poll
//! only at round boundaries (annealer cooling steps, router rip-up
//! passes, LAC re-weight rounds), never per inner move. Together these
//! two rules make the degradation path a monotone function of *which
//! round boundary* first saw the deadline pass — tracing overhead can
//! shift that boundary, but it can never make the pipeline flip back
//! and forth between "expired" and "not expired" decisions within one
//! run, which previously produced inconsistent degradation reports
//! under `--trace`. Every clock poll is counted and surfaced as the
//! `budget.deadline_checks` counter.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Interior latch shared by all clones of one [`Budget`].
#[derive(Debug, Default)]
struct BudgetState {
    /// Set once the deadline has been observed in the past; never reset.
    expired: AtomicBool,
    /// Number of times the wall clock was actually polled.
    checks: AtomicU64,
}

/// Resource limits for one planning run. The default is unlimited, which
/// preserves the historical behaviour exactly.
///
/// Cloning a `Budget` shares its expiry latch: once any clone observes
/// the deadline pass, every clone reports expired.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Wall-clock deadline. Stages poll it at round boundaries and stop
    /// early (keeping their best-so-far result) once it passes.
    pub deadline: Option<Instant>,
    /// Cap on LAC re-weight rounds, applied on top of `LacConfig::
    /// max_rounds` (the smaller of the two wins).
    pub max_rounds: Option<usize>,
    state: Arc<BudgetState>,
}

impl PartialEq for Budget {
    /// Budgets compare by their limits; the runtime latch state is not
    /// part of the value.
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.max_rounds == other.max_rounds
    }
}

impl Eq for Budget {}

impl Budget {
    /// A budget with an explicit deadline and round cap (either may be
    /// absent).
    pub fn new(deadline: Option<Instant>, max_rounds: Option<usize>) -> Self {
        Self {
            deadline,
            max_rounds,
            state: Arc::default(),
        }
    }

    /// No limits (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A deadline `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::new(Some(Instant::now() + timeout), None)
    }

    /// Whether the wall-clock deadline has passed.
    ///
    /// Sticky: the first `true` latches, so later calls return `true`
    /// without polling the clock. Each real clock poll increments the
    /// `budget.deadline_checks` counter.
    pub fn expired(&self) -> bool {
        let Some(deadline) = self.deadline else {
            return false;
        };
        if self.state.expired.load(Ordering::Relaxed) {
            return true;
        }
        self.state.checks.fetch_add(1, Ordering::Relaxed);
        lacr_obs::counter!("budget.deadline_checks", 1);
        if Instant::now() >= deadline {
            self.state.expired.store(true, Ordering::Relaxed);
            lacr_obs::event!("budget.expired", checks = self.checks());
            // The latch trips exactly once per budget, so this is the
            // natural postmortem moment: dump the flight recorder (a
            // no-op unless a dump path is armed, e.g. by the CLI).
            if let Some(path) = lacr_obs::flight::dump("budget expiry") {
                lacr_obs::diag!(
                    "budget expired; flight recorder dumped to {}",
                    path.display()
                );
            }
            true
        } else {
            false
        }
    }

    /// Number of times the wall clock has actually been polled via
    /// [`Budget::expired`] (latched short-circuits are not counted).
    pub fn checks(&self) -> u64 {
        self.state.checks.load(Ordering::Relaxed)
    }

    /// The earlier of this budget's deadline and `other` (either may be
    /// absent). Used to merge the planner-level deadline into stage
    /// configs without overriding a tighter stage-local one.
    pub fn min_deadline(&self, other: Option<Instant>) -> Option<Instant> {
        match (self.deadline, other) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = Budget::unlimited();
        assert!(!b.expired());
        assert_eq!(Budget::default(), Budget::unlimited());
        // No deadline means the clock is never polled.
        assert_eq!(b.checks(), 0);
    }

    #[test]
    fn zero_timeout_expires_immediately() {
        assert!(Budget::with_timeout(Duration::ZERO).expired());
    }

    #[test]
    fn generous_timeout_not_yet_expired() {
        assert!(!Budget::with_timeout(Duration::from_secs(3600)).expired());
    }

    #[test]
    fn expiry_is_sticky_and_shared_between_clones() {
        // A deadline in the past: the first poll latches.
        let b = Budget::new(Some(Instant::now() - Duration::from_secs(1)), None);
        let clone = b.clone();
        assert!(b.expired());
        assert!(clone.expired(), "clones share the latch");
        assert!(b.expired(), "stays expired");
        // Only the first poll touched the clock; the latched calls did not.
        assert_eq!(b.checks(), 1);
    }

    #[test]
    fn checks_count_real_polls_only() {
        let b = Budget::with_timeout(Duration::from_secs(3600));
        for _ in 0..5 {
            assert!(!b.expired());
        }
        assert_eq!(b.checks(), 5);
    }

    #[test]
    fn equality_ignores_latch_state() {
        let past = Instant::now() - Duration::from_secs(1);
        let a = Budget::new(Some(past), Some(3));
        let b = Budget::new(Some(past), Some(3));
        assert!(a.expired());
        assert_eq!(a, b, "latched vs fresh budgets with equal limits");
    }

    #[test]
    fn min_deadline_picks_earlier() {
        let now = Instant::now();
        let later = now + Duration::from_secs(10);
        let b = Budget::new(Some(now), None);
        assert_eq!(b.min_deadline(Some(later)), Some(now));
        assert_eq!(b.min_deadline(None), Some(now));
        assert_eq!(Budget::unlimited().min_deadline(Some(later)), Some(later));
        assert_eq!(Budget::unlimited().min_deadline(None), None);
    }
}
