//! Wall-clock and iteration budgets for the planning pipeline.
//!
//! A [`Budget`] is threaded from `PlannerConfig` into every unbounded
//! search loop — the floorplan annealer's move loop, the router's
//! rip-up passes, the LAC re-weight rounds — so an expired budget makes
//! each stage return its best-so-far result (tagged with a
//! `Degradation`) instead of running open-ended.

use std::time::{Duration, Instant};

/// Resource limits for one planning run. The default is unlimited, which
/// preserves the historical behaviour exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline. Stages poll it and stop early (keeping their
    /// best-so-far result) once it passes.
    pub deadline: Option<Instant>,
    /// Cap on LAC re-weight rounds, applied on top of `LacConfig::
    /// max_rounds` (the smaller of the two wins).
    pub max_rounds: Option<usize>,
}

impl Budget {
    /// No limits (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A deadline `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self {
            deadline: Some(Instant::now() + timeout),
            max_rounds: None,
        }
    }

    /// Whether the wall-clock deadline has passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The earlier of this budget's deadline and `other` (either may be
    /// absent). Used to merge the planner-level deadline into stage
    /// configs without overriding a tighter stage-local one.
    pub fn min_deadline(&self, other: Option<Instant>) -> Option<Instant> {
        match (self.deadline, other) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        assert!(!Budget::unlimited().expired());
        assert_eq!(Budget::default(), Budget::unlimited());
    }

    #[test]
    fn zero_timeout_expires_immediately() {
        assert!(Budget::with_timeout(Duration::ZERO).expired());
    }

    #[test]
    fn generous_timeout_not_yet_expired() {
        assert!(!Budget::with_timeout(Duration::from_secs(3600)).expired());
    }

    #[test]
    fn min_deadline_picks_earlier() {
        let now = Instant::now();
        let later = now + Duration::from_secs(10);
        let b = Budget {
            deadline: Some(now),
            max_rounds: None,
        };
        assert_eq!(b.min_deadline(Some(later)), Some(now));
        assert_eq!(b.min_deadline(None), Some(now));
        assert_eq!(Budget::unlimited().min_deadline(Some(later)), Some(later));
        assert_eq!(Budget::unlimited().min_deadline(None), None);
    }
}
