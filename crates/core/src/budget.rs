//! Wall-clock and iteration budgets for the planning pipeline.
//!
//! A [`Budget`] is threaded from `PlannerConfig` into every unbounded
//! search loop — the floorplan annealer's move loop, the router's
//! rip-up passes, the LAC re-weight rounds — so an expired budget makes
//! each stage return its best-so-far result (tagged with a
//! `Degradation`) instead of running open-ended.
//!
//! # Determinism
//!
//! [`Budget::expired`] is *sticky*: the first poll that observes the
//! deadline in the past latches the budget as expired, and every later
//! poll returns `true` without consulting the clock again. Stages poll
//! only at round boundaries (annealer cooling steps, router rip-up
//! passes, LAC re-weight rounds), never per inner move. Together these
//! two rules make the degradation path a monotone function of *which
//! round boundary* first saw the deadline pass — tracing overhead can
//! shift that boundary, but it can never make the pipeline flip back
//! and forth between "expired" and "not expired" decisions within one
//! run, which previously produced inconsistent degradation reports
//! under `--trace`. Every clock poll is counted and surfaced as the
//! `budget.deadline_checks` counter.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Interior latch shared by all clones of one [`Budget`].
#[derive(Debug, Default)]
struct BudgetState {
    /// Set once the deadline has been observed in the past; never reset.
    expired: AtomicBool,
    /// Number of times the wall clock was actually polled.
    checks: AtomicU64,
}

/// Resource limits for one planning run. The default is unlimited, which
/// preserves the historical behaviour exactly.
///
/// Cloning a `Budget` shares its expiry latch: once any clone observes
/// the deadline pass, every clone reports expired.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Wall-clock deadline. Stages poll it at round boundaries and stop
    /// early (keeping their best-so-far result) once it passes.
    pub deadline: Option<Instant>,
    /// Cap on LAC re-weight rounds, applied on top of `LacConfig::
    /// max_rounds` (the smaller of the two wins).
    pub max_rounds: Option<usize>,
    /// Owner tag for postmortems (the serve loop sets the request id).
    /// A labelled budget's expiry dump goes to the request-tagged flight
    /// path instead of the shared armed path, so concurrent requests
    /// never clobber each other's dumps.
    label: Option<Arc<str>>,
    state: Arc<BudgetState>,
}

impl PartialEq for Budget {
    /// Budgets compare by their limits; the runtime latch state is not
    /// part of the value.
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.max_rounds == other.max_rounds
    }
}

impl Eq for Budget {}

impl Budget {
    /// A budget with an explicit deadline and round cap (either may be
    /// absent).
    pub fn new(deadline: Option<Instant>, max_rounds: Option<usize>) -> Self {
        Self {
            deadline,
            max_rounds,
            label: None,
            state: Arc::default(),
        }
    }

    /// Tags this budget with an owner label (e.g. a request id). On
    /// expiry the flight-recorder postmortem is written to the label's
    /// tagged path (`req-<label>.jsonl`) instead of the shared armed
    /// path. Labels are identity metadata: they don't affect equality.
    #[must_use]
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(Arc::from(label.into()));
        self
    }

    /// The owner label, if one was set via [`Budget::labeled`].
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// No limits (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A deadline `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::new(Some(Instant::now() + timeout), None)
    }

    /// Whether the wall-clock deadline has passed.
    ///
    /// Sticky: the first `true` latches, so later calls return `true`
    /// without polling the clock. Each real clock poll increments the
    /// `budget.deadline_checks` counter.
    pub fn expired(&self) -> bool {
        let Some(deadline) = self.deadline else {
            return false;
        };
        if self.state.expired.load(Ordering::Relaxed) {
            return true;
        }
        self.state.checks.fetch_add(1, Ordering::Relaxed);
        lacr_obs::counter!("budget.deadline_checks", 1);
        if Instant::now() >= deadline {
            self.state.expired.store(true, Ordering::Relaxed);
            lacr_obs::event!("budget.expired", checks = self.checks());
            // The latch trips exactly once per budget, so this is the
            // natural postmortem moment: dump the flight recorder (a
            // no-op unless a dump path is armed, e.g. by the CLI).
            // Labelled budgets dump to their own request-tagged path.
            let path = match self.label.as_deref() {
                Some(label) => lacr_obs::flight::dump_tagged(label, "budget expiry"),
                None => lacr_obs::flight::dump("budget expiry"),
            };
            if let Some(path) = path {
                lacr_obs::diag!(
                    "budget expired; flight recorder dumped to {}",
                    path.display()
                );
            }
            true
        } else {
            false
        }
    }

    /// Number of times the wall clock has actually been polled via
    /// [`Budget::expired`] (latched short-circuits are not counted).
    pub fn checks(&self) -> u64 {
        self.state.checks.load(Ordering::Relaxed)
    }

    /// The earlier of this budget's deadline and `other` (either may be
    /// absent). Used to merge the planner-level deadline into stage
    /// configs without overriding a tighter stage-local one.
    pub fn min_deadline(&self, other: Option<Instant>) -> Option<Instant> {
        match (self.deadline, other) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = Budget::unlimited();
        assert!(!b.expired());
        assert_eq!(Budget::default(), Budget::unlimited());
        // No deadline means the clock is never polled.
        assert_eq!(b.checks(), 0);
    }

    #[test]
    fn zero_timeout_expires_immediately() {
        assert!(Budget::with_timeout(Duration::ZERO).expired());
    }

    #[test]
    fn generous_timeout_not_yet_expired() {
        assert!(!Budget::with_timeout(Duration::from_secs(3600)).expired());
    }

    #[test]
    fn expiry_is_sticky_and_shared_between_clones() {
        // A deadline in the past: the first poll latches.
        let b = Budget::new(Some(Instant::now() - Duration::from_secs(1)), None);
        let clone = b.clone();
        assert!(b.expired());
        assert!(clone.expired(), "clones share the latch");
        assert!(b.expired(), "stays expired");
        // Only the first poll touched the clock; the latched calls did not.
        assert_eq!(b.checks(), 1);
    }

    #[test]
    fn checks_count_real_polls_only() {
        let b = Budget::with_timeout(Duration::from_secs(3600));
        for _ in 0..5 {
            assert!(!b.expired());
        }
        assert_eq!(b.checks(), 5);
    }

    #[test]
    fn equality_ignores_latch_state() {
        let past = Instant::now() - Duration::from_secs(1);
        let a = Budget::new(Some(past), Some(3));
        let b = Budget::new(Some(past), Some(3));
        assert!(a.expired());
        assert_eq!(a, b, "latched vs fresh budgets with equal limits");
    }

    #[test]
    fn sequential_budgets_do_not_inherit_expiry() {
        // The latch lives in per-instance Arc state: two requests built
        // back to back (as the serve loop does) must each start fresh,
        // even after the first one has tripped.
        let first = Budget::with_timeout(Duration::ZERO);
        assert!(first.expired());
        let second = Budget::with_timeout(Duration::from_secs(3600));
        assert!(!second.expired(), "fresh budget inherited a tripped latch");
        assert!(first.expired(), "first budget stays latched");
        // And the fresh instance polled its own clock, not the latch.
        assert_eq!(second.checks(), 1);
    }

    #[test]
    fn labels_tag_without_affecting_limits_or_equality() {
        let b = Budget::with_timeout(Duration::from_secs(3600)).labeled("req-9");
        assert_eq!(b.label(), Some("req-9"));
        assert_eq!(b.clone().label(), Some("req-9"));
        assert_eq!(Budget::unlimited().label(), None);
        let past = Instant::now() - Duration::from_secs(1);
        let plain = Budget::new(Some(past), Some(3));
        let tagged = Budget::new(Some(past), Some(3)).labeled("req-9");
        assert_eq!(plain, tagged, "labels are identity metadata");
    }

    #[test]
    fn labeled_budget_expiry_dumps_to_the_tagged_path() {
        let dir = std::env::temp_dir().join(format!(
            "lacr_budget_tagged_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let saved = lacr_obs::flight::disarm();
        lacr_obs::flight::arm(dir.join("last-run.jsonl"));
        let b = Budget::with_timeout(Duration::ZERO).labeled("budget-test");
        assert!(b.expired());
        let tagged = dir.join("req-budget-test.jsonl");
        assert!(tagged.is_file(), "expected tagged postmortem at {tagged:?}");
        assert!(
            !dir.join("last-run.jsonl").exists(),
            "labelled expiry must not clobber the shared armed path"
        );
        lacr_obs::flight::disarm();
        if let Some(p) = saved {
            lacr_obs::flight::arm(p);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn min_deadline_picks_earlier() {
        let now = Instant::now();
        let later = now + Duration::from_secs(10);
        let b = Budget::new(Some(now), None);
        assert_eq!(b.min_deadline(Some(later)), Some(now));
        assert_eq!(b.min_deadline(None), Some(now));
        assert_eq!(Budget::unlimited().min_deadline(Some(later)), Some(later));
        assert_eq!(Budget::unlimited().min_deadline(None), None);
    }
}
