//! Rendering of the tile graph (the paper's Figure 2) as ASCII and SVG.
//!
//! Figure 2 shows the chip divided into tiles: hard blocks, soft blocks
//! and dead-space/channel regions. [`tile_ascii`] draws the same picture
//! on a character grid (one char per routing cell); [`tile_svg`] produces
//! a standalone SVG with the floorplan, tile classes and per-tile
//! flip-flop occupancy after retiming.

use crate::lac::TileOccupancy;
use crate::planner::PhysicalPlan;
use lacr_floorplan::tiles::TileKind;
use std::fmt::Write as _;

/// ASCII map of the tile grid: soft blocks are letters (one per block),
/// hard blocks `#`, channels `.`.
///
/// Row 0 of the grid is printed at the bottom, like a floorplan plot.
pub fn tile_ascii(plan: &PhysicalPlan) -> String {
    let grid = &plan.grid;
    let mut out = String::new();
    for cy in (0..grid.ny()).rev() {
        for cx in 0..grid.nx() {
            let t = grid.tile_of_cell(grid.cell_index(cx, cy));
            let ch = match grid.kind(t) {
                TileKind::Channel => '.',
                TileKind::Hard(_) => '#',
                TileKind::Soft(b) => (b'a' + (b % 26) as u8) as char,
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// Legend for [`tile_ascii`].
pub fn tile_ascii_legend(plan: &PhysicalPlan) -> String {
    let mut out = String::from("legend: '.' channel/dead space, '#' hard block");
    let nb = plan.partitioning.blocks.len();
    let _ = write!(
        out,
        ", 'a'..'{}' soft blocks",
        (b'a' + ((nb - 1) % 26) as u8) as char
    );
    out
}

/// Standalone SVG of the floorplan and tile grid, optionally colouring
/// tiles by flip-flop occupancy versus capacity (`occupancy` from a
/// retiming result: green = fits, red = violates).
pub fn tile_svg(plan: &PhysicalPlan, occupancy: Option<&TileOccupancy>) -> String {
    let grid = &plan.grid;
    let ts = grid.tile_size();
    let scale = 0.1; // µm → px
    let w = plan.floorplan.chip_w.max(grid.nx() as f64 * ts) * scale;
    let h = plan.floorplan.chip_h.max(grid.ny() as f64 * ts) * scale;
    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
        w + 2.0,
        h + 2.0,
        w + 2.0,
        h + 2.0
    );
    // y is flipped so the origin sits bottom-left like a floorplan.
    let flip = |y: f64, hh: f64| h - y * scale - hh * scale;

    // Cells, coloured by tile kind / occupancy.
    for cy in 0..grid.ny() {
        for cx in 0..grid.nx() {
            let t = grid.tile_of_cell(grid.cell_index(cx, cy));
            let mut fill = match grid.kind(t) {
                TileKind::Channel => "#e8e8e8",
                TileKind::Hard(_) => "#8a8a8a",
                TileKind::Soft(_) => "#bcd8f0",
            }
            .to_string();
            if let Some(occ) = occupancy {
                if occ.violations[t.index()] > 0 {
                    fill = "#e06060".to_string();
                } else if occ.counts[t.index()] > 0 {
                    fill = "#8fd08f".to_string();
                }
            }
            let _ = writeln!(
                s,
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{fill}" stroke="#ffffff" stroke-width="0.4"/>"##,
                cx as f64 * ts * scale,
                flip(cy as f64 * ts, ts),
                ts * scale,
                ts * scale,
            );
        }
    }
    // Block outlines with labels.
    for (b, blk) in plan.floorplan.blocks.iter().enumerate() {
        let _ = writeln!(
            s,
            r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="none" stroke="{}" stroke-width="1.2"/>"#,
            blk.x * scale,
            flip(blk.y, blk.h),
            blk.w * scale,
            blk.h * scale,
            if blk.hard { "#303030" } else { "#2060a0" },
        );
        let _ = writeln!(
            s,
            r##"<text x="{:.1}" y="{:.1}" font-size="8" fill="#123">{}{b}</text>"##,
            (blk.x + blk.w / 2.0) * scale - 4.0,
            flip(blk.y + blk.h / 2.0, 0.0),
            if blk.hard { "H" } else { "B" },
        );
    }
    s.push_str("</svg>\n");
    s
}

/// ASCII heat map of routing congestion: per cell, the worst adjacent
/// edge usage as a fraction of `capacity`, bucketed into
/// `' ' . : + * # @` (空 < 20 % … ≥ 120 % = overflow).
pub fn congestion_ascii(plan: &PhysicalPlan, capacity: u32) -> String {
    let grid = &plan.grid;
    let cong = plan.routing.cell_congestion(grid.num_cells(), capacity);
    let mut out = String::new();
    for cy in (0..grid.ny()).rev() {
        for cx in 0..grid.nx() {
            let c = cong[grid.cell_index(cx, cy)];
            let ch = match c {
                c if c >= 1.2 => '@',
                c if c >= 1.0 => '#',
                c if c >= 0.8 => '*',
                c if c >= 0.5 => '+',
                c if c >= 0.2 => ':',
                c if c > 0.0 => '.',
                _ => ' ',
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{build_physical_plan, plan_retimings, PlannerConfig};
    use lacr_floorplan::anneal::FloorplanConfig;
    use lacr_netlist::bench89;

    fn plan() -> PhysicalPlan {
        let c = bench89::generate("s344").unwrap();
        let cfg = PlannerConfig {
            floorplan: FloorplanConfig {
                moves: 500,
                ..Default::default()
            },
            ..Default::default()
        };
        build_physical_plan(&c, &cfg, &[])
    }

    #[test]
    fn ascii_covers_the_grid() {
        let p = plan();
        let art = tile_ascii(&p);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), p.grid.ny());
        assert!(lines.iter().all(|l| l.len() == p.grid.nx()));
        // Soft blocks must appear.
        assert!(art.chars().any(|c| c.is_ascii_lowercase()));
        assert!(tile_ascii_legend(&p).contains("soft blocks"));
    }

    #[test]
    fn svg_is_wellformed_enough() {
        let p = plan();
        let cfg = PlannerConfig::default();
        let report = plan_retimings(&p, &cfg).unwrap();
        let svg = tile_svg(&p, Some(&report.lac.result.occupancy));
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.matches("<rect").count() >= p.grid.num_cells());
    }

    #[test]
    fn congestion_map_covers_grid() {
        let p = plan();
        let map = congestion_ascii(&p, 24);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), p.grid.ny());
        assert!(lines.iter().all(|l| l.len() == p.grid.nx()));
        // Some routed traffic must be visible.
        assert!(map.chars().any(|c| c != ' '));
    }

    #[test]
    fn svg_without_occupancy() {
        let p = plan();
        let svg = tile_svg(&p, None);
        assert!(svg.contains("#bcd8f0"), "soft tiles coloured by kind");
    }
}
