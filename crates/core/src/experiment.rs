//! The Table-1 experiment driver (§5).
//!
//! For every benchmark circuit: floorplan, route and insert repeaters;
//! measure `T_init`; compute `T_min` by min-period retiming; set
//! `T_clk = T_min + 0.2 (T_init − T_min)`; run min-area retiming and
//! LAC-retiming at `T_clk` and report `N_FOA`, `N_F`, `N_FN`, `N_wr` and
//! execution times, plus the second planning iteration's `N_FOA` for
//! circuits whose violations could not be removed in one pass.

use crate::planner::{plan_with_iterations, PlannerConfig};
use lacr_netlist::bench89;
use lacr_retime::RetimeError;
use std::fmt::Write as _;
use std::time::Duration;

/// Configuration of the experiment sweep.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Planner settings shared by every circuit.
    pub planner: PlannerConfig,
    /// Benchmark names (defaults to the paper's ten Table-1 circuits).
    pub circuits: Vec<String>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            planner: PlannerConfig::default(),
            circuits: bench89::table1_circuits()
                .into_iter()
                .map(String::from)
                .collect(),
        }
    }
}

/// Metrics of one retimer on one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct RetimerMetrics {
    /// Flip-flops violating local area constraints.
    pub n_foa: i64,
    /// Total flip-flops.
    pub n_f: i64,
    /// Flip-flops inserted into interconnects.
    pub n_fn: i64,
    /// Wall-clock execution time.
    pub t_exec: Duration,
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Circuit name.
    pub circuit: String,
    /// Target clock period (ns).
    pub t_clk_ns: f64,
    /// Initial (pre-retiming) period (ns).
    pub t_init_ns: f64,
    /// Minimum achievable period (ns) — not a paper column, but useful.
    pub t_min_ns: f64,
    /// Min-area retiming metrics.
    pub min_area: RetimerMetrics,
    /// LAC-retiming metrics.
    pub lac: RetimerMetrics,
    /// Weighted min-area retimings the LAC loop performed (`N_wr`).
    pub n_wr: usize,
    /// `N_FOA` decrease from min-area to LAC, percent (`None` when the
    /// baseline had no violations).
    pub decrease_pct: Option<f64>,
    /// Second-iteration `N_FOA` when the first left violations:
    /// `Some(Ok(n))`, or `Some(Err(_))` when the frozen target period
    /// became infeasible after floorplan expansion (the paper's s1269).
    pub second_iteration: Option<Result<i64, RetimeError>>,
    /// `N_FOA` after each weighted re-retiming round of the LAC loop
    /// (the convergence trajectory; its length tracks `n_wr`).
    pub n_foa_trajectory: Vec<i64>,
}

/// Runs the experiment for one circuit.
///
/// # Errors
///
/// Returns the retiming error if the first planning iteration fails
/// (should not happen: `T_clk ≥ T_min` by construction), or a boxed error
/// for unknown benchmark names.
pub fn run_circuit(
    name: &str,
    config: &PlannerConfig,
) -> Result<TableRow, Box<dyn std::error::Error>> {
    let circuit = bench89::generate(name)?;
    let iterated = plan_with_iterations(&circuit, config)?;
    let (plan, report) = &iterated.first;
    Ok(TableRow {
        circuit: name.to_string(),
        t_clk_ns: plan.t_clk as f64 / 1000.0,
        t_init_ns: plan.t_init as f64 / 1000.0,
        t_min_ns: plan.t_min as f64 / 1000.0,
        min_area: RetimerMetrics {
            n_foa: report.min_area.result.n_foa,
            n_f: report.min_area.result.n_f,
            n_fn: report.min_area.result.n_fn,
            t_exec: report.min_area.elapsed,
        },
        lac: RetimerMetrics {
            n_foa: report.lac.result.n_foa,
            n_f: report.lac.result.n_f,
            n_fn: report.lac.result.n_fn,
            t_exec: report.lac.elapsed,
        },
        n_wr: report.lac.result.n_wr,
        decrease_pct: report.n_foa_decrease_pct(),
        second_iteration: iterated.second_n_foa,
        n_foa_trajectory: report.lac.result.history.clone(),
    })
}

/// Runs the whole sweep, skipping circuits that fail with a message on
/// stderr (none are expected to).
pub fn run_experiment(config: &ExperimentConfig) -> Vec<TableRow> {
    config
        .circuits
        .iter()
        .filter_map(|name| match run_circuit(name, &config.planner) {
            Ok(row) => Some(row),
            Err(e) => {
                lacr_obs::diag!("{name}: {e}");
                None
            }
        })
        .collect()
}

/// Formats rows as the paper's Table 1 (plain text).
pub fn format_table(rows: &[TableRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<8} {:>7} {:>8} | {:>6} {:>5} {:>5} {:>8} | {:>6} {:>5} {:>5} {:>4} {:>8} | {:>7}",
        "circuit",
        "Tclk/ns",
        "Tinit/ns",
        "N_FOA",
        "N_F",
        "N_FN",
        "Texec/s",
        "N_FOA",
        "N_F",
        "N_FN",
        "N_wr",
        "Texec/s",
        "Decr."
    );
    let _ = writeln!(
        s,
        "{:<8} {:>7} {:>8} | {:^33} | {:^40} | {:>7}",
        "", "", "", "Min-Area Retiming", "LAC-Retiming", ""
    );
    let mut base_sum = 0i64;
    let mut lac_sum = 0i64;
    for r in rows {
        let foa2 = match &r.second_iteration {
            None => String::new(),
            Some(Ok(n)) => format!(" ({n})"),
            Some(Err(_)) => " (N/A)".to_string(),
        };
        let decr = match r.decrease_pct {
            Some(p) => format!("{p:.0}%"),
            None => "-".to_string(),
        };
        base_sum += r.min_area.n_foa;
        lac_sum += r.lac.n_foa;
        let _ = writeln!(
            s,
            "{:<8} {:>7.2} {:>8.2} | {:>6} {:>5} {:>5} {:>8.3} | {:>6} {:>5} {:>5} {:>4} {:>8.3} | {:>7}",
            r.circuit,
            r.t_clk_ns,
            r.t_init_ns,
            r.min_area.n_foa,
            r.min_area.n_f,
            r.min_area.n_fn,
            r.min_area.t_exec.as_secs_f64(),
            format!("{}{foa2}", r.lac.n_foa),
            r.lac.n_f,
            r.lac.n_fn,
            r.n_wr,
            r.lac.t_exec.as_secs_f64(),
            decr,
        );
    }
    let avg = average_decrease_pct(rows);
    let _ = writeln!(
        s,
        "{:<8} total baseline N_FOA = {base_sum}, total LAC N_FOA = {lac_sum}, average decrease = {}",
        "Average",
        match avg {
            Some(p) => format!("{p:.0}%"),
            None => "-".to_string(),
        }
    );
    s
}

/// Formats rows as a GitHub-flavoured Markdown table (for EXPERIMENTS.md
/// style reports).
pub fn format_table_markdown(rows: &[TableRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "| circuit | T_clk/ns | T_init/ns | base N_FOA | base N_F | base N_FN | LAC N_FOA | LAC N_F | LAC N_FN | N_wr | decrease |"
    );
    let _ = writeln!(
        s,
        "|---------|---------:|----------:|-----------:|---------:|----------:|----------:|--------:|---------:|-----:|---------:|"
    );
    for r in rows {
        let foa2 = match &r.second_iteration {
            None => String::new(),
            Some(Ok(n)) => format!(" ({n})"),
            Some(Err(_)) => " (N/A)".to_string(),
        };
        let decr = match r.decrease_pct {
            Some(p) => format!("{p:.0} %"),
            None => "—".to_string(),
        };
        let _ = writeln!(
            s,
            "| {} | {:.2} | {:.2} | {} | {} | {} | {}{foa2} | {} | {} | {} | {decr} |",
            r.circuit,
            r.t_clk_ns,
            r.t_init_ns,
            r.min_area.n_foa,
            r.min_area.n_f,
            r.min_area.n_fn,
            r.lac.n_foa,
            r.lac.n_f,
            r.lac.n_fn,
            r.n_wr,
        );
    }
    s
}

/// Mean of the per-circuit decrease percentages (over circuits where the
/// baseline had violations), the paper's "84% on the average".
pub fn average_decrease_pct(rows: &[TableRow]) -> Option<f64> {
    let vals: Vec<f64> = rows.iter().filter_map(|r| r.decrease_pct).collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacr_floorplan::anneal::FloorplanConfig;

    fn quick() -> PlannerConfig {
        PlannerConfig {
            floorplan: FloorplanConfig {
                moves: 800,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn single_circuit_row_is_sane() {
        let row = run_circuit("s344", &quick()).expect("s344 plans");
        assert!(row.t_clk_ns <= row.t_init_ns);
        assert!(row.t_min_ns <= row.t_clk_ns);
        assert!(row.lac.n_foa <= row.min_area.n_foa);
        assert!(row.lac.n_f >= 0 && row.min_area.n_f >= 0);
        assert!(row.n_wr >= 1);
        // The convergence trajectory exists and its best round is the
        // reported N_FOA (the loop keeps the best-seen result).
        assert!(!row.n_foa_trajectory.is_empty());
        assert_eq!(
            row.n_foa_trajectory.iter().copied().min(),
            Some(row.lac.n_foa)
        );
    }

    #[test]
    fn table_formatting_contains_rows() {
        let row = run_circuit("s344", &quick()).expect("s344 plans");
        let txt = format_table(&[row]);
        assert!(txt.contains("s344"));
        assert!(txt.contains("LAC-Retiming"));
    }

    #[test]
    fn average_decrease_ignores_clean_baselines() {
        assert_eq!(average_decrease_pct(&[]), None);
    }

    #[test]
    fn markdown_table_is_wellformed() {
        let row = run_circuit("s344", &quick()).expect("s344 plans");
        let md = format_table_markdown(std::slice::from_ref(&row));
        let lines: Vec<&str> = md.lines().collect();
        assert!(lines.len() >= 3);
        let cols = lines[0].matches('|').count();
        assert!(lines.iter().all(|l| l.matches('|').count() == cols));
        assert!(md.contains("s344"));
    }
}
