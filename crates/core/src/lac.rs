//! Local area constrained retiming (§4.2) — the paper's contribution.
//!
//! The LAC-retiming problem asks for a retiming satisfying the edge-weight
//! constraints (Eqn. 1), the clocking constraints (Eqn. 2) **and** the
//! local area constraints (Eqn. 3): the flip-flops charged to each tile
//! (every flip-flop is placed in the tile of its fanin unit) must fit that
//! tile's capacity. The constraints are linear but couple many retiming
//! variables per tile, so the ILP is NP-complete; the paper's heuristic
//! solves a series of *weighted* min-area retimings, re-weighting each
//! tile by its utilisation:
//!
//! ```text
//! new_weight(t) = old_weight(t) · ((1 − α) + α · AC(t) / C(t))
//! ```
//!
//! until no tile overflows or no improvement is seen for `N_max`
//! consecutive rounds. Generating the clock-period constraints **once**
//! keeps the total run time in the same order as a single min-area
//! retiming.

use lacr_mcmf::Constraint;
use lacr_prng::Rng;
use lacr_retime::{
    edge_constraints, EdgeId, MinAreaSolver, PeriodConstraints, RetimeError, RetimeGraph,
    RetimingOutcome, VertexId, VertexKind,
};

/// Parameters of the LAC loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LacConfig {
    /// Blend factor α between the previous weight and the utilisation
    /// ratio; the paper reports α ≈ 0.2 works best.
    pub alpha: f64,
    /// Give up after this many consecutive non-improving rounds.
    pub n_max: usize,
    /// Hard cap on total weighted retimings (safety bound).
    pub max_rounds: usize,
    /// Optional wall-clock deadline: once passed, the loop stops after
    /// the current round and returns its best-so-far result with
    /// [`LacResult::timed_out`] set.
    pub deadline: Option<std::time::Instant>,
}

impl Default for LacConfig {
    fn default() -> Self {
        Self {
            alpha: 0.2,
            n_max: 10,
            max_rounds: 60,
            deadline: None,
        }
    }
}

/// Per-tile flip-flop occupancy and violation accounting for one retiming.
#[derive(Debug, Clone, PartialEq)]
pub struct TileOccupancy {
    /// Flip-flops charged to each tile (`AC(t)` in flip-flop counts).
    pub counts: Vec<i64>,
    /// Flip-flops exceeding each tile's capacity.
    pub violations: Vec<i64>,
}

impl TileOccupancy {
    /// Computes `AC(t)` under the fanin-placement rule and the violation
    /// counts against integer tile capacities `⌊caps_ff⌋`.
    ///
    /// Vertices without a tile contribute to no tile (their flip-flops are
    /// unconstrained).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not parallel to the graph's edges.
    pub fn compute(graph: &RetimeGraph, weights: &[i64], caps_ff: &[f64]) -> Self {
        assert_eq!(weights.len(), graph.num_edges());
        let mut counts = vec![0i64; caps_ff.len()];
        for (ei, e) in graph.edges().iter().enumerate() {
            if weights[ei] == 0 {
                continue;
            }
            if let Some(t) = graph.tile(e.from) {
                counts[t] += weights[ei];
            }
        }
        let violations = counts
            .iter()
            .zip(caps_ff)
            .map(|(&ac, &cap)| (ac - cap.floor().max(0.0) as i64).max(0))
            .collect();
        Self { counts, violations }
    }

    /// Total flip-flops violating their tile capacity — the paper's
    /// `N_FOA`.
    pub fn total_violations(&self) -> i64 {
        self.violations.iter().sum()
    }

    /// The tiles still overflowing, as `(tile index, excess flip-flops)`
    /// pairs — the per-tile diagnostic attached to degraded plans.
    pub fn overflowing_tiles(&self) -> Vec<(usize, i64)> {
        self.violations
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0)
            .map(|(t, &v)| (t, v))
            .collect()
    }

    /// One-line human-readable overflow report, e.g.
    /// `"3 flip-flops over capacity in 2 tiles: tile 4 (+2), tile 7 (+1)"`.
    pub fn overflow_summary(&self) -> String {
        let over = self.overflowing_tiles();
        if over.is_empty() {
            return "no tile overflow".into();
        }
        let detail: Vec<String> = over
            .iter()
            .take(8)
            .map(|(t, v)| format!("tile {t} (+{v})"))
            .collect();
        let ellipsis = if over.len() > 8 { ", …" } else { "" };
        format!(
            "{} flip-flops over capacity in {} tile(s): {}{}",
            self.total_violations(),
            over.len(),
            detail.join(", "),
            ellipsis
        )
    }
}

/// Result of [`lac_retiming`] (or of scoring a plain min-area retiming
/// with [`score_outcome`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LacResult {
    /// The chosen retiming.
    pub outcome: RetimingOutcome,
    /// `N_FOA`: flip-flops violating local area constraints.
    pub n_foa: i64,
    /// `N_F`: total flip-flops.
    pub n_f: i64,
    /// `N_FN`: flip-flops inserted into interconnects (on edges driven by
    /// an interconnect unit).
    pub n_fn: i64,
    /// `N_wr`: weighted min-area retimings performed.
    pub n_wr: usize,
    /// Per-tile occupancy of the chosen retiming.
    pub occupancy: TileOccupancy,
    /// `N_FOA` of each round, for convergence analysis.
    pub history: Vec<i64>,
    /// Whether the loop stopped on an expired deadline rather than on
    /// convergence (the result is the best seen up to that point).
    pub timed_out: bool,
}

impl LacResult {
    /// Ranking key for comparing outcomes: fewer violations first, then
    /// fewer flip-flops. Any legal plan (`n_foa == 0`) ranks strictly
    /// above every fallback that still overflows.
    pub fn score_key(&self) -> (i64, i64) {
        (self.n_foa, self.n_f)
    }
}

/// Counts flip-flops sitting inside interconnects: weight on edges whose
/// tail is an interconnect unit (the flip-flop physically lives in the
/// wire's tile).
pub fn flops_in_interconnect(graph: &RetimeGraph, weights: &[i64]) -> i64 {
    graph
        .edges()
        .iter()
        .zip(weights)
        .filter(|(e, _)| graph.kind(e.from) == VertexKind::Interconnect)
        .map(|(_, &w)| w)
        .sum()
}

/// Wraps an existing retiming outcome with LAC metrics (used to score the
/// min-area baseline against the same tile capacities).
pub fn score_outcome(graph: &RetimeGraph, outcome: RetimingOutcome, caps_ff: &[f64]) -> LacResult {
    let occupancy = TileOccupancy::compute(graph, &outcome.weights, caps_ff);
    LacResult {
        n_foa: occupancy.total_violations(),
        n_f: outcome.total_flops,
        n_fn: flops_in_interconnect(graph, &outcome.weights),
        n_wr: 1,
        history: vec![occupancy.total_violations()],
        occupancy,
        outcome,
        timed_out: false,
    }
}

/// Per-vertex view of the difference-constraint system `r(u) − r(v) ≤ b`,
/// for O(deg) legality checks of single-vertex retiming moves.
struct ConstraintIndex {
    /// `by_u[x]`: constraints `r(x) − r(other) ≤ bound`.
    by_u: Vec<Vec<(usize, i64)>>,
    /// `by_v[x]`: constraints `r(other) − r(x) ≤ bound`.
    by_v: Vec<Vec<(usize, i64)>>,
}

impl ConstraintIndex {
    fn new(n: usize, constraints: &[Constraint]) -> Self {
        let mut by_u = vec![Vec::new(); n];
        let mut by_v = vec![Vec::new(); n];
        for c in constraints {
            by_u[c.u].push((c.v, c.bound));
            by_v[c.v].push((c.u, c.bound));
        }
        Self { by_u, by_v }
    }

    /// Would `r[x] += 1` keep every constraint satisfied?
    fn can_increment(&self, r: &[i64], x: usize) -> bool {
        self.by_u[x].iter().all(|&(v, b)| r[x] + 1 - r[v] <= b)
    }

    /// Would `r[x] -= 1` keep every constraint satisfied?
    fn can_decrement(&self, r: &[i64], x: usize) -> bool {
        self.by_v[x].iter().all(|&(u, b)| r[u] - (r[x] - 1) <= b)
    }
}

/// One applied slide step, for rollback: `(vertex, delta)`.
type SlideStep = (usize, i64);

/// Working state of the flip-flop placement legaliser.
struct Legalizer<'g> {
    graph: &'g RetimeGraph,
    /// Integer per-tile capacities `⌊caps_ff⌋`.
    cap: Vec<i64>,
    /// Single in/out edge of chain-interior interconnect vertices.
    only_in: Vec<Option<EdgeId>>,
    only_out: Vec<Option<EdgeId>>,
    r: Vec<i64>,
    weights: Vec<i64>,
    counts: Vec<i64>,
}

/// Flip-flop placement legalisation: clears residual local-area violations
/// a weighted min-area round leaves behind. A weighted retiming always
/// lands on an extreme point of the constraint polytope, and near a tight
/// packing every extreme point over- or under-shoots, so a few excess
/// flip-flops remain that only *local* moves can place. Two move kinds,
/// each a sequence of single-vertex retimings validated against the full
/// constraint system (edge legality + clock period):
///
/// * **chain slides** — a flip-flop on a connection chain slides along the
///   chain (the route the wire actually takes) into any tile with spare
///   capacity; interconnect units have exactly one fanin and fanout, so
///   the total flip-flop count never changes;
/// * **cluster moves** — when a chain never leaves the overfull tile, the
///   flip-flop can only escape by retiming a functional endpoint of its
///   connection. A unit retiming of a vertex *set* S (`r(S) ± 1`) moves
///   flip-flops across S's boundary only: every boundary edge that loses a
///   flip-flop must carry one, and every constraint that tightens must
///   have slack. Growing S from a seed gate by closure — absorb the far
///   endpoint of any flop-less losing edge and of any tight constraint —
///   always yields a legal composite move (or hits the host / a size cap
///   and is abandoned). Single-gate retimings, chain re-staging and
///   multi-fanin pull-throughs all arise as special cases.
fn legalize_flop_placement(
    graph: &RetimeGraph,
    cons: &ConstraintIndex,
    caps_ff: &[f64],
    outcome: &mut RetimingOutcome,
) {
    // Single in/out edge of every interconnect vertex (chains are linear).
    let n = graph.num_vertices();
    let mut only_in = vec![None; n];
    let mut only_out = vec![None; n];
    for v in graph.vertex_ids() {
        if graph.kind(v) == VertexKind::Interconnect {
            let ins: Vec<_> = graph.in_edges(v).collect();
            let outs: Vec<_> = graph.out_edges(v).collect();
            if ins.len() == 1 && outs.len() == 1 {
                only_in[v.index()] = Some(ins[0]);
                only_out[v.index()] = Some(outs[0]);
            }
        }
    }

    let weights = std::mem::take(&mut outcome.weights);
    let counts = TileOccupancy::compute(graph, &weights, caps_ff).counts;
    let mut lg = Legalizer {
        graph,
        cap: caps_ff.iter().map(|c| c.floor().max(0.0) as i64).collect(),
        only_in,
        only_out,
        r: std::mem::take(&mut outcome.retiming),
        weights,
        counts,
    };

    lg.slide_pass(cons);

    // Cluster moves, explored with a small beam search; a flip-flop
    // budget keeps N_F within a few percent of the optimum.
    //
    // A single move often trades one violation for another (the freed
    // flip-flops land on chains that are also tight), so greedy descent
    // dead-ends: reaching zero can require passing through states whose
    // violation count is temporarily worse. The beam keeps the BEAM_WIDTH
    // best unexplored states per depth, never revisits a state
    // (fingerprint tabu), and returns the best state seen anywhere.
    let budget = {
        let flops: i64 = lg.weights.iter().sum();
        flops + (flops / 20).max(2)
    };
    const BEAM_WIDTH: usize = 4;
    const MAX_DEPTH: usize = 24;
    const MAX_CANDIDATES: usize = 64;
    // FNV-style fingerprint of the retiming vector, for the tabu set.
    fn fingerprint(r: &[i64]) -> u64 {
        r.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &x| {
            (h ^ x as u64).wrapping_mul(0x0000_0100_0000_01b3)
        })
    }
    type State = (i64, Vec<i64>, Vec<i64>, Vec<i64>);
    // Membership-only tabu set — never iterated, so hash ordering cannot
    // leak into which states the beam explores. (The frontier itself is
    // built in deterministic seed order and sorted stably by excess, so
    // equal-excess states keep their insertion order.)
    let mut seen = std::collections::HashSet::new();
    seen.insert(fingerprint(&lg.r));
    let mut best: State = (
        lg.total_excess(),
        lg.r.clone(),
        lg.weights.clone(),
        lg.counts.clone(),
    );
    let mut beam: Vec<State> = vec![best.clone()];
    for _depth in 0..MAX_DEPTH {
        if best.0 == 0 {
            break;
        }
        let mut frontier: Vec<State> = Vec::new();
        for (_, r0, w0, c0) in &beam {
            lg.r = r0.clone();
            lg.weights = w0.clone();
            lg.counts = c0.clone();

            // Seeds: the two endpoints of every connection holding a
            // flip-flop charged to an overfull tile. Retiming the source
            // side up (a cluster grown from it) frees the flip-flop
            // backwards onto the source's fanins; retiming the sink side
            // down pulls it forwards onto the sink's fanouts.
            let mut candidates: Vec<(usize, bool)> = Vec::new();
            for ei in 0..graph.num_edges() {
                let e = EdgeId(ei as u32);
                if lg.weights[ei] == 0 || !lg.overfull(graph.tile(graph.edge(e).from)) {
                    continue;
                }
                candidates.push((lg.connection_source(e).index(), true));
                candidates.push((lg.connection_sink(e).index(), false));
            }
            candidates.sort_unstable();
            candidates.dedup();
            candidates.truncate(MAX_CANDIDATES);

            for (seed, up) in candidates {
                if lg.try_cluster_move(cons, seed, up, budget) {
                    lg.slide_pass(cons);
                    let fp = fingerprint(&lg.r);
                    if seen.insert(fp) {
                        frontier.push((
                            lg.total_excess(),
                            lg.r.clone(),
                            lg.weights.clone(),
                            lg.counts.clone(),
                        ));
                    }
                }
                lg.r = r0.clone();
                lg.weights = w0.clone();
                lg.counts = c0.clone();
            }
        }
        if frontier.is_empty() {
            break;
        }
        frontier.sort_by_key(|(excess, ..)| *excess);
        frontier.truncate(BEAM_WIDTH);
        if frontier[0].0 < best.0 {
            best = frontier[0].clone();
        }
        beam = frontier;
    }
    let (_, r, weights, counts) = best;
    lg.r = r;
    lg.weights = weights;
    lg.counts = counts;

    outcome.total_flops = lg.weights.iter().sum();
    outcome.period = graph
        .clock_period(&lg.weights)
        .expect("legalised weights stay acyclic on zero-weight subgraph");
    outcome.retiming = lg.r;
    outcome.weights = lg.weights;
}

impl Legalizer<'_> {
    fn total_excess(&self) -> i64 {
        self.counts
            .iter()
            .zip(&self.cap)
            .map(|(&c, &k)| (c - k).max(0))
            .sum()
    }

    fn overfull(&self, t: Option<usize>) -> bool {
        t.is_some_and(|t| self.counts[t] > self.cap[t])
    }

    /// The functional (or host) vertex driving the connection `e` lies on,
    /// found by walking upstream through the chain's interconnect units.
    fn connection_source(&self, e: EdgeId) -> VertexId {
        let mut tail = self.graph.edge(e).from;
        while let Some(prev) = self.only_in[tail.index()] {
            tail = self.graph.edge(prev).from;
        }
        tail
    }

    /// The functional (or host) vertex the connection `e` lies on feeds,
    /// found by walking downstream through the chain's interconnect units.
    fn connection_sink(&self, e: EdgeId) -> VertexId {
        let mut head = self.graph.edge(e).to;
        while let Some(next) = self.only_out[head.index()] {
            head = self.graph.edge(next).to;
        }
        head
    }

    /// Grows the closure of `{seed}` for a legal unit retiming of a whole
    /// vertex set (`r[S] += 1` when `increment`, else `r[S] -= 1`):
    ///
    /// * a boundary edge that would lose a flip-flop but carries none
    ///   forces its far endpoint into S (edges inside S never change);
    /// * a constraint that would tighten and is already tight forces its
    ///   far endpoint into S (constraints inside S never change).
    ///
    /// Returns the membership mask, or `None` when the closure exceeds
    /// `max_size` or swallows the whole graph (a no-op shift). The host may
    /// join S: weights and constraints only depend on retiming differences,
    /// and moves through the host are how flip-flops reach the pad ring.
    fn grow_cluster(
        &self,
        cons: &ConstraintIndex,
        seed: usize,
        increment: bool,
        max_size: usize,
    ) -> Option<Vec<bool>> {
        let mut in_s = vec![false; self.graph.num_vertices()];
        let mut queue = vec![seed];
        in_s[seed] = true;
        let mut size = 1usize;
        while let Some(x) = queue.pop() {
            if size > max_size.min(self.graph.num_vertices() - 1) {
                return None;
            }
            let v = VertexId(x as u32);
            let mut absorb = Vec::new();
            if increment {
                for e in self.graph.out_edges(v) {
                    if self.weights[e.index()] == 0 {
                        absorb.push(self.graph.edge(e).to.index());
                    }
                }
                for &(y, b) in &cons.by_u[x] {
                    if self.r[x] - self.r[y] >= b {
                        absorb.push(y);
                    }
                }
            } else {
                for e in self.graph.in_edges(v) {
                    if self.weights[e.index()] == 0 {
                        absorb.push(self.graph.edge(e).from.index());
                    }
                }
                for &(y, b) in &cons.by_v[x] {
                    if self.r[y] - self.r[x] >= b {
                        absorb.push(y);
                    }
                }
            }
            for y in absorb {
                if !in_s[y] {
                    in_s[y] = true;
                    queue.push(y);
                    size += 1;
                }
            }
        }
        Some(in_s)
    }

    /// Grows a cluster from `seed` and applies its unit retiming unless it
    /// would exceed the flip-flop `budget`. `true` iff applied.
    fn try_cluster_move(
        &mut self,
        cons: &ConstraintIndex,
        seed: usize,
        increment: bool,
        budget: i64,
    ) -> bool {
        let max_cluster = self.graph.num_vertices();
        let Some(in_s) = self.grow_cluster(cons, seed, increment, max_cluster) else {
            return false;
        };
        let d: i64 = if increment { 1 } else { -1 };
        let mut flop_delta = 0i64;
        for e in self.graph.edges() {
            match (in_s[e.from.index()], in_s[e.to.index()]) {
                (true, false) => flop_delta -= d,
                (false, true) => flop_delta += d,
                _ => {}
            }
        }
        if self.weights.iter().sum::<i64>() + flop_delta > budget {
            return false;
        }
        for (x, &m) in in_s.iter().enumerate() {
            if m {
                self.r[x] += d;
            }
        }
        for (ei, e) in self.graph.edges().iter().enumerate() {
            let delta = match (in_s[e.from.index()], in_s[e.to.index()]) {
                (true, false) => -d,
                (false, true) => d,
                _ => continue,
            };
            self.weights[ei] += delta;
            debug_assert!(self.weights[ei] >= 0, "cluster closure guarantees legality");
            if let Some(t) = self.graph.tile(e.from) {
                self.counts[t] += delta;
            }
        }
        true
    }

    /// Runs chain slides to exhaustion: every flip-flop charged to an
    /// overfull tile is offered a slide towards spare capacity, until a
    /// full sweep makes no progress.
    fn slide_pass(&mut self, cons: &ConstraintIndex) {
        loop {
            let mut progress = false;
            for t in 0..self.cap.len() {
                while self.counts[t] > self.cap[t] {
                    let mut moved = false;
                    for ei in 0..self.graph.num_edges() {
                        if self.counts[t] <= self.cap[t] {
                            break;
                        }
                        let tail = self.graph.edges()[ei].from;
                        if self.weights[ei] > 0
                            && self.graph.tile(tail) == Some(t)
                            && self.slide_flop(cons, EdgeId(ei as u32), t)
                        {
                            moved = true;
                        }
                    }
                    progress |= moved;
                    if !moved {
                        break;
                    }
                }
            }
            if !progress {
                break;
            }
        }
    }
}

impl Legalizer<'_> {
    /// Tries to move one flip-flop off edge `e` (charged to overfull tile
    /// `from_tile`) by sliding it downstream, then upstream, along its
    /// connection chain until it lands in a tile with spare capacity.
    /// Applies the move and returns `true` on success; leaves all state
    /// untouched and returns `false` otherwise.
    fn slide_flop(&mut self, cons: &ConstraintIndex, e: EdgeId, from_tile: usize) -> bool {
        // Downstream: repeatedly decrement the head of the flop's edge.
        let mut log: Vec<SlideStep> = Vec::new();
        let mut cur = e;
        loop {
            let head = self.graph.edge(cur).to;
            let x = head.index();
            let (Some(_), Some(eout)) = (self.only_in[x], self.only_out[x]) else {
                break;
            };
            if self.weights[cur.index()] < 1 || !cons.can_decrement(&self.r, x) {
                break;
            }
            self.r[x] -= 1;
            self.weights[cur.index()] -= 1;
            self.weights[eout.index()] += 1;
            let dst = self.graph.tile(head).expect("interconnect units are tiled");
            if let Some(t) = self.graph.tile(self.graph.edge(cur).from) {
                self.counts[t] -= 1;
            }
            self.counts[dst] += 1;
            log.push((x, -1));
            if dst != from_tile && self.counts[dst] <= self.cap[dst] {
                return true;
            }
            cur = eout;
        }
        self.rollback(&log);

        // Upstream: repeatedly increment the tail of the flop's edge.
        let mut log: Vec<SlideStep> = Vec::new();
        let mut cur = e;
        loop {
            let tail = self.graph.edge(cur).from;
            let x = tail.index();
            let (Some(ein), Some(_)) = (self.only_in[x], self.only_out[x]) else {
                break;
            };
            if self.weights[cur.index()] < 1 || !cons.can_increment(&self.r, x) {
                break;
            }
            self.r[x] += 1;
            self.weights[cur.index()] -= 1;
            self.weights[ein.index()] += 1;
            let own = self.graph.tile(tail).expect("interconnect units are tiled");
            self.counts[own] -= 1;
            let pred = self.graph.edge(ein).from;
            let dst = self.graph.tile(pred);
            if let Some(t) = dst {
                self.counts[t] += 1;
            }
            log.push((x, 1));
            if let Some(t) = dst {
                if t != from_tile && self.counts[t] <= self.cap[t] {
                    return true;
                }
            }
            cur = ein;
        }
        self.rollback(&log);
        false
    }

    /// Reverts a partial slide (most recent step first).
    fn rollback(&mut self, log: &[SlideStep]) {
        for &(x, d) in log.iter().rev() {
            let (ein, eout) = (self.only_in[x].unwrap(), self.only_out[x].unwrap());
            self.r[x] -= d;
            // d = +1 slid a flop out→in; undo restores it.
            self.weights[eout.index()] += d;
            self.weights[ein.index()] -= d;
            if let Some(t) = self.graph.tile(self.graph.edge(eout).from) {
                self.counts[t] += d;
            }
            if let Some(t) = self.graph.tile(self.graph.edge(ein).from) {
                self.counts[t] -= d;
            }
        }
    }
}

/// Runs LAC-retiming: the adaptive weighted min-area loop of §4.2.
///
/// `period_constraints` must have been generated for the target period on
/// this same graph; `caps_ff` gives each tile's flip-flop capacity, with
/// one entry per tile (including the virtual pad tile, see
/// [`crate::expand::ExpandedDesign::caps_ff`]).
///
/// The best solution seen (fewest violations, then fewest flip-flops) is
/// returned; the loop exits early at zero violations.
///
/// # Errors
///
/// Propagates [`RetimeError::PeriodInfeasible`] when the target period
/// cannot be met at all.
///
/// # Panics
///
/// Panics if some vertex's tile index is out of `caps_ff` range.
pub fn lac_retiming(
    graph: &RetimeGraph,
    period_constraints: &PeriodConstraints,
    caps_ff: &[f64],
    config: &LacConfig,
) -> Result<LacResult, RetimeError> {
    let num_tiles = caps_ff.len();
    for v in graph.vertex_ids() {
        if let Some(t) = graph.tile(v) {
            assert!(t < num_tiles, "vertex tile {t} out of range {num_tiles}");
        }
    }
    let mut solver = MinAreaSolver::new(graph, period_constraints)?;
    // The full constraint system (edge legality + clock period), indexed
    // per vertex so the chain-slide legaliser can validate single-vertex
    // moves in O(deg).
    let mut all_cons = edge_constraints(graph);
    all_cons.extend(period_constraints.constraints.iter().copied());
    let cons_index = ConstraintIndex::new(graph.num_vertices(), &all_cons);
    let mut tile_weight = vec![1.0f64; num_tiles];
    let mut best: Option<LacResult> = None;
    let mut history = Vec::new();
    let mut stale = 0usize;
    let mut rounds = 0usize;
    let mut timed_out = false;

    let mut prev_counts: Option<Vec<i64>> = None;
    while rounds < config.max_rounds {
        // Deadline check: after at least one round has produced a result,
        // an expired budget stops the loop and returns best-so-far. The
        // first round always runs so the caller gets *some* retiming.
        // Polling only at this round boundary keeps the degradation path
        // deterministic under tracing.
        if best.is_some() {
            if config.deadline.is_some() {
                lacr_obs::counter!("budget.deadline_checks", 1);
            }
            if config
                .deadline
                .is_some_and(|d| std::time::Instant::now() >= d)
            {
                timed_out = true;
                break;
            }
        }
        rounds += 1;
        let _round_span = lacr_obs::span!("lac.round", round = rounds);
        // Tile weight times the vertex's base area, so the expansion's
        // ε tie-break (prefer flip-flops at functional outputs over wires)
        // persists underneath the LAC re-weighting. A tiny deterministic
        // per-vertex perturbation (< 1/1024, strictly below the ε premium)
        // breaks the LP's degeneracy: same-tile vertices otherwise share
        // one price, so re-weighting jumps between extreme points that
        // move whole tiles' worth of flip-flops at once instead of
        // migrating them one at a time. The perturbation is seeded from
        // the tile-weight vector itself: every re-weighting round then
        // lands on a fresh extreme point of the optimal face rather than
        // retrying the corner the legaliser already got stuck on, while
        // rounds with unchanged weights (e.g. α = 0) stay bit-identical.
        let wfp = tile_weight.iter().fold(0x9E37_79B9_7F4A_7C15u64, |h, &w| {
            (h ^ w.to_bits()).wrapping_mul(0x0000_0100_0000_01b3)
        });
        let mut jitter = Rng::seed_from_u64(wfp);
        let areas: Vec<f64> = graph
            .vertex_ids()
            .map(|v| {
                let perturb = 1.0 + (jitter.next_u64() >> 52) as f64 / 4_194_304.0;
                match graph.tile(v) {
                    Some(t) => tile_weight[t] * graph.area(v) * perturb,
                    None => graph.area(v) * perturb,
                }
            })
            .collect();
        let mut outcome = match solver.solve(&areas) {
            Ok(o) => o,
            // A solver failure on a later re-weight round degrades to the
            // best-so-far result instead of throwing away earlier rounds;
            // only a first-round failure is a hard error.
            Err(_) if best.is_some() => break,
            Err(e) => return Err(e),
        };
        // Flip-flop placement repair: the weighted solve lands on an
        // extreme point; slide residual excess flops along their
        // connection chains into tiles with spare capacity.
        legalize_flop_placement(graph, &cons_index, caps_ff, &mut outcome);
        let occupancy = TileOccupancy::compute(graph, &outcome.weights, caps_ff);
        let n_foa = occupancy.total_violations();
        history.push(n_foa);

        let improved = match &best {
            None => true,
            Some(b) => n_foa < b.n_foa || (n_foa == b.n_foa && outcome.total_flops < b.n_f),
        };
        // Per-tile occupancy churn against the previous round: how many
        // tiles changed and by how much in total.
        if lacr_obs::recording() {
            let (tiles_changed, abs_delta) = match &prev_counts {
                Some(prev) => {
                    occupancy
                        .counts
                        .iter()
                        .zip(prev)
                        .fold((0u64, 0u64), |(n, s), (&a, &b)| {
                            let d = (a - b).unsigned_abs();
                            (n + u64::from(d != 0), s + d)
                        })
                }
                None => (0, 0),
            };
            lacr_obs::counter!("lac.rounds", 1);
            lacr_obs::counter!("lac.occupancy_delta", abs_delta);
            lacr_obs::histogram!("lac.round_n_foa", n_foa.max(0) as u64);
            lacr_obs::event!(
                "lac.round_result",
                round = rounds,
                n_foa = n_foa,
                flops = outcome.total_flops,
                improved = improved,
                tiles_changed = tiles_changed
            );
            prev_counts = Some(occupancy.counts.clone());
        }
        if improved {
            best = Some(LacResult {
                n_foa,
                n_f: outcome.total_flops,
                n_fn: flops_in_interconnect(graph, &outcome.weights),
                n_wr: rounds,
                occupancy: occupancy.clone(),
                outcome,
                history: Vec::new(),
                timed_out: false,
            });
            stale = 0;
        } else {
            stale += 1;
        }
        if n_foa == 0 || stale >= config.n_max {
            break;
        }

        // Re-weight every tile by its utilisation (Step 6 of the paper's
        // algorithm). Tiles with zero capacity but non-zero occupancy get
        // a strong push.
        let mut ratcheted = 0_u64;
        for t in 0..num_tiles {
            let ac = occupancy.counts[t] as f64;
            let cap = caps_ff[t];
            let ratio = if cap > 1e-9 {
                ac / cap
            } else if ac > 0.0 {
                8.0
            } else {
                0.0
            };
            // Monotone ratchet: only ever raise a tile's weight. Letting
            // under-utilised tiles decay below 1 makes their vertices
            // cheaper than the ε interconnect premium and floods wires
            // with flip-flops.
            let factor = (1.0 - config.alpha) + config.alpha * ratio;
            if factor > 1.0 {
                tile_weight[t] = (tile_weight[t] * factor).min(1e6);
                ratcheted += 1;
            }
        }
        lacr_obs::counter!("lac.tiles_ratcheted", ratcheted);
        lacr_obs::gauge!(
            "lac.max_tile_weight",
            tile_weight.iter().fold(1.0f64, |a, &b| a.max(b))
        );
    }

    let mut result = best.expect("at least one round ran");
    result.n_wr = rounds;
    result.history = history;
    result.timed_out = timed_out;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacr_retime::{generate_period_constraints, min_area_retiming};

    /// Two-tile ring: one flop must live on the cycle; tile 0 has no
    /// capacity, tile 1 has plenty. LAC must steer the flop to tile 1.
    fn ring_graph() -> (RetimeGraph, Vec<f64>) {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, Some(0));
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, Some(1));
        g.add_edge(a, b, 1); // flop at tile(a) = 0 initially
        g.add_edge(b, a, 0);
        (g, vec![0.0, 10.0])
    }

    #[test]
    fn lac_moves_flop_off_full_tile() {
        let (g, caps) = ring_graph();
        let pc = generate_period_constraints(&g, 100).unwrap();
        let res = lac_retiming(&g, &pc, &caps, &LacConfig::default()).expect("feasible");
        assert_eq!(res.n_foa, 0, "history {:?}", res.history);
        assert_eq!(res.n_f, 1);
        // the flop is now on the edge driven by b (tile 1)
        assert_eq!(res.occupancy.counts, vec![0, 1]);
    }

    #[test]
    fn plain_min_area_violates_where_lac_does_not() {
        let (g, caps) = ring_graph();
        // min-area has no tile preference: either placement gives 1 flop;
        // the initial placement (tile 0) violates.
        let base = min_area_retiming(&g, 100).expect("feasible");
        let scored = score_outcome(&g, base, &caps);
        // Baseline may or may not violate (solver tie), but LAC never does.
        let pc = generate_period_constraints(&g, 100).unwrap();
        let lac = lac_retiming(&g, &pc, &caps, &LacConfig::default()).unwrap();
        assert!(lac.n_foa <= scored.n_foa);
        assert_eq!(lac.n_foa, 0);
    }

    #[test]
    fn occupancy_counts_follow_fanin_rule() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, Some(0));
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, Some(1));
        g.add_edge(a, b, 3);
        g.add_edge(b, a, 2);
        let occ = TileOccupancy::compute(&g, &[3, 2], &[1.0, 1.0]);
        assert_eq!(occ.counts, vec![3, 2]);
        assert_eq!(occ.violations, vec![2, 1]);
        assert_eq!(occ.total_violations(), 3);
    }

    #[test]
    fn untiled_vertices_are_unconstrained() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, Some(0));
        g.add_edge(a, b, 5);
        g.add_edge(b, a, 0);
        let occ = TileOccupancy::compute(&g, &[5, 0], &[0.0]);
        assert_eq!(occ.total_violations(), 0);
    }

    #[test]
    fn flops_in_interconnect_counts_tails() {
        let mut g = RetimeGraph::new();
        let f = g.add_vertex(VertexKind::Functional, 1, 1.0, Some(0));
        let i = g.add_vertex(VertexKind::Interconnect, 1, 1.0, Some(0));
        g.add_edge(f, i, 2); // at functional tail: not "in interconnect"
        g.add_edge(i, f, 3); // at interconnect tail: counted
        assert_eq!(flops_in_interconnect(&g, &[2, 3]), 3);
    }

    #[test]
    fn infeasible_period_propagates() {
        let (g, caps) = ring_graph();
        // period 1 cannot be met: the cycle has 2 delay per 1 flop.
        let pc = generate_period_constraints(&g, 1).unwrap();
        let err = lac_retiming(&g, &pc, &caps, &LacConfig::default()).unwrap_err();
        assert!(matches!(err, RetimeError::PeriodInfeasible { .. }));
    }

    #[test]
    fn history_records_every_round() {
        let (g, caps) = ring_graph();
        let pc = generate_period_constraints(&g, 100).unwrap();
        let res = lac_retiming(&g, &pc, &caps, &LacConfig::default()).unwrap();
        assert_eq!(res.history.len(), res.n_wr);
        assert_eq!(*res.history.last().unwrap(), 0);
    }

    #[test]
    fn alpha_zero_never_reweights() {
        // With α = 0 the weights stay uniform, so every round repeats the
        // same solution and the loop stops after n_max stale rounds.
        let (g, caps) = ring_graph();
        let tight_caps = vec![0.0, 0.0]; // unavoidable violation
        let pc = generate_period_constraints(&g, 100).unwrap();
        let cfg = LacConfig {
            alpha: 0.0,
            n_max: 3,
            max_rounds: 50,
            ..Default::default()
        };
        let res = lac_retiming(&g, &pc, &tight_caps, &cfg).unwrap();
        assert_eq!(res.n_foa, 1); // one flop must exist somewhere
        assert!(res.n_wr <= 4, "stopped after n_max stale rounds");
        let _ = caps;
    }

    #[test]
    fn max_rounds_caps_the_loop() {
        let (g, _) = ring_graph();
        let caps = vec![0.0, 0.0];
        let pc = generate_period_constraints(&g, 100).unwrap();
        let cfg = LacConfig {
            alpha: 0.5,
            n_max: 1_000,
            max_rounds: 2,
            ..Default::default()
        };
        let res = lac_retiming(&g, &pc, &caps, &cfg).unwrap();
        assert_eq!(res.n_wr, 2);
    }

    #[test]
    fn expired_deadline_returns_best_so_far_as_timed_out() {
        let (g, _) = ring_graph();
        let caps = vec![0.0, 0.0]; // unavoidable violation keeps the loop busy
        let pc = generate_period_constraints(&g, 100).unwrap();
        let cfg = LacConfig {
            deadline: Some(std::time::Instant::now()),
            ..Default::default()
        };
        let res = lac_retiming(&g, &pc, &caps, &cfg).unwrap();
        // The first round always runs; the second never starts.
        assert_eq!(res.n_wr, 1);
        assert!(res.timed_out);
        assert_eq!(res.n_f, 1);
    }

    #[test]
    fn overflow_summary_names_tiles() {
        let occ = TileOccupancy {
            counts: vec![3, 0, 2],
            violations: vec![2, 0, 1],
        };
        assert_eq!(occ.overflowing_tiles(), vec![(0, 2), (2, 1)]);
        let s = occ.overflow_summary();
        assert!(s.contains("tile 0 (+2)"), "{s}");
        assert!(s.contains("tile 2 (+1)"), "{s}");
        let clean = TileOccupancy {
            counts: vec![1],
            violations: vec![0],
        };
        assert_eq!(clean.overflow_summary(), "no tile overflow");
    }

    #[test]
    fn score_key_ranks_legal_above_overflowing() {
        let (g, caps) = ring_graph();
        let pc = generate_period_constraints(&g, 100).unwrap();
        let legal = lac_retiming(&g, &pc, &caps, &LacConfig::default()).unwrap();
        let squeezed = lac_retiming(&g, &pc, &[0.0, 0.0], &LacConfig::default()).unwrap();
        assert!(legal.score_key() < squeezed.score_key());
    }
}
