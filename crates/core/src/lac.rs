//! Local area constrained retiming (§4.2) — the paper's contribution.
//!
//! The LAC-retiming problem asks for a retiming satisfying the edge-weight
//! constraints (Eqn. 1), the clocking constraints (Eqn. 2) **and** the
//! local area constraints (Eqn. 3): the flip-flops charged to each tile
//! (every flip-flop is placed in the tile of its fanin unit) must fit that
//! tile's capacity. The constraints are linear but couple many retiming
//! variables per tile, so the ILP is NP-complete; the paper's heuristic
//! solves a series of *weighted* min-area retimings, re-weighting each
//! tile by its utilisation:
//!
//! ```text
//! new_weight(t) = old_weight(t) · ((1 − α) + α · AC(t) / C(t))
//! ```
//!
//! until no tile overflows or no improvement is seen for `N_max`
//! consecutive rounds. Generating the clock-period constraints **once**
//! keeps the total run time in the same order as a single min-area
//! retiming.

use lacr_retime::{
    MinAreaSolver, PeriodConstraints, RetimeError, RetimeGraph, RetimingOutcome, VertexKind,
};

/// Parameters of the LAC loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LacConfig {
    /// Blend factor α between the previous weight and the utilisation
    /// ratio; the paper reports α ≈ 0.2 works best.
    pub alpha: f64,
    /// Give up after this many consecutive non-improving rounds.
    pub n_max: usize,
    /// Hard cap on total weighted retimings (safety bound).
    pub max_rounds: usize,
}

impl Default for LacConfig {
    fn default() -> Self {
        Self {
            alpha: 0.2,
            n_max: 10,
            max_rounds: 60,
        }
    }
}

/// Per-tile flip-flop occupancy and violation accounting for one retiming.
#[derive(Debug, Clone, PartialEq)]
pub struct TileOccupancy {
    /// Flip-flops charged to each tile (`AC(t)` in flip-flop counts).
    pub counts: Vec<i64>,
    /// Flip-flops exceeding each tile's capacity.
    pub violations: Vec<i64>,
}

impl TileOccupancy {
    /// Computes `AC(t)` under the fanin-placement rule and the violation
    /// counts against integer tile capacities `⌊caps_ff⌋`.
    ///
    /// Vertices without a tile contribute to no tile (their flip-flops are
    /// unconstrained).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not parallel to the graph's edges.
    pub fn compute(graph: &RetimeGraph, weights: &[i64], caps_ff: &[f64]) -> Self {
        assert_eq!(weights.len(), graph.num_edges());
        let mut counts = vec![0i64; caps_ff.len()];
        for (ei, e) in graph.edges().iter().enumerate() {
            if weights[ei] == 0 {
                continue;
            }
            if let Some(t) = graph.tile(e.from) {
                counts[t] += weights[ei];
            }
        }
        let violations = counts
            .iter()
            .zip(caps_ff)
            .map(|(&ac, &cap)| (ac - cap.floor().max(0.0) as i64).max(0))
            .collect();
        Self { counts, violations }
    }

    /// Total flip-flops violating their tile capacity — the paper's
    /// `N_FOA`.
    pub fn total_violations(&self) -> i64 {
        self.violations.iter().sum()
    }
}

/// Result of [`lac_retiming`] (or of scoring a plain min-area retiming
/// with [`score_outcome`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LacResult {
    /// The chosen retiming.
    pub outcome: RetimingOutcome,
    /// `N_FOA`: flip-flops violating local area constraints.
    pub n_foa: i64,
    /// `N_F`: total flip-flops.
    pub n_f: i64,
    /// `N_FN`: flip-flops inserted into interconnects (on edges driven by
    /// an interconnect unit).
    pub n_fn: i64,
    /// `N_wr`: weighted min-area retimings performed.
    pub n_wr: usize,
    /// Per-tile occupancy of the chosen retiming.
    pub occupancy: TileOccupancy,
    /// `N_FOA` of each round, for convergence analysis.
    pub history: Vec<i64>,
}

/// Counts flip-flops sitting inside interconnects: weight on edges whose
/// tail is an interconnect unit (the flip-flop physically lives in the
/// wire's tile).
pub fn flops_in_interconnect(graph: &RetimeGraph, weights: &[i64]) -> i64 {
    graph
        .edges()
        .iter()
        .zip(weights)
        .filter(|(e, _)| graph.kind(e.from) == VertexKind::Interconnect)
        .map(|(_, &w)| w)
        .sum()
}

/// Wraps an existing retiming outcome with LAC metrics (used to score the
/// min-area baseline against the same tile capacities).
pub fn score_outcome(
    graph: &RetimeGraph,
    outcome: RetimingOutcome,
    caps_ff: &[f64],
) -> LacResult {
    let occupancy = TileOccupancy::compute(graph, &outcome.weights, caps_ff);
    LacResult {
        n_foa: occupancy.total_violations(),
        n_f: outcome.total_flops,
        n_fn: flops_in_interconnect(graph, &outcome.weights),
        n_wr: 1,
        history: vec![occupancy.total_violations()],
        occupancy,
        outcome,
    }
}

/// Runs LAC-retiming: the adaptive weighted min-area loop of §4.2.
///
/// `period_constraints` must have been generated for the target period on
/// this same graph; `caps_ff` gives each tile's flip-flop capacity, with
/// one entry per tile (including the virtual pad tile, see
/// [`crate::expand::ExpandedDesign::caps_ff`]).
///
/// The best solution seen (fewest violations, then fewest flip-flops) is
/// returned; the loop exits early at zero violations.
///
/// # Errors
///
/// Propagates [`RetimeError::PeriodInfeasible`] when the target period
/// cannot be met at all.
///
/// # Panics
///
/// Panics if some vertex's tile index is out of `caps_ff` range.
pub fn lac_retiming(
    graph: &RetimeGraph,
    period_constraints: &PeriodConstraints,
    caps_ff: &[f64],
    config: &LacConfig,
) -> Result<LacResult, RetimeError> {
    let num_tiles = caps_ff.len();
    for v in graph.vertex_ids() {
        if let Some(t) = graph.tile(v) {
            assert!(t < num_tiles, "vertex tile {t} out of range {num_tiles}");
        }
    }
    let mut solver = MinAreaSolver::new(graph, period_constraints)?;
    let mut tile_weight = vec![1.0f64; num_tiles];
    let mut best: Option<LacResult> = None;
    let mut history = Vec::new();
    let mut stale = 0usize;
    let mut rounds = 0usize;

    while rounds < config.max_rounds {
        rounds += 1;
        // Tile weight times the vertex's base area, so the expansion's
        // ε tie-break (prefer flip-flops at functional outputs over wires)
        // persists underneath the LAC re-weighting.
        let areas: Vec<f64> = graph
            .vertex_ids()
            .map(|v| match graph.tile(v) {
                Some(t) => tile_weight[t] * graph.area(v),
                None => graph.area(v),
            })
            .collect();
        let outcome = solver.solve(&areas)?;
        let occupancy = TileOccupancy::compute(graph, &outcome.weights, caps_ff);
        let n_foa = occupancy.total_violations();
        history.push(n_foa);

        let improved = match &best {
            None => true,
            Some(b) => {
                n_foa < b.n_foa || (n_foa == b.n_foa && outcome.total_flops < b.n_f)
            }
        };
        if improved {
            best = Some(LacResult {
                n_foa,
                n_f: outcome.total_flops,
                n_fn: flops_in_interconnect(graph, &outcome.weights),
                n_wr: rounds,
                occupancy: occupancy.clone(),
                outcome,
                history: Vec::new(),
            });
            stale = 0;
        } else {
            stale += 1;
        }
        if n_foa == 0 || stale >= config.n_max {
            break;
        }

        // Re-weight every tile by its utilisation (Step 6 of the paper's
        // algorithm). Tiles with zero capacity but non-zero occupancy get
        // a strong push.
        for t in 0..num_tiles {
            let ac = occupancy.counts[t] as f64;
            let cap = caps_ff[t];
            let ratio = if cap > 1e-9 {
                ac / cap
            } else if ac > 0.0 {
                8.0
            } else {
                0.0
            };
            tile_weight[t] *= (1.0 - config.alpha) + config.alpha * ratio;
            tile_weight[t] = tile_weight[t].clamp(1e-3, 1e6);
        }
    }

    let mut result = best.expect("at least one round ran");
    result.n_wr = rounds;
    result.history = history;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacr_retime::{generate_period_constraints, min_area_retiming, ConstraintOptions};

    /// Two-tile ring: one flop must live on the cycle; tile 0 has no
    /// capacity, tile 1 has plenty. LAC must steer the flop to tile 1.
    fn ring_graph() -> (RetimeGraph, Vec<f64>) {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, Some(0));
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, Some(1));
        g.add_edge(a, b, 1); // flop at tile(a) = 0 initially
        g.add_edge(b, a, 0);
        (g, vec![0.0, 10.0])
    }

    #[test]
    fn lac_moves_flop_off_full_tile() {
        let (g, caps) = ring_graph();
        let pc = generate_period_constraints(&g, 100, ConstraintOptions::default());
        let res = lac_retiming(&g, &pc, &caps, &LacConfig::default()).expect("feasible");
        assert_eq!(res.n_foa, 0, "history {:?}", res.history);
        assert_eq!(res.n_f, 1);
        // the flop is now on the edge driven by b (tile 1)
        assert_eq!(res.occupancy.counts, vec![0, 1]);
    }

    #[test]
    fn plain_min_area_violates_where_lac_does_not() {
        let (g, caps) = ring_graph();
        // min-area has no tile preference: either placement gives 1 flop;
        // the initial placement (tile 0) violates.
        let base = min_area_retiming(&g, 100).expect("feasible");
        let scored = score_outcome(&g, base, &caps);
        // Baseline may or may not violate (solver tie), but LAC never does.
        let pc = generate_period_constraints(&g, 100, ConstraintOptions::default());
        let lac = lac_retiming(&g, &pc, &caps, &LacConfig::default()).unwrap();
        assert!(lac.n_foa <= scored.n_foa);
        assert_eq!(lac.n_foa, 0);
    }

    #[test]
    fn occupancy_counts_follow_fanin_rule() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Functional, 1, 1.0, Some(0));
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, Some(1));
        g.add_edge(a, b, 3);
        g.add_edge(b, a, 2);
        let occ = TileOccupancy::compute(&g, &[3, 2], &[1.0, 1.0]);
        assert_eq!(occ.counts, vec![3, 2]);
        assert_eq!(occ.violations, vec![2, 1]);
        assert_eq!(occ.total_violations(), 3);
    }

    #[test]
    fn untiled_vertices_are_unconstrained() {
        let mut g = RetimeGraph::new();
        let a = g.add_vertex(VertexKind::Host, 0, 1.0, None);
        let b = g.add_vertex(VertexKind::Functional, 1, 1.0, Some(0));
        g.add_edge(a, b, 5);
        g.add_edge(b, a, 0);
        let occ = TileOccupancy::compute(&g, &[5, 0], &[0.0]);
        assert_eq!(occ.total_violations(), 0);
    }

    #[test]
    fn flops_in_interconnect_counts_tails() {
        let mut g = RetimeGraph::new();
        let f = g.add_vertex(VertexKind::Functional, 1, 1.0, Some(0));
        let i = g.add_vertex(VertexKind::Interconnect, 1, 1.0, Some(0));
        g.add_edge(f, i, 2); // at functional tail: not "in interconnect"
        g.add_edge(i, f, 3); // at interconnect tail: counted
        assert_eq!(flops_in_interconnect(&g, &[2, 3]), 3);
    }

    #[test]
    fn infeasible_period_propagates() {
        let (g, caps) = ring_graph();
        // period 1 cannot be met: the cycle has 2 delay per 1 flop.
        let pc = generate_period_constraints(&g, 1, ConstraintOptions::default());
        let err = lac_retiming(&g, &pc, &caps, &LacConfig::default()).unwrap_err();
        assert!(matches!(err, RetimeError::PeriodInfeasible { .. }));
    }

    #[test]
    fn history_records_every_round() {
        let (g, caps) = ring_graph();
        let pc = generate_period_constraints(&g, 100, ConstraintOptions::default());
        let res = lac_retiming(&g, &pc, &caps, &LacConfig::default()).unwrap();
        assert_eq!(res.history.len(), res.n_wr);
        assert_eq!(*res.history.last().unwrap(), 0);
    }

    #[test]
    fn alpha_zero_never_reweights() {
        // With α = 0 the weights stay uniform, so every round repeats the
        // same solution and the loop stops after n_max stale rounds.
        let (g, caps) = ring_graph();
        let tight_caps = vec![0.0, 0.0]; // unavoidable violation
        let pc = generate_period_constraints(&g, 100, ConstraintOptions::default());
        let cfg = LacConfig {
            alpha: 0.0,
            n_max: 3,
            max_rounds: 50,
        };
        let res = lac_retiming(&g, &pc, &tight_caps, &cfg).unwrap();
        assert_eq!(res.n_foa, 1); // one flop must exist somewhere
        assert!(res.n_wr <= 4, "stopped after n_max stale rounds");
        let _ = caps;
    }

    #[test]
    fn max_rounds_caps_the_loop() {
        let (g, _) = ring_graph();
        let caps = vec![0.0, 0.0];
        let pc = generate_period_constraints(&g, 100, ConstraintOptions::default());
        let cfg = LacConfig {
            alpha: 0.5,
            n_max: 1_000,
            max_rounds: 2,
        };
        let res = lac_retiming(&g, &pc, &caps, &cfg).unwrap();
        assert_eq!(res.n_wr, 2);
    }
}
