//! Interconnect retiming graph expansion (§3.2).
//!
//! "We represent each interconnect as a series of interconnect units,
//! which have delay but perform no logic function. Repeater insertion
//! provides a natural segmentation of an interconnect into interconnect
//! units, with the delay of each unit being the sum of the repeater delay
//! and the delay of the interconnect segment driven by the repeater."
//!
//! [`expand`] turns a circuit plus its routing into the expanded
//! [`RetimeGraph`]: every routed driver→sink connection becomes a chain
//! `u → s₁ → … → s_k → v` of interconnect-unit vertices, with the
//! connection's original flip-flops on the first chain edge (they start in
//! the driver's block) and each unit mapped to the tile of the cell its
//! driver (repeater) occupies — the paper's `P(v)` function and
//! fanin-placement rule (§4).
//!
//! The optional finer sub-segmentation the paper discusses ("even more
//! flexibility can be introduced if we further divide the interconnect
//! segment between two repeaters into several interconnect units", at the
//! cost of conservative fixed delays) is exposed through
//! [`ExpandOptions::units_per_span`], and
//! [`ExpandOptions::tile_crossing_units`] additionally splits each span
//! at tile boundaries so every tile a route traverses is a usable
//! flip-flop site under the fanin-placement rule.

use crate::error::{PlanError, PlanErrorKind, Stage};
use lacr_floorplan::tiles::{CapacityLedger, TileGrid};
use lacr_netlist::{Circuit, UnitId, UnitKind};
use lacr_repeater::try_insert_repeaters;
use lacr_retime::{RetimeGraph, VertexId, VertexKind};
use lacr_route::Routing;
use lacr_timing::{quantize_ps, Technology};
use std::collections::BTreeMap;

/// Options controlling the graph expansion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpandOptions {
    /// Interconnect units per repeater span. 1 reproduces the paper's
    /// natural segmentation; larger values add retiming flexibility.
    pub units_per_span: usize,
    /// With sub-segmentation, assign every sub-unit the *maximum* delay of
    /// its span ("find out the maximum delay of an interconnect segment
    /// under all possible ways of inserting flip-flops and assign that
    /// delay to the segment") instead of the proportional share.
    pub conservative_delays: bool,
    /// Additionally split every repeater span at tile boundaries, so each
    /// tile a route passes through contributes at least one interconnect
    /// unit. Without this, a span's single unit sits at its driving
    /// repeater and — under the fanin-placement rule — every flip-flop on
    /// a short wire is chargeable only to the *driver's* tile, even when
    /// the wire crosses into tiles with spare capacity. Splitting at
    /// crossings exposes every traversed tile as a flip-flop site, which
    /// is what lets LAC retiming relocate flip-flops along the wire.
    pub tile_crossing_units: bool,
}

impl Default for ExpandOptions {
    fn default() -> Self {
        Self {
            units_per_span: 1,
            conservative_delays: false,
            tile_crossing_units: false,
        }
    }
}

/// The expanded design: the retiming graph plus its tile capacities.
#[derive(Debug, Clone)]
pub struct ExpandedDesign {
    /// The retiming graph with functional and interconnect units.
    pub graph: RetimeGraph,
    /// Graph vertex of every circuit unit (I/O maps to the host). A
    /// `BTreeMap` so any serialisation of the design (debug dumps, the
    /// determinism suite's plan comparison) iterates in key order rather
    /// than hash order.
    pub unit_vertex: BTreeMap<UnitId, VertexId>,
    /// Interconnect-unit vertices created.
    pub num_interconnect_units: usize,
    /// Repeaters committed during expansion.
    pub num_repeaters: usize,
    /// Index of the virtual pad-ring tile that hosts flip-flops retimed
    /// onto primary I/O connections.
    pub pad_tile: usize,
    /// Flip-flop capacity per tile (in flip-flops, fractional), indexed by
    /// tile id with the pad tile last. Computed from the capacity left
    /// after repeater insertion — the paper's "remaining capacity after
    /// repeater insertion" (§4).
    pub caps_ff: Vec<f64>,
    /// For every circuit connection (in [`Circuit::edges`] order): the
    /// chain of graph edges it expanded into (one edge for same-cell
    /// connections). Summing retimed weights over a chain gives the
    /// connection's new flip-flop count, which
    /// [`crate::writeback::retimed_circuit`] uses.
    pub connection_chains: Vec<Vec<lacr_retime::EdgeId>>,
}

/// Expands `circuit` into the interconnect retiming graph.
///
/// `unit_cell[u]` is the routing-grid cell of unit `u` (its position in
/// its block); `routing.nets` must be parallel to `circuit.nets()`. The
/// `ledger` carries capacities already reduced by anything committed
/// earlier; repeater insertion debits it further, and the remaining
/// capacity becomes the flip-flop budget `C(t)`.
///
/// # Panics
///
/// Panics if `routing` does not match the circuit's nets or
/// `options.units_per_span == 0`. [`try_expand`] reports the same
/// conditions as typed errors instead.
#[allow(clippy::too_many_arguments)] // the planner's one assembly point
pub fn expand(
    circuit: &Circuit,
    technology: &Technology,
    grid: &TileGrid,
    ledger: &mut CapacityLedger,
    unit_cell: &[usize],
    routing: &Routing,
    pad_ff_capacity: f64,
    options: &ExpandOptions,
) -> ExpandedDesign {
    try_expand(
        circuit,
        technology,
        grid,
        ledger,
        unit_cell,
        routing,
        pad_ff_capacity,
        options,
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`expand`]: routing/circuit mismatches come back
/// as a [`PlanError`] at [`Stage::Expand`], and an unsatisfiable repeater
/// interval as one at [`Stage::Repeater`].
///
/// # Errors
///
/// Returns a [`PlanError`] when `routing` or `unit_cell` is not parallel
/// to the circuit, `options.units_per_span == 0`, or repeater insertion
/// fails for some routed path.
#[allow(clippy::too_many_arguments)]
pub fn try_expand(
    circuit: &Circuit,
    technology: &Technology,
    grid: &TileGrid,
    ledger: &mut CapacityLedger,
    unit_cell: &[usize],
    routing: &Routing,
    pad_ff_capacity: f64,
    options: &ExpandOptions,
) -> Result<ExpandedDesign, PlanError> {
    let mismatch = |msg: String| PlanError::new(Stage::Expand, PlanErrorKind::Expand(msg));
    if routing.nets.len() != circuit.num_nets() {
        return Err(mismatch(format!(
            "routing has {} nets for a circuit with {}",
            routing.nets.len(),
            circuit.num_nets()
        )));
    }
    if options.units_per_span == 0 {
        return Err(mismatch("units_per_span must be >= 1".into()));
    }
    if unit_cell.len() != circuit.num_units() {
        return Err(mismatch(format!(
            "unit_cell has {} entries for {} units",
            unit_cell.len(),
            circuit.num_units()
        )));
    }

    let pad_tile = grid.num_tiles();
    let mut graph = RetimeGraph::new();
    let host = graph.add_vertex(VertexKind::Host, 0, 1.0, Some(pad_tile));
    graph.set_host(host);

    let mut unit_vertex: BTreeMap<UnitId, VertexId> = BTreeMap::new();
    for uid in circuit.unit_ids() {
        let unit = circuit.unit(uid);
        let v = match unit.kind {
            UnitKind::Input | UnitKind::Output => host,
            UnitKind::Logic => {
                let delay = quantize_ps(technology.unit_delay_ps(unit.delay_ps));
                let tile = grid.tile_of_cell(unit_cell[uid.index()]);
                graph.add_vertex(VertexKind::Functional, delay, 1.0, Some(tile.index()))
            }
        };
        unit_vertex.insert(uid, v);
    }

    let mut num_interconnect_units = 0usize;
    let mut num_repeaters = 0usize;
    let mut connection_chains = Vec::new();

    for (ni, net) in circuit.nets().iter().enumerate() {
        let routed = &routing.nets[ni];
        if routed.sink_paths.len() != net.sinks.len() {
            return Err(mismatch(format!(
                "net {ni}: routing has {} sink paths for {} sinks",
                routed.sink_paths.len(),
                net.sinks.len()
            )));
        }
        let from_v = unit_vertex[&net.driver];
        for (si, sink) in net.sinks.iter().enumerate() {
            let to_v = unit_vertex[&sink.unit];
            let path = &routed.sink_paths[si];
            let ins = try_insert_repeaters(path, grid, ledger, technology)
                .map_err(|e| PlanError::new(Stage::Repeater, PlanErrorKind::Repeater(e)))?;
            num_repeaters += ins.repeater_cells.len();
            if ins.segments.is_empty() {
                // Same-cell connection: negligible wire, direct edge.
                let e = graph.add_edge(from_v, to_v, i64::from(sink.flops));
                connection_chains.push(vec![e]);
                continue;
            }
            let mut chain = Vec::new();
            let mut prev = from_v;
            let mut first = true;
            for seg in &ins.segments {
                let span_delay = technology.segment_delay_ps(seg.length_um);
                let span_cells = ((seg.length_um / grid.tile_size()).round() as usize).max(1);
                let end = (seg.start_index + span_cells).min(path.len() - 1);
                // The span's cells, `path[start..=end]`, split into runs of
                // cells sharing a tile (a single run when tile-crossing
                // segmentation is off), each run then sub-segmented
                // `units_per_span` ways.
                let mut runs: Vec<(usize, usize)> = Vec::new();
                if options.tile_crossing_units {
                    let mut run_start = seg.start_index;
                    let mut run_tile = grid.tile_of_cell(path[run_start]);
                    for i in seg.start_index + 1..=end {
                        let t = grid.tile_of_cell(path[i]);
                        if t != run_tile {
                            runs.push((run_start, i - run_start));
                            run_start = i;
                            run_tile = t;
                        }
                    }
                    runs.push((run_start, end + 1 - run_start));
                } else {
                    runs.push((seg.start_index, span_cells));
                }
                let total_cells: usize = runs.iter().map(|&(_, n)| n).sum();
                for &(run_start, run_cells) in &runs {
                    let run_delay = span_delay * run_cells as f64 / total_cells as f64;
                    let subs = options.units_per_span;
                    for k in 0..subs {
                        // Tile of the sub-unit: the cell at its
                        // proportional position along the run.
                        let offset = run_cells * k / subs;
                        let idx = (run_start + offset).min(path.len() - 1);
                        let tile = grid.tile_of_cell(path[idx]);
                        let delay = if options.conservative_delays {
                            quantize_ps(span_delay)
                        } else if subs == 1 {
                            quantize_ps(run_delay)
                        } else {
                            quantize_ps(run_delay / subs as f64)
                        };
                        // The ε area premium (1/1024, below one quantisation
                        // unit per flip-flop) makes min-area retiming break
                        // its ties lexicographically: first minimise the
                        // flip-flop count, then prefer flip-flops at
                        // functional-unit outputs over flip-flops parked in
                        // wires, which is where a physical design would put
                        // them when timing does not force otherwise.
                        let v = graph.add_vertex(
                            VertexKind::Interconnect,
                            delay,
                            1.0 + 1.0 / 1024.0,
                            Some(tile.index()),
                        );
                        num_interconnect_units += 1;
                        let w = if first { i64::from(sink.flops) } else { 0 };
                        chain.push(graph.add_edge(prev, v, w));
                        first = false;
                        prev = v;
                    }
                }
            }
            chain.push(graph.add_edge(prev, to_v, 0));
            connection_chains.push(chain);
        }
    }

    let mut caps_ff: Vec<f64> = grid
        .tile_ids()
        .map(|t| (ledger.remaining(t).max(0.0)) / technology.ff_area)
        .collect();
    caps_ff.push(pad_ff_capacity);

    lacr_obs::gauge!("expand.interconnect_units", num_interconnect_units);
    lacr_obs::gauge!("expand.repeaters", num_repeaters);
    lacr_obs::gauge!("expand.graph_vertices", graph.num_vertices());

    Ok(ExpandedDesign {
        graph,
        unit_vertex,
        num_interconnect_units,
        num_repeaters,
        pad_tile,
        caps_ff,
        connection_chains,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacr_floorplan::tiles::TileGridConfig;
    use lacr_floorplan::Floorplan;
    use lacr_netlist::{Sink, Unit};
    use lacr_route::{route, NetPins, RouteConfig};

    /// A 10×1 open grid; two logic units at opposite ends plus host I/O.
    fn setup() -> (Circuit, TileGrid, Vec<usize>, Routing) {
        let mut c = Circuit::new("t");
        let a = c.add_unit(Unit::input("a"));
        let g1 = c.add_unit(Unit::logic("g1", 1.0, 1.0));
        let g2 = c.add_unit(Unit::logic("g2", 1.0, 1.0));
        let z = c.add_unit(Unit::output("z"));
        c.add_net(a, vec![Sink::new(g1, 0)]);
        c.add_net(g1, vec![Sink::new(g2, 2)]);
        c.add_net(g2, vec![Sink::new(z, 0)]);
        let fp = Floorplan {
            blocks: vec![],
            chip_w: 5_000.0,
            chip_h: 500.0,
        };
        let grid = TileGrid::build(&fp, &[], &TileGridConfig::default());
        // a,g1 at cell 0; g2,z at cell 9.
        let unit_cell = vec![0, 0, 9, 9];
        let nets = vec![
            NetPins {
                driver: 0,
                sinks: vec![0],
            },
            NetPins {
                driver: 0,
                sinks: vec![9],
            },
            NetPins {
                driver: 9,
                sinks: vec![9],
            },
        ];
        let routing = route(grid.nx(), grid.ny(), &nets, &RouteConfig::default());
        (c, grid, unit_cell, routing)
    }

    #[test]
    fn long_connection_becomes_chain() {
        let (c, grid, unit_cell, routing) = setup();
        let tech = Technology::default();
        let mut ledger = CapacityLedger::new(&grid);
        let ed = expand(
            &c,
            &tech,
            &grid,
            &mut ledger,
            &unit_cell,
            &routing,
            10.0,
            &ExpandOptions::default(),
        );
        // 4500 µm connection with l_max 2000 → ≥ 2 repeaters → ≥ 3 units.
        assert!(ed.num_repeaters >= 2, "repeaters {}", ed.num_repeaters);
        assert_eq!(ed.num_interconnect_units, ed.num_repeaters + 1);
        // host + 2 logic + units
        assert_eq!(ed.graph.num_vertices(), 3 + ed.num_interconnect_units);
        // flops preserved
        assert_eq!(ed.graph.total_flops(), 2);
        // the two original flops sit on the first chain edge
        let host = ed.graph.host().unwrap();
        let g1 = ed.unit_vertex[&c.unit_by_name("g1").unwrap()];
        let first_chain_edge = ed
            .graph
            .out_edges(g1)
            .map(|e| ed.graph.edge(e))
            .find(|e| e.weight == 2)
            .expect("initial flops on first chain edge");
        assert_eq!(ed.graph.kind(first_chain_edge.to), VertexKind::Interconnect);
        assert_ne!(first_chain_edge.to, host);
    }

    #[test]
    fn same_cell_connection_stays_direct() {
        let (c, grid, unit_cell, routing) = setup();
        let tech = Technology::default();
        let mut ledger = CapacityLedger::new(&grid);
        let ed = expand(
            &c,
            &tech,
            &grid,
            &mut ledger,
            &unit_cell,
            &routing,
            10.0,
            &ExpandOptions::default(),
        );
        // a→g1 and g2→z are same-cell: direct edges to/from host.
        let host = ed.graph.host().unwrap();
        let direct: Vec<_> = ed.graph.out_edges(host).map(|e| ed.graph.edge(e)).collect();
        assert_eq!(direct.len(), 1);
        assert_eq!(ed.graph.kind(direct[0].to), VertexKind::Functional);
    }

    #[test]
    fn sub_segmentation_multiplies_units() {
        let (c, grid, unit_cell, routing) = setup();
        let tech = Technology::default();
        let mut ledger1 = CapacityLedger::new(&grid);
        let base = expand(
            &c,
            &tech,
            &grid,
            &mut ledger1,
            &unit_cell,
            &routing,
            10.0,
            &ExpandOptions::default(),
        );
        let mut ledger2 = CapacityLedger::new(&grid);
        let fine = expand(
            &c,
            &tech,
            &grid,
            &mut ledger2,
            &unit_cell,
            &routing,
            10.0,
            &ExpandOptions {
                units_per_span: 2,
                conservative_delays: true,
                ..ExpandOptions::default()
            },
        );
        assert_eq!(fine.num_interconnect_units, 2 * base.num_interconnect_units);
        // Conservative delays: total chain delay at least the exact one.
        let sum = |g: &RetimeGraph| -> u64 {
            g.vertex_ids()
                .filter(|&v| g.kind(v) == VertexKind::Interconnect)
                .map(|v| g.delay(v))
                .sum()
        };
        assert!(sum(&fine.graph) >= sum(&base.graph));
    }

    #[test]
    fn tile_crossing_units_cover_every_traversed_tile() {
        let (c, grid, unit_cell, routing) = setup();
        let tech = Technology::default();
        let mut ledger = CapacityLedger::new(&grid);
        let ed = expand(
            &c,
            &tech,
            &grid,
            &mut ledger,
            &unit_cell,
            &routing,
            10.0,
            &ExpandOptions {
                tile_crossing_units: true,
                ..ExpandOptions::default()
            },
        );
        // On the open 10×1 grid every cell is its own channel tile, so the
        // g1→g2 route (cells 0..=9) must yield a unit in every tile of
        // cells 0..9 — each one a flip-flop site for LAC retiming.
        let unit_tiles: std::collections::HashSet<usize> = ed
            .graph
            .vertex_ids()
            .filter(|&v| ed.graph.kind(v) == VertexKind::Interconnect)
            .filter_map(|v| ed.graph.tile(v))
            .collect();
        for cell in 0..9 {
            let t = grid.tile_of_cell(cell).index();
            assert!(unit_tiles.contains(&t), "no unit in tile of cell {cell}");
        }
        // Segmentation refines the chain but conserves wire delay: the
        // total interconnect delay matches the unsplit expansion's up to
        // one quantisation unit per extra vertex.
        let mut ledger2 = CapacityLedger::new(&grid);
        let base = expand(
            &c,
            &tech,
            &grid,
            &mut ledger2,
            &unit_cell,
            &routing,
            10.0,
            &ExpandOptions::default(),
        );
        let sum = |g: &RetimeGraph| -> u64 {
            g.vertex_ids()
                .filter(|&v| g.kind(v) == VertexKind::Interconnect)
                .map(|v| g.delay(v))
                .sum()
        };
        let extra = (ed.num_interconnect_units - base.num_interconnect_units) as u64;
        assert!(sum(&ed.graph).abs_diff(sum(&base.graph)) <= extra);
        // Flip-flops and repeater commitments are unchanged.
        assert_eq!(ed.graph.total_flops(), base.graph.total_flops());
        assert_eq!(ed.num_repeaters, base.num_repeaters);
    }

    #[test]
    fn try_expand_reports_mismatches_as_typed_errors() {
        let (c, grid, unit_cell, routing) = setup();
        let tech = Technology::default();

        let mut ledger = CapacityLedger::new(&grid);
        let empty_routing = lacr_route::Routing {
            nets: vec![],
            wirelength: 0,
            overflow: 0,
            max_usage: 0,
            edge_usage: vec![],
        };
        let err = try_expand(
            &c,
            &tech,
            &grid,
            &mut ledger,
            &unit_cell,
            &empty_routing,
            10.0,
            &ExpandOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err.stage, Stage::Expand);
        assert!(err.to_string().contains("0 nets"), "{err}");

        let err = try_expand(
            &c,
            &tech,
            &grid,
            &mut ledger,
            &unit_cell,
            &routing,
            10.0,
            &ExpandOptions {
                units_per_span: 0,
                ..ExpandOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("units_per_span"), "{err}");

        let err = try_expand(
            &c,
            &tech,
            &grid,
            &mut ledger,
            &unit_cell[..2],
            &routing,
            10.0,
            &ExpandOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("2 entries"), "{err}");
    }

    #[test]
    fn caps_include_pad_tile() {
        let (c, grid, unit_cell, routing) = setup();
        let tech = Technology::default();
        let mut ledger = CapacityLedger::new(&grid);
        let ed = expand(
            &c,
            &tech,
            &grid,
            &mut ledger,
            &unit_cell,
            &routing,
            7.5,
            &ExpandOptions::default(),
        );
        assert_eq!(ed.caps_ff.len(), grid.num_tiles() + 1);
        assert_eq!(ed.caps_ff[ed.pad_tile], 7.5);
        assert_eq!(ed.graph.tile(ed.graph.host().unwrap()), Some(ed.pad_tile));
    }

    #[test]
    fn repeaters_reduce_ff_capacity() {
        let (c, grid, unit_cell, routing) = setup();
        let tech = Technology::default();
        let mut with_ledger = CapacityLedger::new(&grid);
        let ed = expand(
            &c,
            &tech,
            &grid,
            &mut with_ledger,
            &unit_cell,
            &routing,
            0.0,
            &ExpandOptions::default(),
        );
        let fresh = CapacityLedger::new(&grid);
        let before: f64 = grid.tile_ids().map(|t| fresh.remaining(t)).sum();
        let after: f64 = grid.tile_ids().map(|t| with_ledger.remaining(t)).sum();
        assert!((before - after - ed.num_repeaters as f64 * tech.repeater_area).abs() < 1e-6);
    }
}
