//! The interconnect-planning pipeline of Figure 1.
//!
//! `partition → floorplan → tile grid → global routing → repeater
//! planning → interconnect retiming graph → (min-area | LAC) retiming`,
//! with the floorplan-expansion feedback loop for planning iteration 2
//! (§5: "we expand those congested soft blocks and channel, and then
//! perform another iteration of interconnect planning").

use crate::expand::{expand, ExpandOptions, ExpandedDesign};
use crate::lac::{lac_retiming, score_outcome, LacConfig, LacResult};
use lacr_floorplan::anneal::{floorplan, FloorplanConfig};
use lacr_floorplan::slicing::floorplan_slicing;
use lacr_floorplan::tiles::{CapacityLedger, TileGrid, TileGridConfig, TileKind};
use lacr_floorplan::{BlockSpec, Floorplan};
use lacr_netlist::{Circuit, UnitKind};
use lacr_partition::{partition, PartitionConfig, Partitioning};
use lacr_retime::{
    generate_period_constraints, min_period_retiming_with_tolerance, ConstraintOptions,
    PeriodConstraints, RetimeError,
};
use lacr_route::{route, NetPins, RouteConfig, Routing};
use lacr_timing::Technology;
use std::time::{Duration, Instant};

/// Which floorplan engine the planner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FloorplanEngine {
    /// Sequence pairs + simulated annealing (the paper's §5 setup).
    #[default]
    SequencePair,
    /// Normalized Polish expressions (Wong–Liu slicing trees) — a
    /// packing-quality baseline.
    Slicing,
}

/// Configuration of the whole planner.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Process and library parameters.
    pub technology: Technology,
    /// Number of soft blocks; `None` chooses from the circuit size.
    pub num_blocks: Option<usize>,
    /// Whitespace budget added to each block's required area. The paper's
    /// first-iteration floorplan estimates block area "based on the
    /// original netlist without any physical information", so this slack
    /// is all the room relocated flip-flops initially have.
    pub block_slack: f64,
    /// Floorplanner settings (seed is overridden by [`Self::seed`]).
    pub floorplan: FloorplanConfig,
    /// Which floorplan engine to use.
    pub floorplan_engine: FloorplanEngine,
    /// Global-routing settings.
    pub route: RouteConfig,
    /// Two-pass timing-driven routing: after a first route and timing
    /// analysis, nets are re-routed most-critical-first so timing-critical
    /// connections claim the least congested (and therefore shortest)
    /// paths — the "time-driven and congestion-aware global router" of
    /// §4.1. Off by default (the experiments use one congestion-driven
    /// pass, matching the paper's primary objective ordering).
    pub timing_driven_route: bool,
    /// Usable fraction of channel/dead-space tiles.
    pub channel_utilization: f64,
    /// Extra pitch opened between blocks after packing (0.1 = 10 % more
    /// spacing), allocating explicit channel regions as in Figure 2. The
    /// experiments use 0 (compact packing; dead space arises only from
    /// packing mismatch, and repeaters/flip-flops mostly use soft-block
    /// slack), but planners targeting channel-based architectures can
    /// raise it.
    pub channel_spread: f64,
    /// Pre-allocated site area per hard-block cell — the paper's
    /// "repeater and flip-flop sites inserted intentionally" in hard
    /// blocks (Alpert et al., reference \[1\] of the paper).
    pub hard_site_area: f64,
    /// Treat the `num_hard_blocks` largest partitions as hard blocks with
    /// fixed (square) dimensions; their only insertion capacity comes from
    /// [`Self::hard_site_area`]. 0 (the default, matching the paper's
    /// experiments) keeps every block soft.
    pub num_hard_blocks: usize,
    /// Pad-ring flip-flop capacity, per primary I/O.
    pub pad_ff_per_io: f64,
    /// `T_clk = T_min + clock_slack_frac · (T_init − T_min)` (§5 uses 0.2).
    pub clock_slack_frac: f64,
    /// Relative tolerance of the `T_min` binary search (0 = exact). On
    /// very large interconnect graphs each feasibility probe regenerates
    /// the W/D constraints, so a 1–2 % tolerance cuts planning time
    /// noticeably while moving `T_clk` only marginally.
    pub t_min_tolerance_frac: f64,
    /// LAC loop parameters.
    pub lac: LacConfig,
    /// Interconnect-unit expansion options.
    pub expand: ExpandOptions,
    /// Period-constraint generation options.
    pub constraints: ConstraintOptions,
    /// Master seed for partitioning and floorplanning.
    pub seed: u64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            technology: Technology::default(),
            num_blocks: None,
            block_slack: 0.15,
            floorplan: FloorplanConfig {
                moves: 6_000,
                ..Default::default()
            },
            floorplan_engine: FloorplanEngine::default(),
            route: RouteConfig::default(),
            timing_driven_route: false,
            channel_utilization: 0.8,
            channel_spread: 0.0,
            hard_site_area: 0.0,
            num_hard_blocks: 0,
            pad_ff_per_io: 1.0,
            clock_slack_frac: 0.2,
            t_min_tolerance_frac: 0.0,
            lac: LacConfig::default(),
            // Tile-crossing segmentation: every tile a route passes
            // through is a flip-flop site, which LAC retiming needs to
            // relocate flip-flops along wires into tiles with slack.
            expand: ExpandOptions {
                tile_crossing_units: true,
                ..ExpandOptions::default()
            },
            constraints: ConstraintOptions::default(),
            seed: 0x1acc,
        }
    }
}

/// Everything physical planning produces before retiming.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// The partitioning into blocks.
    pub partitioning: Partitioning,
    /// The floorplan of those blocks.
    pub floorplan: Floorplan,
    /// The tile grid with capacities.
    pub grid: TileGrid,
    /// Routing cell of each unit.
    pub unit_cell: Vec<usize>,
    /// The global routing of all nets.
    pub routing: Routing,
    /// The expanded retiming graph and tile capacities.
    pub expanded: ExpandedDesign,
    /// Smallest period with the *initial* flip-flop placement (ps) — the
    /// paper's `T_init`.
    pub t_init: u64,
    /// Minimum period achievable by retiming (ps) — the paper's `T_min`.
    pub t_min: u64,
    /// The target period for this planning run (ps).
    pub t_clk: u64,
}

/// One timed retiming run.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// Metrics of the run.
    pub result: LacResult,
    /// Wall-clock time of the retiming itself.
    pub elapsed: Duration,
}

/// The two retiming flavours compared by the paper, plus shared stats.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Min-area retiming baseline, scored against the tile capacities.
    pub min_area: TimedRun,
    /// LAC-retiming.
    pub lac: TimedRun,
    /// Period constraints generated (after pruning).
    pub num_period_constraints: usize,
    /// Violating pairs before pruning.
    pub pairs_before_pruning: usize,
    /// Time to generate the period constraints (shared by both runs).
    pub constraint_time: Duration,
}

impl PlanReport {
    /// The paper's headline metric: percentage decrease of `N_FOA` from
    /// min-area to LAC. `None` when the baseline has no violations.
    pub fn n_foa_decrease_pct(&self) -> Option<f64> {
        let base = self.min_area.result.n_foa;
        if base == 0 {
            None
        } else {
            Some(100.0 * (base - self.lac.result.n_foa) as f64 / base as f64)
        }
    }
}

/// Builds the physical plan: partition, floorplan (with optional per-block
/// area `growth` from a previous iteration), tile grid, routing, repeater
/// insertion and graph expansion, plus the `T_init`/`T_min`/`T_clk`
/// analysis.
///
/// # Panics
///
/// Panics if `growth` is non-empty but does not have one entry per block.
pub fn build_physical_plan(
    circuit: &Circuit,
    config: &PlannerConfig,
    growth: &[f64],
) -> PhysicalPlan {
    let tech = &config.technology;
    debug_assert!(tech.validate().is_empty(), "{:?}", tech.validate());
    let logic_units = circuit.units_of_kind(UnitKind::Logic).count();
    let num_blocks = config
        .num_blocks
        .unwrap_or_else(|| (logic_units / 40).clamp(4, 20));

    let partitioning = partition(
        circuit,
        &PartitionConfig {
            num_blocks,
            seed: config.seed,
            ..Default::default()
        },
    );
    let nb = partitioning.blocks.len();
    assert!(growth.is_empty() || growth.len() == nb);

    // Block area requirements: scaled functional units plus the *initial*
    // flip-flops (charged to the block of their fanin unit) plus slack.
    let mut unit_area = vec![0.0f64; nb];
    for (b, blk) in partitioning.blocks.iter().enumerate() {
        unit_area[b] = blk
            .units
            .iter()
            .map(|&u| tech.unit_area(circuit.unit(u).area))
            .sum();
    }
    let mut initial_ff_area = vec![0.0f64; nb];
    for e in circuit.edges() {
        let b = partitioning.block_of[e.from.index()];
        initial_ff_area[b] += f64::from(e.flops) * tech.ff_area;
    }
    // The largest `num_hard_blocks` partitions become hard macros.
    let mut by_area: Vec<usize> = (0..nb).collect();
    by_area.sort_by(|&a, &b| {
        (unit_area[b] + initial_ff_area[b])
            .partial_cmp(&(unit_area[a] + initial_ff_area[a]))
            .expect("finite areas")
    });
    let hard: std::collections::HashSet<usize> = by_area
        .iter()
        .take(config.num_hard_blocks)
        .copied()
        .collect();
    let specs: Vec<BlockSpec> = (0..nb)
        .map(|b| {
            let base = (unit_area[b] + initial_ff_area[b]) * (1.0 + config.block_slack)
                + growth.get(b).copied().unwrap_or(0.0);
            let area = base.max(tech.tile_size * tech.tile_size * 0.25);
            if hard.contains(&b) {
                let side = area.sqrt();
                BlockSpec::hard(side, side)
            } else {
                BlockSpec::soft(area)
            }
        })
        .collect();

    // Block-level nets for the floorplanner's wirelength term.
    let block_nets: Vec<Vec<usize>> = circuit
        .nets()
        .iter()
        .map(|net| {
            let mut blocks: Vec<usize> = std::iter::once(net.driver)
                .chain(net.sinks.iter().map(|s| s.unit))
                .map(|u| partitioning.block_of[u.index()])
                .collect();
            blocks.sort_unstable();
            blocks.dedup();
            blocks
        })
        .filter(|b| b.len() >= 2)
        .collect();

    let fp_config = FloorplanConfig {
        seed: config.seed ^ 0xf00d,
        ..config.floorplan.clone()
    };
    let fp = match config.floorplan_engine {
        FloorplanEngine::SequencePair => floorplan(&specs, &block_nets, &fp_config),
        FloorplanEngine::Slicing => floorplan_slicing(&specs, &block_nets, &fp_config),
    }
    .spread(config.channel_spread);
    debug_assert!(fp.validate(1e-6).is_empty(), "{:?}", fp.validate(1e-6));

    let grid = TileGrid::build(
        &fp,
        &unit_area,
        &TileGridConfig {
            tile_size: tech.tile_size,
            channel_utilization: config.channel_utilization,
            hard_site_area: config.hard_site_area,
        },
    );

    // Deterministic unit placement: a sub-grid inside each block.
    let mut unit_cell = vec![0usize; circuit.num_units()];
    for (b, blk) in partitioning.blocks.iter().enumerate() {
        let placed = &fp.blocks[b];
        let k = blk.units.len().max(1);
        let cols = (k as f64).sqrt().ceil() as usize;
        let rows = k.div_ceil(cols);
        for (i, &u) in blk.units.iter().enumerate() {
            let col = i % cols;
            let row = i / cols;
            let x = placed.x + (col as f64 + 0.5) * placed.w / cols as f64;
            let y = placed.y + (row as f64 + 0.5) * placed.h / rows as f64;
            unit_cell[u.index()] = grid.cell_of_point(x, y);
        }
    }

    let net_pins: Vec<NetPins> = circuit
        .nets()
        .iter()
        .map(|net| NetPins {
            driver: unit_cell[net.driver.index()],
            sinks: net
                .sinks
                .iter()
                .map(|s| unit_cell[s.unit.index()])
                .collect(),
        })
        .collect();
    let mut routing = route(grid.nx(), grid.ny(), &net_pins, &config.route);

    let io_count = circuit.units_of_kind(UnitKind::Input).count()
        + circuit.units_of_kind(UnitKind::Output).count();
    let build_expansion = |routing: &Routing| {
        let mut ledger = CapacityLedger::new(&grid);
        expand(
            circuit,
            tech,
            &grid,
            &mut ledger,
            &unit_cell,
            routing,
            config.pad_ff_per_io * io_count as f64,
            &config.expand,
        )
    };
    let mut expanded = build_expansion(&routing);

    if config.timing_driven_route {
        // Second pass: analyse the first-pass graph at its own unretimed
        // period, score each net by the worst criticality across its
        // connections' chains, and re-route most-critical-first.
        let weights = expanded.graph.weights();
        if let Some(period) = expanded.graph.clock_period(&weights) {
            if let Some(crit) = lacr_retime::edge_criticality(&expanded.graph, &weights, period) {
                let mut conn_idx = 0usize;
                let mut net_priority = vec![0.0f64; circuit.num_nets()];
                for (ni, net) in circuit.nets().iter().enumerate() {
                    for _ in &net.sinks {
                        let chain = &expanded.connection_chains[conn_idx];
                        let worst = chain.iter().map(|e| crit[e.index()]).fold(0.0f64, f64::max);
                        net_priority[ni] = net_priority[ni].max(worst);
                        conn_idx += 1;
                    }
                }
                let mut order: Vec<usize> = (0..circuit.num_nets()).collect();
                order.sort_by(|&a, &b| {
                    net_priority[b]
                        .partial_cmp(&net_priority[a])
                        .expect("finite criticality")
                });
                let permuted: Vec<NetPins> = order.iter().map(|&i| net_pins[i].clone()).collect();
                let rerouted = route(grid.nx(), grid.ny(), &permuted, &config.route);
                let mut nets = vec![None; circuit.num_nets()];
                for (k, &i) in order.iter().enumerate() {
                    nets[i] = Some(rerouted.nets[k].clone());
                }
                routing = Routing {
                    nets: nets.into_iter().map(|n| n.expect("permutation")).collect(),
                    ..rerouted
                };
                expanded = build_expansion(&routing);
            }
        }
    }

    let t_init = expanded
        .graph
        .clock_period(&expanded.graph.weights())
        .expect("valid circuit: every cycle registered");
    let tolerance = (t_init as f64 * config.t_min_tolerance_frac).round() as u64;
    let mp = min_period_retiming_with_tolerance(&expanded.graph, tolerance);
    let t_min = mp.period;
    let t_clk = t_min + ((t_init - t_min) as f64 * config.clock_slack_frac).round() as u64;

    PhysicalPlan {
        partitioning,
        floorplan: fp,
        grid,
        unit_cell,
        routing,
        expanded,
        t_init,
        t_min,
        t_clk,
    }
}

/// Generates the period constraints for a plan's target period.
pub fn plan_constraints(plan: &PhysicalPlan, config: &PlannerConfig) -> PeriodConstraints {
    generate_period_constraints(&plan.expanded.graph, plan.t_clk, config.constraints)
}

/// Runs both retimers (min-area baseline and LAC) on a physical plan.
///
/// # Errors
///
/// Propagates [`RetimeError::PeriodInfeasible`] if `plan.t_clk` cannot be
/// met (only possible when the plan was built for a different target, as
/// in iteration 2 of planning).
pub fn plan_retimings(
    plan: &PhysicalPlan,
    config: &PlannerConfig,
) -> Result<PlanReport, RetimeError> {
    plan_retimings_at(plan, config, plan.t_clk)
}

/// Like [`plan_retimings`] but for an explicit target period (iteration 2
/// keeps the first iteration's `T_clk`).
pub fn plan_retimings_at(
    plan: &PhysicalPlan,
    config: &PlannerConfig,
    t_clk: u64,
) -> Result<PlanReport, RetimeError> {
    let graph = &plan.expanded.graph;
    let caps = &plan.expanded.caps_ff;

    let t0 = Instant::now();
    let pc = generate_period_constraints(graph, t_clk, config.constraints);
    let constraint_time = t0.elapsed();

    // Min-area baseline: the graph's base areas (uniform, with the ε
    // wire-flip-flop premium from expansion as a pure tie-break), one
    // solve. Shares the generated constraints, exactly as an
    // implementation of [13] would.
    let t1 = Instant::now();
    let base_areas: Vec<f64> = graph.vertex_ids().map(|v| graph.area(v)).collect();
    let base = lacr_retime::weighted_min_area_retiming(graph, &pc, &base_areas)?;
    let min_area = TimedRun {
        result: score_outcome(graph, base, caps),
        elapsed: t1.elapsed() + constraint_time,
    };

    let t2 = Instant::now();
    let lac = lac_retiming(graph, &pc, caps, &config.lac)?;
    let lac = TimedRun {
        result: lac,
        elapsed: t2.elapsed() + constraint_time,
    };

    Ok(PlanReport {
        min_area,
        lac,
        num_period_constraints: pc.constraints.len(),
        pairs_before_pruning: pc.pairs_before_pruning,
        constraint_time,
    })
}

/// Per-block area growth derived from a retiming's tile violations: every
/// overflowing soft tile asks its block for the overflow area (with a
/// safety factor); channel-tile overflow is redistributed uniformly.
pub fn growth_from_violations(
    plan: &PhysicalPlan,
    result: &LacResult,
    technology: &Technology,
    factor: f64,
) -> Vec<f64> {
    let nb = plan.partitioning.blocks.len();
    let mut growth = vec![0.0f64; nb];
    let mut channel_overflow = 0.0f64;
    for t in plan.grid.tile_ids() {
        let v = result.occupancy.violations[t.index()];
        if v <= 0 {
            continue;
        }
        let area = v as f64 * technology.ff_area * factor;
        match plan.grid.kind(t) {
            TileKind::Soft(b) => growth[b] += area,
            TileKind::Hard(b) => growth[b] += area,
            TileKind::Channel => channel_overflow += area,
        }
    }
    if channel_overflow > 0.0 && nb > 0 {
        // Growing blocks indirectly grows the chip, recreating channel
        // room next to the congested regions after re-packing.
        for g in &mut growth {
            *g += channel_overflow / nb as f64;
        }
    }
    if growth.iter().any(|&g| g > 0.0) {
        // Re-planning shifts flip-flop demand between blocks (routing and
        // the floorplan both change), so an expansion that exactly covers
        // the observed overflow tends to chase it around; give every block
        // a small uniform bump on top of the targeted growth.
        for (g, placed) in growth.iter_mut().zip(&plan.floorplan.blocks) {
            *g += 0.06 * placed.w * placed.h;
        }
    }
    growth
}

/// Outcome of the full multi-iteration planning flow.
#[derive(Debug, Clone)]
pub struct IteratedPlan {
    /// The physical plan and report of the first iteration.
    pub first: (PhysicalPlan, PlanReport),
    /// `N_FOA` of the second planning iteration (after floorplan
    /// expansion), when one was needed. `Err` mirrors the paper's s1269
    /// case: the frozen target period became infeasible after the
    /// floorplan changed drastically.
    pub second_n_foa: Option<Result<i64, RetimeError>>,
}

/// Runs interconnect planning; when LAC-retiming still has violations,
/// expands the congested blocks and runs a second planning iteration at
/// the *same* target period (the paper's protocol).
///
/// # Errors
///
/// Propagates retiming errors from the first iteration only; a failed
/// second iteration is reported inside [`IteratedPlan::second_n_foa`].
pub fn plan_with_iterations(
    circuit: &Circuit,
    config: &PlannerConfig,
) -> Result<IteratedPlan, RetimeError> {
    let plan1 = build_physical_plan(circuit, config, &[]);
    let report1 = plan_retimings(&plan1, config)?;
    let second_n_foa = if report1.lac.result.n_foa > 0 {
        let growth = growth_from_violations(&plan1, &report1.lac.result, &config.technology, 1.5);
        let plan2 = build_physical_plan(circuit, config, &growth);
        Some(plan_retimings_at(&plan2, config, plan1.t_clk).map(|r| r.lac.result.n_foa))
    } else {
        None
    };
    Ok(IteratedPlan {
        first: (plan1, report1),
        second_n_foa,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacr_netlist::bench89;

    fn quick_config() -> PlannerConfig {
        PlannerConfig {
            floorplan: FloorplanConfig {
                moves: 1_000,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn physical_plan_is_consistent() {
        let c = bench89::generate("s344").unwrap();
        let cfg = quick_config();
        let plan = build_physical_plan(&c, &cfg, &[]);
        assert!(plan.t_min <= plan.t_clk && plan.t_clk <= plan.t_init);
        assert_eq!(plan.unit_cell.len(), c.num_units());
        assert_eq!(plan.routing.nets.len(), c.num_nets());
        // flop conservation through expansion
        assert_eq!(plan.expanded.graph.total_flops() as u64, c.num_flops());
        // caps cover all tiles + pad
        assert_eq!(plan.expanded.caps_ff.len(), plan.grid.num_tiles() + 1);
    }

    #[test]
    fn retimings_meet_target_period() {
        let c = bench89::generate("s344").unwrap();
        let cfg = quick_config();
        let plan = build_physical_plan(&c, &cfg, &[]);
        let report = plan_retimings(&plan, &cfg).expect("t_clk >= t_min is feasible");
        assert!(report.min_area.result.outcome.period <= plan.t_clk);
        assert!(report.lac.result.outcome.period <= plan.t_clk);
        // LAC never does worse on violations than the baseline.
        assert!(report.lac.result.n_foa <= report.min_area.result.n_foa);
    }

    #[test]
    fn growth_targets_violating_blocks() {
        let c = bench89::generate("s344").unwrap();
        let cfg = quick_config();
        let plan = build_physical_plan(&c, &cfg, &[]);
        let report = plan_retimings(&plan, &cfg).unwrap();
        let growth = growth_from_violations(&plan, &report.lac.result, &cfg.technology, 1.5);
        assert_eq!(growth.len(), plan.partitioning.blocks.len());
        let has_violations = report.lac.result.n_foa > 0;
        let has_growth = growth.iter().any(|&g| g > 0.0);
        assert_eq!(has_violations, has_growth);
    }

    #[test]
    fn deterministic_planning() {
        let c = bench89::generate("s344").unwrap();
        let cfg = quick_config();
        let p1 = build_physical_plan(&c, &cfg, &[]);
        let p2 = build_physical_plan(&c, &cfg, &[]);
        assert_eq!(p1.t_init, p2.t_init);
        assert_eq!(p1.t_min, p2.t_min);
        assert_eq!(p1.unit_cell, p2.unit_cell);
    }
}

#[cfg(test)]
mod hard_block_tests {
    use super::*;
    use lacr_floorplan::anneal::FloorplanConfig;
    use lacr_floorplan::tiles::TileKind;
    use lacr_netlist::bench89;

    #[test]
    fn hard_blocks_appear_with_site_capacity() {
        let c = bench89::generate("s344").unwrap();
        let tech = Technology::default();
        let cfg = PlannerConfig {
            num_hard_blocks: 2,
            hard_site_area: 2.0 * tech.ff_area,
            floorplan: FloorplanConfig {
                moves: 800,
                ..Default::default()
            },
            ..Default::default()
        };
        let plan = build_physical_plan(&c, &cfg, &[]);
        let hard_blocks = plan.floorplan.blocks.iter().filter(|b| b.hard).count();
        assert_eq!(hard_blocks, 2);
        // Hard cells are individual tiles with exactly the site capacity.
        let mut saw_hard_tile = false;
        for t in plan.grid.tile_ids() {
            if let TileKind::Hard(_) = plan.grid.kind(t) {
                saw_hard_tile = true;
                assert_eq!(plan.grid.capacity(t), 2.0 * tech.ff_area);
            }
        }
        assert!(saw_hard_tile, "expected per-cell hard tiles");
        // Planning still succeeds end to end.
        let report = plan_retimings(&plan, &cfg).expect("feasible");
        assert!(report.lac.result.n_foa <= report.min_area.result.n_foa);
    }

    #[test]
    fn zero_site_hard_blocks_have_no_ff_capacity() {
        let c = bench89::generate("s382").unwrap();
        let hard_cfg = PlannerConfig {
            num_hard_blocks: 3,
            hard_site_area: 0.0,
            floorplan: FloorplanConfig {
                moves: 800,
                ..Default::default()
            },
            ..Default::default()
        };
        let plan = build_physical_plan(&c, &hard_cfg, &[]);
        let mut hard_tiles = 0usize;
        for t in plan.grid.tile_ids() {
            if let TileKind::Hard(_) = plan.grid.kind(t) {
                hard_tiles += 1;
                // No sites: zero insertion capacity even before repeaters.
                assert_eq!(plan.grid.capacity(t), 0.0);
                assert_eq!(plan.expanded.caps_ff[t.index()], 0.0);
            }
        }
        assert!(hard_tiles > 0, "expected hard-block tiles in the grid");
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use lacr_floorplan::anneal::FloorplanConfig;
    use lacr_netlist::bench89;

    #[test]
    fn slicing_engine_plans_end_to_end() {
        let c = bench89::generate("s344").unwrap();
        let cfg = PlannerConfig {
            floorplan_engine: FloorplanEngine::Slicing,
            floorplan: FloorplanConfig {
                moves: 1_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let plan = build_physical_plan(&c, &cfg, &[]);
        assert!(plan.floorplan.validate(1e-6).is_empty());
        let report = plan_retimings(&plan, &cfg).expect("feasible");
        assert!(report.lac.result.outcome.period <= plan.t_clk);
    }

    #[test]
    fn engines_produce_comparable_chips() {
        let c = bench89::generate("s526").unwrap();
        let quick = FloorplanConfig {
            moves: 3_000,
            ..Default::default()
        };
        let sp = build_physical_plan(
            &c,
            &PlannerConfig {
                floorplan: quick.clone(),
                ..Default::default()
            },
            &[],
        );
        let sl = build_physical_plan(
            &c,
            &PlannerConfig {
                floorplan: quick,
                floorplan_engine: FloorplanEngine::Slicing,
                ..Default::default()
            },
            &[],
        );
        let a_sp = sp.floorplan.chip_w * sp.floorplan.chip_h;
        let a_sl = sl.floorplan.chip_w * sl.floorplan.chip_h;
        // Slicing is a subset of sequence-pair packings; allow generous
        // slop in both directions because SA is a heuristic.
        assert!(a_sl < 2.0 * a_sp && a_sp < 2.0 * a_sl, "{a_sp} vs {a_sl}");
    }
}

#[cfg(test)]
mod timing_driven_tests {
    use super::*;
    use lacr_floorplan::anneal::FloorplanConfig;
    use lacr_netlist::bench89;

    #[test]
    fn timing_driven_route_stays_consistent() {
        let c = bench89::generate("s382").unwrap();
        let base = PlannerConfig {
            floorplan: FloorplanConfig {
                moves: 800,
                ..Default::default()
            },
            ..Default::default()
        };
        let td = PlannerConfig {
            timing_driven_route: true,
            ..base.clone()
        };
        let p1 = build_physical_plan(&c, &base, &[]);
        let p2 = build_physical_plan(&c, &td, &[]);
        // Same circuit, same invariants.
        assert_eq!(p2.routing.nets.len(), c.num_nets());
        assert_eq!(
            p2.expanded.graph.total_flops(),
            p1.expanded.graph.total_flops()
        );
        for (ni, net) in c.nets().iter().enumerate() {
            for (si, s) in net.sinks.iter().enumerate() {
                let path = &p2.routing.nets[ni].sink_paths[si];
                assert_eq!(path[0], p2.unit_cell[net.driver.index()]);
                assert_eq!(*path.last().unwrap(), p2.unit_cell[s.unit.index()]);
            }
        }
        // And it still plans.
        let report = plan_retimings(&p2, &td).expect("feasible");
        assert!(report.lac.result.outcome.period <= p2.t_clk);
    }
}
