//! The interconnect-planning pipeline of Figure 1.
//!
//! `partition → floorplan → tile grid → global routing → repeater
//! planning → interconnect retiming graph → (min-area | LAC) retiming`,
//! with the floorplan-expansion feedback loop for planning iteration 2
//! (§5: "we expand those congested soft blocks and channel, and then
//! perform another iteration of interconnect planning").

use crate::budget::Budget;
use crate::error::{Degradation, PlanError, PlanErrorKind, Stage};
use crate::expand::{try_expand, ExpandOptions, ExpandedDesign};
use crate::lac::{lac_retiming, score_outcome, LacConfig, LacResult};
use lacr_floorplan::anneal::FloorplanConfig;
use lacr_floorplan::tiles::{CapacityLedger, TileGrid, TileGridConfig, TileKind};
use lacr_floorplan::{try_floorplan, try_floorplan_slicing, BlockSpec, Floorplan};
use lacr_netlist::{Circuit, UnitKind};
use lacr_partition::{partition, PartitionConfig, Partitioning};
use lacr_retime::{
    feasible_min_area_fallback, generate_period_constraints, try_min_period_retiming,
    PeriodConstraints, RetimeError, WdSubstrate,
};
use lacr_route::{try_route, NetPins, RouteConfig, Routing};
use lacr_timing::Technology;
use std::time::{Duration, Instant};

/// Which floorplan engine the planner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FloorplanEngine {
    /// Sequence pairs + simulated annealing (the paper's §5 setup).
    #[default]
    SequencePair,
    /// Normalized Polish expressions (Wong–Liu slicing trees) — a
    /// packing-quality baseline.
    Slicing,
}

/// Configuration of the whole planner.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Process and library parameters.
    pub technology: Technology,
    /// Number of soft blocks; `None` chooses from the circuit size.
    pub num_blocks: Option<usize>,
    /// Whitespace budget added to each block's required area. The paper's
    /// first-iteration floorplan estimates block area "based on the
    /// original netlist without any physical information", so this slack
    /// is all the room relocated flip-flops initially have.
    pub block_slack: f64,
    /// Floorplanner settings (seed is overridden by [`Self::seed`]).
    pub floorplan: FloorplanConfig,
    /// Which floorplan engine to use.
    pub floorplan_engine: FloorplanEngine,
    /// Global-routing settings.
    pub route: RouteConfig,
    /// Two-pass timing-driven routing: after a first route and timing
    /// analysis, nets are re-routed most-critical-first so timing-critical
    /// connections claim the least congested (and therefore shortest)
    /// paths — the "time-driven and congestion-aware global router" of
    /// §4.1. Off by default (the experiments use one congestion-driven
    /// pass, matching the paper's primary objective ordering).
    pub timing_driven_route: bool,
    /// Usable fraction of channel/dead-space tiles.
    pub channel_utilization: f64,
    /// Extra pitch opened between blocks after packing (0.1 = 10 % more
    /// spacing), allocating explicit channel regions as in Figure 2. The
    /// experiments use 0 (compact packing; dead space arises only from
    /// packing mismatch, and repeaters/flip-flops mostly use soft-block
    /// slack), but planners targeting channel-based architectures can
    /// raise it.
    pub channel_spread: f64,
    /// Pre-allocated site area per hard-block cell — the paper's
    /// "repeater and flip-flop sites inserted intentionally" in hard
    /// blocks (Alpert et al., reference \[1\] of the paper).
    pub hard_site_area: f64,
    /// Treat the `num_hard_blocks` largest partitions as hard blocks with
    /// fixed (square) dimensions; their only insertion capacity comes from
    /// [`Self::hard_site_area`]. 0 (the default, matching the paper's
    /// experiments) keeps every block soft.
    pub num_hard_blocks: usize,
    /// Pad-ring flip-flop capacity, per primary I/O.
    pub pad_ff_per_io: f64,
    /// `T_clk = T_min + clock_slack_frac · (T_init − T_min)` (§5 uses 0.2).
    pub clock_slack_frac: f64,
    /// Relative tolerance of the `T_min` binary search (0 = exact). On
    /// very large interconnect graphs each feasibility probe regenerates
    /// the W/D constraints, so a 1–2 % tolerance cuts planning time
    /// noticeably while moving `T_clk` only marginally.
    pub t_min_tolerance_frac: f64,
    /// LAC loop parameters.
    pub lac: LacConfig,
    /// Interconnect-unit expansion options.
    pub expand: ExpandOptions,
    /// Master seed for partitioning and floorplanning.
    pub seed: u64,
    /// Wall-clock / round budget for the whole run. Unlimited by default.
    /// The deadline is merged (earliest wins) into the floorplan, route
    /// and LAC stage configs; an expired budget degrades the plan to
    /// best-so-far results instead of aborting.
    pub budget: Budget,
}

impl PlannerConfig {
    /// Checks the numeric parameters for usability. Returns problems;
    /// empty means valid. [`try_build_physical_plan`] rejects invalid
    /// configs with [`PlanErrorKind::InvalidConfig`].
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut frac = |name: &str, v: f64| {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                problems.push(format!("{name} {v} outside [0, 1]"));
            }
        };
        frac("channel_utilization", self.channel_utilization);
        frac("clock_slack_frac", self.clock_slack_frac);
        frac("lac.alpha", self.lac.alpha);
        let mut nonneg = |name: &str, v: f64| {
            if !(v.is_finite() && v >= 0.0) {
                problems.push(format!("{name} {v} is not a finite non-negative number"));
            }
        };
        nonneg("block_slack", self.block_slack);
        nonneg("channel_spread", self.channel_spread);
        nonneg("hard_site_area", self.hard_site_area);
        nonneg("pad_ff_per_io", self.pad_ff_per_io);
        nonneg("t_min_tolerance_frac", self.t_min_tolerance_frac);
        nonneg(
            "floorplan.wirelength_weight",
            self.floorplan.wirelength_weight,
        );
        nonneg(
            "floorplan.initial_temp_frac",
            self.floorplan.initial_temp_frac,
        );
        nonneg("route.overflow_penalty", self.route.overflow_penalty);
        nonneg("route.history_penalty", self.route.history_penalty);
        if !(self.floorplan.cooling.is_finite()
            && self.floorplan.cooling > 0.0
            && self.floorplan.cooling <= 1.0)
        {
            problems.push(format!(
                "floorplan.cooling {} outside (0, 1]",
                self.floorplan.cooling
            ));
        }
        if self.num_blocks == Some(0) {
            problems.push("num_blocks must be at least 1".into());
        }
        if self.lac.max_rounds == 0 {
            problems.push("lac.max_rounds must be at least 1".into());
        }
        if self.lac.n_max == 0 {
            problems.push("lac.n_max must be at least 1".into());
        }
        if self.expand.units_per_span == 0 {
            problems.push("expand.units_per_span must be at least 1".into());
        }
        problems
    }
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            technology: Technology::default(),
            num_blocks: None,
            block_slack: 0.15,
            floorplan: FloorplanConfig {
                moves: 6_000,
                ..Default::default()
            },
            floorplan_engine: FloorplanEngine::default(),
            route: RouteConfig::default(),
            timing_driven_route: false,
            channel_utilization: 0.8,
            channel_spread: 0.0,
            hard_site_area: 0.0,
            num_hard_blocks: 0,
            pad_ff_per_io: 1.0,
            clock_slack_frac: 0.2,
            t_min_tolerance_frac: 0.0,
            lac: LacConfig::default(),
            // Tile-crossing segmentation: every tile a route passes
            // through is a flip-flop site, which LAC retiming needs to
            // relocate flip-flops along wires into tiles with slack.
            expand: ExpandOptions {
                tile_crossing_units: true,
                ..ExpandOptions::default()
            },
            seed: 0x1acc,
            budget: Budget::default(),
        }
    }
}

/// Everything physical planning produces before retiming.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// The partitioning into blocks.
    pub partitioning: Partitioning,
    /// The floorplan of those blocks.
    pub floorplan: Floorplan,
    /// The tile grid with capacities.
    pub grid: TileGrid,
    /// Routing cell of each unit.
    pub unit_cell: Vec<usize>,
    /// The global routing of all nets.
    pub routing: Routing,
    /// The expanded retiming graph and tile capacities.
    pub expanded: ExpandedDesign,
    /// Smallest period with the *initial* flip-flop placement (ps) — the
    /// paper's `T_init`.
    pub t_init: u64,
    /// Minimum period achievable by retiming (ps) — the paper's `T_min`.
    pub t_min: u64,
    /// The target period for this planning run (ps).
    pub t_clk: u64,
    /// The W/D substrate the `T_min` search built, covering every period
    /// in `[T_min, T_init]`. [`plan_constraints`] and the retiming entry
    /// points re-emit from it instead of rebuilding the W/D system;
    /// `None` when the search was skipped (expired budget) or ran on a
    /// host-free graph.
    pub wd_substrate: Option<WdSubstrate>,
    /// Quality losses absorbed while building the plan (expired budget,
    /// residual routing overflow, skipped `T_min` search). Empty for a
    /// pristine plan.
    pub degradations: Vec<Degradation>,
}

impl PhysicalPlan {
    /// Whether any stage degraded while building this plan.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty()
    }
}

/// One timed retiming run.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// Metrics of the run.
    pub result: LacResult,
    /// Wall-clock time of the retiming itself.
    pub elapsed: Duration,
}

/// The two retiming flavours compared by the paper, plus shared stats.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Min-area retiming baseline, scored against the tile capacities.
    pub min_area: TimedRun,
    /// LAC-retiming.
    pub lac: TimedRun,
    /// Period constraints generated (after pruning).
    pub num_period_constraints: usize,
    /// Violating pairs before pruning.
    pub pairs_before_pruning: usize,
    /// Time to generate the period constraints (shared by both runs).
    pub constraint_time: Duration,
    /// Quality losses absorbed during retiming (fallback solver taken,
    /// LAC budget expiry, residual capacity violations). Empty for a
    /// pristine report.
    pub degradations: Vec<Degradation>,
}

impl PlanReport {
    /// Whether any retiming stage degraded.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// The paper's headline metric: percentage decrease of `N_FOA` from
    /// min-area to LAC. `None` when the baseline has no violations.
    pub fn n_foa_decrease_pct(&self) -> Option<f64> {
        let base = self.min_area.result.n_foa;
        if base == 0 {
            None
        } else {
            Some(100.0 * (base - self.lac.result.n_foa) as f64 / base as f64)
        }
    }
}

/// Builds the physical plan: partition, floorplan (with optional per-block
/// area `growth` from a previous iteration), tile grid, routing, repeater
/// insertion and graph expansion, plus the `T_init`/`T_min`/`T_clk`
/// analysis.
///
/// # Panics
///
/// Panics on any input [`try_build_physical_plan`] rejects — malformed
/// circuit/technology/config, or a `growth` vector that does not have one
/// entry per block.
pub fn build_physical_plan(
    circuit: &Circuit,
    config: &PlannerConfig,
    growth: &[f64],
) -> PhysicalPlan {
    try_build_physical_plan(circuit, config, growth).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`build_physical_plan`]: every input defect comes
/// back as a stage-tagged [`PlanError`], and budget expiry degrades the
/// plan ([`PhysicalPlan::degradations`]) instead of running unbounded.
pub fn try_build_physical_plan(
    circuit: &Circuit,
    config: &PlannerConfig,
    growth: &[f64],
) -> Result<PhysicalPlan, PlanError> {
    let tech = &config.technology;
    let problems = tech.validate();
    if !problems.is_empty() {
        return Err(PlanError::new(
            Stage::Validate,
            PlanErrorKind::InvalidTechnology(problems),
        ));
    }
    let problems = circuit.validate();
    if !problems.is_empty() {
        return Err(PlanError::new(
            Stage::Validate,
            PlanErrorKind::InvalidCircuit(problems),
        ));
    }
    let problems = config.validate();
    if !problems.is_empty() {
        return Err(PlanError::new(
            Stage::Validate,
            PlanErrorKind::InvalidConfig(problems),
        ));
    }
    if let Some(g) = growth.iter().find(|g| !(g.is_finite() && **g >= 0.0)) {
        return Err(PlanError::new(
            Stage::Validate,
            PlanErrorKind::InvalidConfig(vec![format!(
                "growth entry {g} is not a finite non-negative number"
            )]),
        ));
    }

    let budget = &config.budget;
    let mut degradations: Vec<Degradation> = Vec::new();
    // The first stage observed past the deadline; later stages still run
    // (each bounded by the same deadline) but the plan is tagged once.
    let mut deadline_hit: Option<Stage> = None;
    let check_deadline = |stage: Stage, hit: &mut Option<Stage>| {
        if hit.is_none() && budget.expired() {
            *hit = Some(stage);
        }
    };

    let logic_units = circuit.units_of_kind(UnitKind::Logic).count();
    let num_blocks = config
        .num_blocks
        .unwrap_or_else(|| (logic_units / 40).clamp(4, 20));

    let span_partition = lacr_obs::span!(
        "plan.partition",
        units = circuit.num_units(),
        blocks = num_blocks
    );
    let partitioning = partition(
        circuit,
        &PartitionConfig {
            num_blocks,
            seed: config.seed,
            ..Default::default()
        },
    );
    let nb = partitioning.blocks.len();
    if !growth.is_empty() && growth.len() != nb {
        return Err(PlanError::new(
            Stage::Partition,
            PlanErrorKind::GrowthMismatch {
                expected: nb,
                got: growth.len(),
            },
        ));
    }
    check_deadline(Stage::Partition, &mut deadline_hit);
    drop(span_partition);
    let span_floorplan = lacr_obs::span!("plan.floorplan", blocks = nb);

    // Block area requirements: scaled functional units plus the *initial*
    // flip-flops (charged to the block of their fanin unit) plus slack.
    let mut unit_area = vec![0.0f64; nb];
    for (b, blk) in partitioning.blocks.iter().enumerate() {
        unit_area[b] = blk
            .units
            .iter()
            .map(|&u| tech.unit_area(circuit.unit(u).area))
            .sum();
    }
    let mut initial_ff_area = vec![0.0f64; nb];
    for e in circuit.edges() {
        let b = partitioning.block_of[e.from.index()];
        initial_ff_area[b] += f64::from(e.flops) * tech.ff_area;
    }
    // The largest `num_hard_blocks` partitions become hard macros.
    let mut by_area: Vec<usize> = (0..nb).collect();
    by_area.sort_by(|&a, &b| {
        (unit_area[b] + initial_ff_area[b]).total_cmp(&(unit_area[a] + initial_ff_area[a]))
    });
    let hard: std::collections::HashSet<usize> = by_area
        .iter()
        .take(config.num_hard_blocks)
        .copied()
        .collect();
    let block_area: Vec<f64> = (0..nb)
        .map(|b| {
            let base = (unit_area[b] + initial_ff_area[b]) * (1.0 + config.block_slack)
                + growth.get(b).copied().unwrap_or(0.0);
            base.max(tech.tile_size * tech.tile_size * 0.25)
        })
        .collect();
    // Technology::validate checks each scale individually, but the
    // *products* (unit area × scale, flops × ff_area) can still overflow
    // to infinity — or underflow to zero for subnormal scales — on
    // extreme-yet-finite inputs. Either would panic `BlockSpec::soft`
    // and poison every stage after it.
    if let Some(b) = (0..nb).find(|&b| !(block_area[b] > 0.0 && block_area[b].is_finite())) {
        return Err(PlanError::new(
            Stage::Validate,
            PlanErrorKind::InvalidConfig(vec![format!(
                "block {b} area is not positive and finite ({:.3e} µm² logic + {:.3e} µm² \
                 flip-flops): technology scales and circuit areas combine out of range",
                unit_area[b], initial_ff_area[b]
            )]),
        ));
    }
    let specs: Vec<BlockSpec> = (0..nb)
        .map(|b| {
            let area = block_area[b];
            if hard.contains(&b) {
                let side = area.sqrt();
                BlockSpec::hard(side, side)
            } else {
                BlockSpec::soft(area)
            }
        })
        .collect();

    // Block-level nets for the floorplanner's wirelength term.
    let block_nets: Vec<Vec<usize>> = circuit
        .nets()
        .iter()
        .map(|net| {
            let mut blocks: Vec<usize> = std::iter::once(net.driver)
                .chain(net.sinks.iter().map(|s| s.unit))
                .map(|u| partitioning.block_of[u.index()])
                .collect();
            blocks.sort_unstable();
            blocks.dedup();
            blocks
        })
        .filter(|b| b.len() >= 2)
        .collect();

    let fp_config = FloorplanConfig {
        seed: config.seed ^ 0xf00d,
        deadline: budget.min_deadline(config.floorplan.deadline),
        ..config.floorplan.clone()
    };
    let fp = match config.floorplan_engine {
        FloorplanEngine::SequencePair => try_floorplan(&specs, &block_nets, &fp_config),
        FloorplanEngine::Slicing => try_floorplan_slicing(&specs, &block_nets, &fp_config),
    }
    .map_err(|e| PlanError::new(Stage::Floorplan, PlanErrorKind::Floorplan(e)))?
    .spread(config.channel_spread);
    debug_assert!(fp.validate(1e-6).is_empty(), "{:?}", fp.validate(1e-6));
    check_deadline(Stage::Floorplan, &mut deadline_hit);
    drop(span_floorplan);
    let span_route = lacr_obs::span!("plan.route", nets = circuit.num_nets());

    // A tiny (yet positive and finite, so `Technology::validate`-clean)
    // tile_size against a large chip yields a cell count that overflows
    // `usize` and would abort on allocation. 2^24 cells is far beyond any
    // realistic planning instance; refuse rather than thrash.
    let cells_x = (fp.chip_w / tech.tile_size).ceil().max(1.0);
    let cells_y = (fp.chip_h / tech.tile_size).ceil().max(1.0);
    const MAX_GRID_CELLS: f64 = (1u64 << 24) as f64;
    if !(cells_x * cells_y).is_finite() || cells_x * cells_y > MAX_GRID_CELLS {
        return Err(PlanError::new(
            Stage::Floorplan,
            PlanErrorKind::InvalidConfig(vec![format!(
                "tile grid of {cells_x:.0} x {cells_y:.0} cells (chip {:.3e} x {:.3e} µm, \
                 tile_size {:.3e} µm) exceeds the 2^24-cell sanity bound",
                fp.chip_w, fp.chip_h, tech.tile_size
            )]),
        ));
    }

    let grid = TileGrid::build(
        &fp,
        &unit_area,
        &TileGridConfig {
            tile_size: tech.tile_size,
            channel_utilization: config.channel_utilization,
            hard_site_area: config.hard_site_area,
        },
    );

    // Deterministic unit placement: a sub-grid inside each block.
    let mut unit_cell = vec![0usize; circuit.num_units()];
    for (b, blk) in partitioning.blocks.iter().enumerate() {
        let placed = &fp.blocks[b];
        let k = blk.units.len().max(1);
        let cols = (k as f64).sqrt().ceil() as usize;
        let rows = k.div_ceil(cols);
        for (i, &u) in blk.units.iter().enumerate() {
            let col = i % cols;
            let row = i / cols;
            let x = placed.x + (col as f64 + 0.5) * placed.w / cols as f64;
            let y = placed.y + (row as f64 + 0.5) * placed.h / rows as f64;
            unit_cell[u.index()] = grid.cell_of_point(x, y);
        }
    }

    let net_pins: Vec<NetPins> = circuit
        .nets()
        .iter()
        .map(|net| NetPins {
            driver: unit_cell[net.driver.index()],
            sinks: net
                .sinks
                .iter()
                .map(|s| unit_cell[s.unit.index()])
                .collect(),
        })
        .collect();
    let route_config = RouteConfig {
        deadline: budget.min_deadline(config.route.deadline),
        ..config.route.clone()
    };
    let mut routing = try_route(grid.nx(), grid.ny(), &net_pins, &route_config)
        .map_err(|e| PlanError::new(Stage::Route, PlanErrorKind::Route(e)))?;
    check_deadline(Stage::Route, &mut deadline_hit);
    drop(span_route);

    let io_count = circuit.units_of_kind(UnitKind::Input).count()
        + circuit.units_of_kind(UnitKind::Output).count();
    let build_expansion = |routing: &Routing| {
        let _span = lacr_obs::span!("plan.expand", nets = circuit.num_nets());
        let mut ledger = CapacityLedger::new(&grid);
        try_expand(
            circuit,
            tech,
            &grid,
            &mut ledger,
            &unit_cell,
            routing,
            config.pad_ff_per_io * io_count as f64,
            &config.expand,
        )
    };
    let mut expanded = build_expansion(&routing)?;

    if config.timing_driven_route && !budget.expired() {
        // Second pass: analyse the first-pass graph at its own unretimed
        // period, score each net by the worst criticality across its
        // connections' chains, and re-route most-critical-first.
        let weights = expanded.graph.weights();
        if let Some(period) = expanded.graph.clock_period(&weights) {
            if let Some(crit) = lacr_retime::edge_criticality(&expanded.graph, &weights, period) {
                let mut conn_idx = 0usize;
                let mut net_priority = vec![0.0f64; circuit.num_nets()];
                for (ni, net) in circuit.nets().iter().enumerate() {
                    for _ in &net.sinks {
                        let chain = &expanded.connection_chains[conn_idx];
                        let worst = chain.iter().map(|e| crit[e.index()]).fold(0.0f64, f64::max);
                        net_priority[ni] = net_priority[ni].max(worst);
                        conn_idx += 1;
                    }
                }
                let mut order: Vec<usize> = (0..circuit.num_nets()).collect();
                order.sort_by(|&a, &b| net_priority[b].total_cmp(&net_priority[a]));
                let permuted: Vec<NetPins> = order.iter().map(|&i| net_pins[i].clone()).collect();
                let rerouted = try_route(grid.nx(), grid.ny(), &permuted, &route_config)
                    .map_err(|e| PlanError::new(Stage::Route, PlanErrorKind::Route(e)))?;
                let mut nets = vec![None; circuit.num_nets()];
                for (k, &i) in order.iter().enumerate() {
                    nets[i] = Some(rerouted.nets[k].clone());
                }
                routing = Routing {
                    nets: nets.into_iter().map(|n| n.expect("permutation")).collect(),
                    ..rerouted
                };
                expanded = build_expansion(&routing)?;
            }
        }
    } else if config.timing_driven_route {
        degradations.push(Degradation::new(
            Stage::Route,
            "wall-clock budget expired: timing-driven re-route skipped",
        ));
    }

    if routing.overflow > 0 {
        degradations.push(Degradation::new(
            Stage::Route,
            format!(
                "routing overflow of {} track-unit(s) remains after rip-up \
                 (max edge usage {} of capacity {})",
                routing.overflow, routing.max_usage, config.route.edge_capacity
            ),
        ));
    }

    let span_timing = lacr_obs::span!("plan.timing");
    let t_init = expanded
        .graph
        .try_clock_period(&expanded.graph.weights())
        .map_err(|e| match e {
            RetimeError::CombinationalCycle => {
                PlanError::new(Stage::Timing, PlanErrorKind::CombinationalCycle)
            }
            other => PlanError::new(Stage::Timing, PlanErrorKind::Retime(other)),
        })?;
    let (t_min, t_clk, wd_substrate) = if budget.expired() {
        // No time left for the T_min binary search: plan at the initial
        // period, which any legal retiming (including the identity)
        // satisfies.
        degradations.push(Degradation::new(
            Stage::Timing,
            "wall-clock budget expired: T_min search skipped, T_clk = T_init",
        ));
        (t_init, t_init, None)
    } else {
        let tolerance = (t_init as f64 * config.t_min_tolerance_frac).round() as u64;
        let mp = try_min_period_retiming(&expanded.graph, tolerance)
            .map_err(|e| PlanError::new(Stage::Timing, PlanErrorKind::Retime(e)))?;
        let t_min = mp.result.period;
        let t_clk = t_min + ((t_init - t_min) as f64 * config.clock_slack_frac).round() as u64;
        // T_clk ∈ [T_min, T_init] ⊆ the search bracket, so the substrate
        // serves the plan's own constraint generation without another
        // W/D build.
        (t_min, t_clk, mp.substrate)
    };
    check_deadline(Stage::Timing, &mut deadline_hit);
    drop(span_timing);
    lacr_obs::gauge!("plan.t_init", t_init);
    lacr_obs::gauge!("plan.t_min", t_min);
    lacr_obs::gauge!("plan.t_clk", t_clk);

    if let Some(stage) = deadline_hit {
        degradations.insert(
            0,
            Degradation::new(
                stage,
                "wall-clock budget expired here; stages ran on best-so-far results",
            ),
        );
    }

    Ok(PhysicalPlan {
        partitioning,
        floorplan: fp,
        grid,
        unit_cell,
        routing,
        expanded,
        t_init,
        t_min,
        t_clk,
        wd_substrate,
        degradations,
    })
}

/// The period constraints for one target: re-emitted from the plan's W/D
/// substrate when the target lies in its bracket (a linear scan — no
/// Dijkstras), freshly generated otherwise. Both paths produce
/// bit-identical constraints.
fn constraints_at(plan: &PhysicalPlan, target: u64) -> Result<PeriodConstraints, RetimeError> {
    match &plan.wd_substrate {
        Some(sub) if sub.covers(target) => {
            lacr_obs::counter!("retime.wd_cache_hits", 1);
            Ok(sub.constraints_for(target))
        }
        _ => generate_period_constraints(&plan.expanded.graph, target),
    }
}

/// Generates the period constraints for a plan's target period, reusing
/// the `T_min` search's W/D substrate when possible.
///
/// # Panics
///
/// Panics when path-delay accumulation overflows `u64` (the plan's own
/// timing pass would have failed first for any graph built by
/// [`try_build_physical_plan`]).
pub fn plan_constraints(plan: &PhysicalPlan) -> PeriodConstraints {
    constraints_at(plan, plan.t_clk).expect("path delay accumulation overflowed u64")
}

/// Runs both retimers (min-area baseline and LAC) on a physical plan.
///
/// # Errors
///
/// Propagates [`RetimeError::PeriodInfeasible`] if `plan.t_clk` cannot be
/// met (only possible when the plan was built for a different target, as
/// in iteration 2 of planning).
pub fn plan_retimings(
    plan: &PhysicalPlan,
    config: &PlannerConfig,
) -> Result<PlanReport, RetimeError> {
    plan_retimings_at(plan, config, plan.t_clk)
}

/// Like [`plan_retimings`] but for an explicit target period (iteration 2
/// keeps the first iteration's `T_clk`).
pub fn plan_retimings_at(
    plan: &PhysicalPlan,
    config: &PlannerConfig,
    t_clk: u64,
) -> Result<PlanReport, RetimeError> {
    try_plan_retimings_at(plan, config, t_clk).map_err(RetimeError::from)
}

/// Fallible, fail-soft variant of [`plan_retimings`].
pub fn try_plan_retimings(
    plan: &PhysicalPlan,
    config: &PlannerConfig,
) -> Result<PlanReport, PlanError> {
    try_plan_retimings_at(plan, config, plan.t_clk)
}

/// Runs both retimers with the full degradation ladder:
///
/// 1. the min-area baseline falls back to a Bellman-Ford feasible
///    retiming if the min-cost-flow dual solve fails unexpectedly;
/// 2. a LAC run that errors mid-loop falls back to the min-area result;
/// 3. residual capacity violations and LAC budget expiry are reported as
///    [`PlanReport::degradations`] with per-tile overflow diagnostics.
///
/// Only a genuinely infeasible target period remains a hard error.
pub fn try_plan_retimings_at(
    plan: &PhysicalPlan,
    config: &PlannerConfig,
    t_clk: u64,
) -> Result<PlanReport, PlanError> {
    let graph = &plan.expanded.graph;
    let caps = &plan.expanded.caps_ff;
    let budget = &config.budget;
    let mut degradations: Vec<Degradation> = Vec::new();

    // Ladder rung 0: the budget is already spent and the target is no
    // tighter than the initial period, so the identity retiming is legal
    // by construction. Return it scored instead of starting the W/D
    // constraint generation — on a budget-truncated floorplan the
    // expanded graph can be enormous, and constraint generation alone
    // would burn minutes the caller explicitly refused to grant.
    if budget.expired() && t_clk >= plan.t_init {
        let weights: Vec<i64> = graph.edges().iter().map(|e| e.weight).collect();
        let identity = lacr_retime::RetimingOutcome {
            total_flops: weights.iter().sum(),
            retiming: vec![0; graph.num_vertices()],
            period: plan.t_init,
            weights,
        };
        let mut result = score_outcome(graph, identity, caps);
        result.n_wr = 0;
        result.timed_out = true;
        degradations.push(Degradation::new(
            Stage::MinArea,
            "wall-clock budget expired before retiming; identity retiming kept",
        ));
        if result.n_foa > 0 {
            degradations.push(Degradation::new(
                Stage::Lac,
                format!(
                    "{} flip-flop(s) still violate local area constraints: {}",
                    result.n_foa,
                    result.occupancy.overflow_summary()
                ),
            ));
        }
        return Ok(PlanReport {
            min_area: TimedRun {
                result: result.clone(),
                elapsed: Duration::ZERO,
            },
            lac: TimedRun {
                result,
                elapsed: Duration::ZERO,
            },
            num_period_constraints: 0,
            pairs_before_pruning: 0,
            constraint_time: Duration::ZERO,
            degradations,
        });
    }

    let t0 = Instant::now();
    let span_constraints = lacr_obs::span!(
        "plan.constraints",
        vertices = graph.num_vertices(),
        t_clk = t_clk
    );
    let pc = constraints_at(plan, t_clk)
        .map_err(|e| PlanError::new(Stage::MinArea, PlanErrorKind::Retime(e)))?;
    drop(span_constraints);
    let constraint_time = t0.elapsed();

    // Min-area baseline: the graph's base areas (uniform, with the ε
    // wire-flip-flop premium from expansion as a pure tie-break), one
    // solve. Shares the generated constraints, exactly as an
    // implementation of [13] would.
    let t1 = Instant::now();
    let span_minarea = lacr_obs::span!("plan.minarea", constraints = pc.constraints.len());
    let base_areas: Vec<f64> = graph.vertex_ids().map(|v| graph.area(v)).collect();
    let base = match lacr_retime::weighted_min_area_retiming(graph, &pc, &base_areas) {
        Ok(base) => base,
        Err(
            e @ (RetimeError::PeriodInfeasible { .. }
            | RetimeError::DelayOverflow
            | RetimeError::CombinationalCycle),
        ) => {
            return Err(PlanError::new(Stage::MinArea, PlanErrorKind::Retime(e)));
        }
        Err(RetimeError::Internal(msg)) => {
            match feasible_min_area_fallback(graph, t_clk) {
                // Ladder rung 1: the dual solve failed, but Bellman-Ford can
                // still prove feasibility and hand back a legal retiming.
                Some(fallback) => {
                    degradations.push(Degradation::new(
                    Stage::MinArea,
                    format!("min-cost-flow solve failed ({msg}); Bellman-Ford feasible retiming used"),
                ));
                    fallback
                }
                None => {
                    return Err(PlanError::new(
                        Stage::MinArea,
                        PlanErrorKind::Retime(RetimeError::PeriodInfeasible { target: t_clk }),
                    ));
                }
            }
        }
    };
    let min_area = TimedRun {
        result: score_outcome(graph, base, caps),
        elapsed: t1.elapsed() + constraint_time,
    };
    drop(span_minarea);
    lacr_obs::gauge!("minarea.n_foa", min_area.result.n_foa);

    let lac_config = LacConfig {
        deadline: budget.min_deadline(config.lac.deadline),
        max_rounds: budget
            .max_rounds
            .map_or(config.lac.max_rounds, |m| config.lac.max_rounds.min(m)),
        ..config.lac
    };
    let t2 = Instant::now();
    let span_lac = lacr_obs::span!("plan.lac", max_rounds = lac_config.max_rounds);
    let lac_result = match lac_retiming(graph, &pc, caps, &lac_config) {
        Ok(result) => result,
        // Ladder rung 2: LAC could not finish a single round; the scored
        // min-area result is still a legal plan for the same period.
        Err(e) => {
            degradations.push(Degradation::new(
                Stage::Lac,
                format!("LAC retiming failed ({e}); min-area result reused"),
            ));
            min_area.result.clone()
        }
    };
    if lac_result.timed_out {
        degradations.push(Degradation::new(
            Stage::Lac,
            format!(
                "wall-clock budget expired after {} re-weight round(s); best round kept",
                lac_result.n_wr
            ),
        ));
    }
    if lac_result.n_foa > 0 {
        // Ladder rung 3: the result is legal but not fully legalized;
        // report exactly which tiles still overflow.
        degradations.push(Degradation::new(
            Stage::Lac,
            format!(
                "{} flip-flop(s) still violate local area constraints: {}",
                lac_result.n_foa,
                lac_result.occupancy.overflow_summary()
            ),
        ));
    }
    drop(span_lac);
    lacr_obs::gauge!("lac.n_foa", lac_result.n_foa);
    lacr_obs::gauge!("lac.n_wr", lac_result.n_wr);
    emit_quality_metrics(plan, caps, &lac_result, t_clk);
    let lac = TimedRun {
        result: lac_result,
        elapsed: t2.elapsed() + constraint_time,
    };

    Ok(PlanReport {
        min_area,
        lac,
        num_period_constraints: pc.constraints.len(),
        pairs_before_pruning: pc.pairs_before_pruning,
        constraint_time,
        degradations,
    })
}

/// Emits the paper's solution-quality metrics for the final LAC result
/// through the sink API, under the `quality.*` namespace: the per-tile
/// FF occupancy vs. capacity distributions (Fig. 2's tile view), the
/// retiming-label magnitude of every relocated flip-flop, the target
/// period's slack under `T_init`, the residual routing overflow and the
/// repeater count. Aggregate-only — gated on a collector so default
/// runs pay nothing for the per-tile loops.
fn emit_quality_metrics(plan: &PhysicalPlan, caps: &[f64], lac: &LacResult, t_clk: u64) {
    if !lacr_obs::recording() {
        return;
    }
    for (tile, &cap) in caps.iter().enumerate() {
        lacr_obs::histogram!("quality.tile_capacity_ff", cap.floor().max(0.0) as u64);
        let occ = lac.occupancy.counts.get(tile).copied().unwrap_or(0);
        lacr_obs::histogram!("quality.tile_occupancy_ff", occ.max(0) as u64);
    }
    let mut relocated = 0u64;
    for &r in &lac.outcome.retiming {
        if r != 0 {
            relocated += 1;
            lacr_obs::histogram!("quality.ff_relocation", r.unsigned_abs());
        }
    }
    lacr_obs::gauge!("quality.relocated_vertices", relocated);
    lacr_obs::gauge!("quality.t_clk_slack_ps", plan.t_init.saturating_sub(t_clk));
    lacr_obs::gauge!("quality.route_overflow", plan.routing.overflow);
    lacr_obs::gauge!("quality.repeaters", plan.expanded.num_repeaters);
}

/// Per-block area growth derived from a retiming's tile violations: every
/// overflowing soft tile asks its block for the overflow area (with a
/// safety factor); channel-tile overflow is redistributed uniformly.
pub fn growth_from_violations(
    plan: &PhysicalPlan,
    result: &LacResult,
    technology: &Technology,
    factor: f64,
) -> Vec<f64> {
    let nb = plan.partitioning.blocks.len();
    let mut growth = vec![0.0f64; nb];
    let mut channel_overflow = 0.0f64;
    for t in plan.grid.tile_ids() {
        let v = result.occupancy.violations[t.index()];
        if v <= 0 {
            continue;
        }
        let area = v as f64 * technology.ff_area * factor;
        match plan.grid.kind(t) {
            TileKind::Soft(b) => growth[b] += area,
            TileKind::Hard(b) => growth[b] += area,
            TileKind::Channel => channel_overflow += area,
        }
    }
    if channel_overflow > 0.0 && nb > 0 {
        // Growing blocks indirectly grows the chip, recreating channel
        // room next to the congested regions after re-packing.
        for g in &mut growth {
            *g += channel_overflow / nb as f64;
        }
    }
    if growth.iter().any(|&g| g > 0.0) {
        // Re-planning shifts flip-flop demand between blocks (routing and
        // the floorplan both change), so an expansion that exactly covers
        // the observed overflow tends to chase it around; give every block
        // a small uniform bump on top of the targeted growth.
        for (g, placed) in growth.iter_mut().zip(&plan.floorplan.blocks) {
            *g += 0.06 * placed.w * placed.h;
        }
    }
    growth
}

/// Outcome of the full multi-iteration planning flow.
#[derive(Debug, Clone)]
pub struct IteratedPlan {
    /// The physical plan and report of the first iteration.
    pub first: (PhysicalPlan, PlanReport),
    /// `N_FOA` of the second planning iteration (after floorplan
    /// expansion), when one was needed. `Err` mirrors the paper's s1269
    /// case: the frozen target period became infeasible after the
    /// floorplan changed drastically.
    pub second_n_foa: Option<Result<i64, RetimeError>>,
}

/// Runs interconnect planning; when LAC-retiming still has violations,
/// expands the congested blocks and runs a second planning iteration at
/// the *same* target period (the paper's protocol).
///
/// # Errors
///
/// Propagates retiming errors from the first iteration only; a failed
/// second iteration is reported inside [`IteratedPlan::second_n_foa`].
pub fn plan_with_iterations(
    circuit: &Circuit,
    config: &PlannerConfig,
) -> Result<IteratedPlan, RetimeError> {
    try_plan_with_iterations(circuit, config).map_err(RetimeError::from)
}

/// Fallible variant of [`plan_with_iterations`] returning the typed
/// [`PlanError`] for first-iteration failures.
pub fn try_plan_with_iterations(
    circuit: &Circuit,
    config: &PlannerConfig,
) -> Result<IteratedPlan, PlanError> {
    let plan1 = try_build_physical_plan(circuit, config, &[])?;
    let report1 = try_plan_retimings(&plan1, config)?;
    let second_n_foa = if report1.lac.result.n_foa > 0 && !config.budget.expired() {
        let growth = growth_from_violations(&plan1, &report1.lac.result, &config.technology, 1.5);
        let plan2 = try_build_physical_plan(circuit, config, &growth)?;
        Some(plan_retimings_at(&plan2, config, plan1.t_clk).map(|r| r.lac.result.n_foa))
    } else {
        None
    };
    Ok(IteratedPlan {
        first: (plan1, report1),
        second_n_foa,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacr_netlist::bench89;

    fn quick_config() -> PlannerConfig {
        PlannerConfig {
            floorplan: FloorplanConfig {
                moves: 1_000,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn physical_plan_is_consistent() {
        let c = bench89::generate("s344").unwrap();
        let cfg = quick_config();
        let plan = build_physical_plan(&c, &cfg, &[]);
        assert!(plan.t_min <= plan.t_clk && plan.t_clk <= plan.t_init);
        assert_eq!(plan.unit_cell.len(), c.num_units());
        assert_eq!(plan.routing.nets.len(), c.num_nets());
        // flop conservation through expansion
        assert_eq!(plan.expanded.graph.total_flops() as u64, c.num_flops());
        // caps cover all tiles + pad
        assert_eq!(plan.expanded.caps_ff.len(), plan.grid.num_tiles() + 1);
    }

    #[test]
    fn retimings_meet_target_period() {
        let c = bench89::generate("s344").unwrap();
        let cfg = quick_config();
        let plan = build_physical_plan(&c, &cfg, &[]);
        let report = plan_retimings(&plan, &cfg).expect("t_clk >= t_min is feasible");
        assert!(report.min_area.result.outcome.period <= plan.t_clk);
        assert!(report.lac.result.outcome.period <= plan.t_clk);
        // LAC never does worse on violations than the baseline.
        assert!(report.lac.result.n_foa <= report.min_area.result.n_foa);
    }

    #[test]
    fn growth_targets_violating_blocks() {
        let c = bench89::generate("s344").unwrap();
        let cfg = quick_config();
        let plan = build_physical_plan(&c, &cfg, &[]);
        let report = plan_retimings(&plan, &cfg).unwrap();
        let growth = growth_from_violations(&plan, &report.lac.result, &cfg.technology, 1.5);
        assert_eq!(growth.len(), plan.partitioning.blocks.len());
        let has_violations = report.lac.result.n_foa > 0;
        let has_growth = growth.iter().any(|&g| g > 0.0);
        assert_eq!(has_violations, has_growth);
    }

    #[test]
    fn deterministic_planning() {
        let c = bench89::generate("s344").unwrap();
        let cfg = quick_config();
        let p1 = build_physical_plan(&c, &cfg, &[]);
        let p2 = build_physical_plan(&c, &cfg, &[]);
        assert_eq!(p1.t_init, p2.t_init);
        assert_eq!(p1.t_min, p2.t_min);
        assert_eq!(p1.unit_cell, p2.unit_cell);
    }
}

#[cfg(test)]
mod hard_block_tests {
    use super::*;
    use lacr_floorplan::anneal::FloorplanConfig;
    use lacr_floorplan::tiles::TileKind;
    use lacr_netlist::bench89;

    #[test]
    fn hard_blocks_appear_with_site_capacity() {
        let c = bench89::generate("s344").unwrap();
        let tech = Technology::default();
        let cfg = PlannerConfig {
            num_hard_blocks: 2,
            hard_site_area: 2.0 * tech.ff_area,
            floorplan: FloorplanConfig {
                moves: 800,
                ..Default::default()
            },
            ..Default::default()
        };
        let plan = build_physical_plan(&c, &cfg, &[]);
        let hard_blocks = plan.floorplan.blocks.iter().filter(|b| b.hard).count();
        assert_eq!(hard_blocks, 2);
        // Hard cells are individual tiles with exactly the site capacity.
        let mut saw_hard_tile = false;
        for t in plan.grid.tile_ids() {
            if let TileKind::Hard(_) = plan.grid.kind(t) {
                saw_hard_tile = true;
                assert_eq!(plan.grid.capacity(t), 2.0 * tech.ff_area);
            }
        }
        assert!(saw_hard_tile, "expected per-cell hard tiles");
        // Planning still succeeds end to end.
        let report = plan_retimings(&plan, &cfg).expect("feasible");
        assert!(report.lac.result.n_foa <= report.min_area.result.n_foa);
    }

    #[test]
    fn zero_site_hard_blocks_have_no_ff_capacity() {
        let c = bench89::generate("s382").unwrap();
        let hard_cfg = PlannerConfig {
            num_hard_blocks: 3,
            hard_site_area: 0.0,
            floorplan: FloorplanConfig {
                moves: 800,
                ..Default::default()
            },
            ..Default::default()
        };
        let plan = build_physical_plan(&c, &hard_cfg, &[]);
        let mut hard_tiles = 0usize;
        for t in plan.grid.tile_ids() {
            if let TileKind::Hard(_) = plan.grid.kind(t) {
                hard_tiles += 1;
                // No sites: zero insertion capacity even before repeaters.
                assert_eq!(plan.grid.capacity(t), 0.0);
                assert_eq!(plan.expanded.caps_ff[t.index()], 0.0);
            }
        }
        assert!(hard_tiles > 0, "expected hard-block tiles in the grid");
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use lacr_floorplan::anneal::FloorplanConfig;
    use lacr_netlist::bench89;

    #[test]
    fn slicing_engine_plans_end_to_end() {
        let c = bench89::generate("s344").unwrap();
        let cfg = PlannerConfig {
            floorplan_engine: FloorplanEngine::Slicing,
            floorplan: FloorplanConfig {
                moves: 1_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let plan = build_physical_plan(&c, &cfg, &[]);
        assert!(plan.floorplan.validate(1e-6).is_empty());
        let report = plan_retimings(&plan, &cfg).expect("feasible");
        assert!(report.lac.result.outcome.period <= plan.t_clk);
    }

    #[test]
    fn engines_produce_comparable_chips() {
        let c = bench89::generate("s526").unwrap();
        let quick = FloorplanConfig {
            moves: 3_000,
            ..Default::default()
        };
        let sp = build_physical_plan(
            &c,
            &PlannerConfig {
                floorplan: quick.clone(),
                ..Default::default()
            },
            &[],
        );
        let sl = build_physical_plan(
            &c,
            &PlannerConfig {
                floorplan: quick,
                floorplan_engine: FloorplanEngine::Slicing,
                ..Default::default()
            },
            &[],
        );
        let a_sp = sp.floorplan.chip_w * sp.floorplan.chip_h;
        let a_sl = sl.floorplan.chip_w * sl.floorplan.chip_h;
        // Slicing is a subset of sequence-pair packings; allow generous
        // slop in both directions because SA is a heuristic.
        assert!(a_sl < 2.0 * a_sp && a_sp < 2.0 * a_sl, "{a_sp} vs {a_sl}");
    }
}

#[cfg(test)]
mod timing_driven_tests {
    use super::*;
    use lacr_floorplan::anneal::FloorplanConfig;
    use lacr_netlist::bench89;

    #[test]
    fn timing_driven_route_stays_consistent() {
        let c = bench89::generate("s382").unwrap();
        let base = PlannerConfig {
            floorplan: FloorplanConfig {
                moves: 800,
                ..Default::default()
            },
            ..Default::default()
        };
        let td = PlannerConfig {
            timing_driven_route: true,
            ..base.clone()
        };
        let p1 = build_physical_plan(&c, &base, &[]);
        let p2 = build_physical_plan(&c, &td, &[]);
        // Same circuit, same invariants.
        assert_eq!(p2.routing.nets.len(), c.num_nets());
        assert_eq!(
            p2.expanded.graph.total_flops(),
            p1.expanded.graph.total_flops()
        );
        for (ni, net) in c.nets().iter().enumerate() {
            for (si, s) in net.sinks.iter().enumerate() {
                let path = &p2.routing.nets[ni].sink_paths[si];
                assert_eq!(path[0], p2.unit_cell[net.driver.index()]);
                assert_eq!(*path.last().unwrap(), p2.unit_cell[s.unit.index()]);
            }
        }
        // And it still plans.
        let report = plan_retimings(&p2, &td).expect("feasible");
        assert!(report.lac.result.outcome.period <= p2.t_clk);
    }
}
