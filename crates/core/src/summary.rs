//! The canonical plan summary shared by one-shot and daemon front ends.
//!
//! `lacr plan file.bench` prints three summary lines; `lacr serve`
//! returns the same numbers as JSON fields plus, for parity checks, the
//! identical text rendering. Both build a [`PlanSummary`] from the same
//! plan/report pair, so the serve soak test can assert the daemon's
//! results byte-identical to the one-shot CLI — any drift between the
//! two paths is a determinism bug, not a formatting one.

use crate::planner::{PhysicalPlan, PlanReport};
use crate::Degradation;

/// The headline numbers of one planning run, in the units the CLI
/// prints (periods in picoseconds, counts as-is).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSummary {
    /// Circuit name (as parsed / generated).
    pub circuit: String,
    /// Period with the initial flip-flop placement (ps).
    pub t_init: u64,
    /// Minimum retimable period (ps).
    pub t_min: u64,
    /// Target period of the run (ps).
    pub t_clk: u64,
    /// Min-area baseline: violations, flops, interconnect flops.
    pub min_area_n_foa: i64,
    pub min_area_n_f: i64,
    pub min_area_n_fn: i64,
    /// LAC retiming: violations, flops, interconnect flops, rounds.
    pub lac_n_foa: i64,
    pub lac_n_f: i64,
    pub lac_n_fn: i64,
    pub lac_rounds: usize,
    /// Quality losses absorbed across both phases, in occurrence order.
    pub degradations: Vec<Degradation>,
}

/// Collects the summary of one run from the plan and its retiming
/// report — the single source both `lacr plan` and `lacr serve` print.
pub fn summarize(circuit: &str, plan: &PhysicalPlan, report: &PlanReport) -> PlanSummary {
    let mut degradations = plan.degradations.clone();
    degradations.extend(report.degradations.iter().cloned());
    PlanSummary {
        circuit: circuit.to_string(),
        t_init: plan.t_init,
        t_min: plan.t_min,
        t_clk: plan.t_clk,
        min_area_n_foa: report.min_area.result.n_foa,
        min_area_n_f: report.min_area.result.n_f,
        min_area_n_fn: report.min_area.result.n_fn,
        lac_n_foa: report.lac.result.n_foa,
        lac_n_f: report.lac.result.n_f,
        lac_n_fn: report.lac.result.n_fn,
        lac_rounds: report.lac.result.n_wr,
        degradations,
    }
}

impl PlanSummary {
    /// Whether any stage degraded.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// The exact lines `lacr plan <file.bench>` prints, in order. The
    /// serve protocol embeds these verbatim (`plan.text`) so clients —
    /// and the soak test — can compare daemon output to the one-shot
    /// CLI byte for byte.
    pub fn text_lines(&self) -> Vec<String> {
        vec![
            format!(
                "{}: T_init {:.2} ns, T_min {:.2} ns, T_clk {:.2} ns",
                self.circuit,
                self.t_init as f64 / 1000.0,
                self.t_min as f64 / 1000.0,
                self.t_clk as f64 / 1000.0
            ),
            format!(
                "min-area: N_FOA {}, N_F {}, N_FN {}",
                self.min_area_n_foa, self.min_area_n_f, self.min_area_n_fn
            ),
            format!(
                "LAC     : N_FOA {}, N_F {}, N_FN {} ({} rounds)",
                self.lac_n_foa, self.lac_n_f, self.lac_n_fn, self.lac_rounds
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PlanSummary {
        PlanSummary {
            circuit: "c3".to_string(),
            t_init: 12_340,
            t_min: 5_000,
            t_clk: 6_500,
            min_area_n_foa: 4,
            min_area_n_f: 17,
            min_area_n_fn: 6,
            lac_n_foa: 1,
            lac_n_f: 18,
            lac_n_fn: 7,
            lac_rounds: 3,
            degradations: Vec::new(),
        }
    }

    #[test]
    fn text_lines_match_the_cli_format() {
        let lines = sample().text_lines();
        assert_eq!(
            lines,
            vec![
                "c3: T_init 12.34 ns, T_min 5.00 ns, T_clk 6.50 ns".to_string(),
                "min-area: N_FOA 4, N_F 17, N_FN 6".to_string(),
                "LAC     : N_FOA 1, N_F 18, N_FN 7 (3 rounds)".to_string(),
            ]
        );
    }

    #[test]
    fn degradations_flag_the_summary() {
        assert!(!sample().is_degraded());
    }
}
