//! Seeded fault-injection harness for the fail-soft planning pipeline.
//!
//! Every property drives the pipeline with hostile inputs derived
//! deterministically from a seed ([`FaultPlan`]) and asserts the
//! fail-soft contract: each seed yields either a usable
//! (`verify_retiming`-clean) plan or a typed error — **never a panic**.
//! Panics are audited with `catch_unwind`, so an escaping unwind anywhere
//! in the pipeline fails the property with its replay seed.
//!
//! Five fault families × 16 seeded cases = 80 cases per run:
//! corrupted `.bench` text, absurd technology parameters, absurd planner
//! configuration, degenerate random netlists, and zero-capacity /
//! tight-budget planning runs.

use lacr_core::{try_build_physical_plan, try_plan_retimings, LacConfig, PlanError, PlannerConfig};
use lacr_floorplan::anneal::FloorplanConfig;
use lacr_netlist::{bench89, bench_format, Circuit, Sink, Unit};
use lacr_prng::{prop_assert, FaultPlan, Rng};
use lacr_retime::verify_retiming;
use lacr_timing::Technology;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Parallel variant of [`lacr_prng::run_property`] for pure (`Fn`)
/// properties: the seeded cases fan out across the deterministic pool
/// (each case's [`Rng`] comes from the same [`lacr_prng::case_seed`]
/// lanes as the sequential driver, so replay seeds are unchanged), and
/// failures are reported for the lowest failing case index regardless of
/// scheduling. `LACR_PROP_REPLAY` falls back to the sequential driver.
fn run_property_par(
    name: &str,
    cases: u64,
    property: impl Fn(&mut Rng) -> Result<(), String> + Sync,
) {
    if std::env::var("LACR_PROP_REPLAY").is_ok() {
        lacr_prng::run_property(name, cases, |rng| property(rng));
        return;
    }
    let seeds: Vec<u64> = (0..cases).map(|c| lacr_prng::case_seed(name, c)).collect();
    let results = lacr_par::Region::new("prop.cases").map_indexed(&seeds, |_, &seed| {
        let mut rng = Rng::seed_from_u64(seed);
        property(&mut rng)
    });
    for (case, result) in results.into_iter().enumerate() {
        if let Err(msg) = result {
            panic!(
                "property `{name}` falsified on case {case}/{cases}:\n  {msg}\n  \
                 replay with: LACR_PROP_REPLAY={:#x} cargo test {name}",
                seeds[case]
            );
        }
    }
}

/// Declares `#[test]` functions whose seeded cases run through
/// [`run_property_par`] — the fan-out counterpart of
/// `lacr_prng::properties!`, with identical seed lanes.
macro_rules! properties_par {
    (
        cases = $cases:expr;
        $(
            $(#[$attr:meta])*
            fn $name:ident($rng:ident) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            #[test]
            fn $name() {
                run_property_par(
                    stringify!($name),
                    $cases,
                    |$rng: &mut Rng| -> Result<(), String> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// A planner configuration fast enough to run inside a 16-case property.
fn quick_config() -> PlannerConfig {
    PlannerConfig {
        floorplan: FloorplanConfig {
            moves: 300,
            ..Default::default()
        },
        lac: LacConfig {
            max_rounds: 6,
            n_max: 2,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A small but non-trivial sequential circuit (one DFF loop, fanout).
fn tiny_circuit() -> Circuit {
    bench_format::parse(
        "tiny",
        "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nq = DFF(g)\ng = NAND(a, q)\nh = NOR(g, b)\nz = BUF(h)\n",
    )
    .expect("tiny circuit parses")
}

/// Renders a caught panic payload for the failure report.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the physical-planning front end under `catch_unwind`; `Err` is
/// the escaped panic message.
fn plan_no_panic(
    circuit: &Circuit,
    config: &PlannerConfig,
) -> Result<Result<lacr_core::PhysicalPlan, PlanError>, String> {
    catch_unwind(AssertUnwindSafe(|| {
        try_build_physical_plan(circuit, config, &[])
    }))
    .map_err(panic_message)
}

properties_par! {
    cases = 16;

    /// Corrupted `.bench` text parses to a valid circuit or reports a
    /// typed `ParseBenchError` — the parser never panics, and whatever it
    /// accepts passes `Circuit::validate` or is rejected by the planner's
    /// own validation stage (also without panicking).
    fn corrupted_bench_text_never_panics(rng) {
        let mut fp = FaultPlan::from_rng(rng);
        let base = bench_format::write(&bench89::generate("s344").expect("s344 generates"));
        let hostile = fp.corrupt_text(&base);
        let parsed = catch_unwind(AssertUnwindSafe(|| bench_format::parse("hostile", &hostile)));
        let parsed = match parsed {
            Ok(r) => r,
            Err(p) => {
                return Err(format!("parse panicked: {}", panic_message(p)));
            }
        };
        if let Ok(circuit) = parsed {
            // Whatever the parser vouched for either passes the
            // circuit-level validator or is rejected by the planner with
            // a typed error — never a crash mid-pipeline.
            if !circuit.validate().is_empty() {
                let outcome = plan_no_panic(&circuit, &quick_config())?;
                prop_assert!(
                    outcome.is_err(),
                    "planner accepted a circuit validate() rejects"
                );
            }
        }
    }

    /// Absurd technology parameters (zero / negative / NaN / ±∞ /
    /// magnitude extremes) are rejected with a typed error or survive to
    /// a verifiable plan; the pipeline never panics.
    fn absurd_technology_never_panics(rng) {
        let mut fp = FaultPlan::from_rng(rng);
        let base = Technology::default();
        let tech = Technology {
            unit_res: fp.maybe_absurd(base.unit_res, 0.3),
            unit_cap: fp.maybe_absurd(base.unit_cap, 0.3),
            repeater_delay_ps: fp.maybe_absurd(base.repeater_delay_ps, 0.3),
            repeater_res: fp.maybe_absurd(base.repeater_res, 0.3),
            repeater_cap: fp.maybe_absurd(base.repeater_cap, 0.3),
            repeater_area: fp.maybe_absurd(base.repeater_area, 0.3),
            ff_area: fp.maybe_absurd(base.ff_area, 0.3),
            ff_overhead_ps: fp.maybe_absurd(base.ff_overhead_ps, 0.3),
            l_max: fp.maybe_absurd(base.l_max, 0.3),
            tile_size: fp.maybe_absurd(base.tile_size, 0.3),
            unit_delay_scale: fp.maybe_absurd(base.unit_delay_scale, 0.3),
            unit_area_scale: fp.maybe_absurd(base.unit_area_scale, 0.3),
        };
        let config = PlannerConfig {
            technology: tech,
            ..quick_config()
        };
        let outcome = plan_no_panic(&tiny_circuit(), &config)?;
        if let Ok(plan) = outcome {
            prop_assert!(plan.t_clk >= plan.t_min, "inconsistent plan periods");
        }
    }

    /// Absurd planner-configuration knobs (fractions, weights, penalties)
    /// are rejected at the validation stage or survive to a plan; the
    /// pipeline never panics.
    fn absurd_config_never_panics(rng) {
        let mut fp = FaultPlan::from_rng(rng);
        let base = quick_config();
        let config = PlannerConfig {
            channel_utilization: fp.maybe_absurd(base.channel_utilization, 0.4),
            channel_spread: fp.maybe_absurd(base.channel_spread, 0.4),
            block_slack: fp.maybe_absurd(base.block_slack, 0.4),
            hard_site_area: fp.maybe_absurd(base.hard_site_area, 0.4),
            pad_ff_per_io: fp.maybe_absurd(base.pad_ff_per_io, 0.4),
            clock_slack_frac: fp.maybe_absurd(base.clock_slack_frac, 0.4),
            t_min_tolerance_frac: fp.maybe_absurd(base.t_min_tolerance_frac, 0.4),
            lac: LacConfig {
                alpha: fp.maybe_absurd(base.lac.alpha, 0.4),
                ..base.lac
            },
            floorplan: FloorplanConfig {
                wirelength_weight: fp.maybe_absurd(base.floorplan.wirelength_weight, 0.4),
                cooling: fp.maybe_absurd(base.floorplan.cooling, 0.4),
                ..base.floorplan
            },
            ..base
        };
        let _ = plan_no_panic(&tiny_circuit(), &config)?;
    }

    /// Random degenerate netlists — disconnected units, self-loops,
    /// zero/NaN-area blocks, flop-heavy edges, no I/O — are planned or
    /// rejected with a typed error, never a panic.
    fn degenerate_netlists_never_panic(rng) {
        let mut fp = FaultPlan::from_rng(rng);
        let circuit = random_degenerate_circuit(&mut fp);
        let outcome = plan_no_panic(&circuit, &quick_config())?;
        if let Ok(plan) = outcome {
            // Whatever the planner accepted must also retime cleanly or
            // fail with a typed error.
            let report = catch_unwind(AssertUnwindSafe(|| {
                try_plan_retimings(&plan, &quick_config())
            }))
            .map_err(|p| format!("retiming panicked: {}", panic_message(p)))?;
            if let Ok(report) = report {
                prop_assert!(
                    verify_retiming(
                        &plan.expanded.graph,
                        &report.lac.result.outcome,
                        plan.t_clk
                    )
                    .is_ok(),
                    "accepted plan does not verify"
                );
            }
        }
    }

    /// Zero-capacity tiles and near-zero wall-clock budgets force the
    /// degradation ladder end to end: the pipeline returns a degraded but
    /// `verify_retiming`-clean plan (or a typed error), and never panics.
    fn zero_capacity_and_tight_budget_degrade(rng) {
        let mut fp = FaultPlan::from_rng(rng);
        let mut config = quick_config();
        // Starve the flip-flop capacity model from a random direction.
        match fp.rng().gen_range(0..3u32) {
            0 => config.technology.ff_area = 1e6, // bigger than a tile: fits no flop
            1 => config.channel_utilization = 0.0, // no channel capacity
            _ => config.pad_ff_per_io = 0.0,      // no pad-ring capacity
        }
        let ms = fp.rng().gen_range(0..5u64);
        config.budget = lacr_core::Budget::with_timeout(Duration::from_millis(ms));
        let circuit = tiny_circuit();
        let outcome = plan_no_panic(&circuit, &config)?;
        let plan = match outcome {
            Ok(plan) => plan,
            Err(_typed) => return Ok(()),
        };
        let report = catch_unwind(AssertUnwindSafe(|| try_plan_retimings(&plan, &config)))
            .map_err(|p| format!("retiming panicked: {}", panic_message(p)))?;
        if let Ok(report) = report {
            prop_assert!(
                verify_retiming(&plan.expanded.graph, &report.lac.result.outcome, plan.t_clk)
                    .is_ok(),
                "degraded plan does not verify"
            );
        }
    }
}

/// A random, frequently-malformed circuit: a handful of units with
/// possibly absurd areas/delays, random connections including self-loops
/// and disconnected islands, and possibly no inputs or outputs at all.
fn random_degenerate_circuit(fp: &mut FaultPlan) -> Circuit {
    let mut c = Circuit::new("degenerate");
    let n_in = fp.rng().gen_range(0..3usize);
    let n_logic = fp.rng().gen_range(0..7usize);
    let n_out = fp.rng().gen_range(0..3usize);
    let mut ids = Vec::new();
    for i in 0..n_in {
        ids.push(c.add_unit(Unit::input(format!("in{i}"))));
    }
    for i in 0..n_logic {
        let delay = fp.maybe_absurd(1.0 + i as f64, 0.25);
        let area = fp.maybe_absurd(1.0 + i as f64, 0.25);
        ids.push(c.add_unit(Unit::logic(format!("g{i}"), delay, area)));
    }
    let mut outs = Vec::new();
    for i in 0..n_out {
        outs.push(c.add_unit(Unit::output(format!("out{i}"))));
    }
    if ids.is_empty() {
        return c; // no drivers: nothing to connect
    }
    // Random fanout from each unit, occasionally to itself.
    let num_nets = fp.rng().gen_range(0..=ids.len());
    for d in 0..num_nets {
        let driver = ids[d];
        let mut sinks = Vec::new();
        for _ in 0..fp.rng().gen_range(0..3usize) {
            let all: Vec<_> = ids.iter().chain(outs.iter()).copied().collect();
            let target = *fp.rng().choose(&all).expect("non-empty");
            let flops = fp.rng().gen_range(0..4u32);
            sinks.push(Sink::new(target, flops));
        }
        if !sinks.is_empty() {
            c.add_net(driver, sinks);
        }
    }
    c
}
