//! Degradation-ladder coverage: each rung of the fail-soft pipeline is
//! exercised directly — infeasible LAC instances fall back to a scored
//! min-area result with per-tile overflow diagnostics, tight wall-clock
//! budgets return a degraded best-so-far plan, and a genuinely
//! infeasible period stays a hard typed error.

use lacr_core::{
    lac_retiming, try_build_physical_plan, try_plan_retimings, try_plan_retimings_at, Budget,
    LacConfig, PlanErrorKind, PlannerConfig, Stage,
};
use lacr_floorplan::anneal::FloorplanConfig;
use lacr_netlist::bench89;
use lacr_retime::{
    generate_period_constraints, verify_retiming, RetimeError, RetimeGraph, VertexKind,
};
use std::time::Duration;

fn quick_config() -> PlannerConfig {
    PlannerConfig {
        floorplan: FloorplanConfig {
            moves: 800,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Two-tile ring whose single mandatory flip-flop cannot fit anywhere:
/// flop demand (1) exceeds every tile's capacity (0).
fn infeasible_ring() -> (RetimeGraph, Vec<f64>) {
    let mut g = RetimeGraph::new();
    let a = g.add_vertex(VertexKind::Functional, 1, 1.0, Some(0));
    let b = g.add_vertex(VertexKind::Functional, 1, 1.0, Some(1));
    g.add_edge(a, b, 1);
    g.add_edge(b, a, 0);
    (g, vec![0.0, 0.0])
}

#[test]
fn infeasible_lac_keeps_min_area_result_with_overflow_report() {
    let (g, caps) = infeasible_ring();
    let pc = generate_period_constraints(&g, 100).unwrap();
    let res = lac_retiming(&g, &pc, &caps, &LacConfig::default()).expect("period is feasible");
    // The instance cannot legalize: the result is the min-area fallback
    // with a non-empty per-tile overflow report.
    assert!(res.n_foa >= 1, "flop demand exceeds capacity");
    let over = res.occupancy.overflowing_tiles();
    assert!(!over.is_empty(), "overflow report must name the tiles");
    assert!(over.iter().all(|&(_, v)| v > 0));
    let summary = res.occupancy.overflow_summary();
    assert!(summary.contains("tile"), "{summary}");
    // The retiming itself is still legal for the period.
    verify_retiming(&g, &res.outcome, 100).expect("fallback result verifies");
}

#[test]
fn score_ranks_overflowing_fallback_below_any_legal_plan() {
    let (g, _) = infeasible_ring();
    let pc = generate_period_constraints(&g, 100).unwrap();
    let squeezed = lac_retiming(&g, &pc, &[0.0, 0.0], &LacConfig::default()).unwrap();
    let legal = lac_retiming(&g, &pc, &[10.0, 10.0], &LacConfig::default()).unwrap();
    assert_eq!(legal.n_foa, 0);
    assert!(
        legal.score_key() < squeezed.score_key(),
        "legal {:?} must outrank overflowing {:?}",
        legal.score_key(),
        squeezed.score_key()
    );
}

#[test]
fn planner_reports_residual_overflow_as_lac_degradation() {
    // Starve the capacity model: registers larger than a whole tile
    // (tile_size² = 2.5e5 µm²) so no tile — and no pad ring — fits one,
    // while the circuit's DFF loops still demand them. Kept within ~4×
    // the tile area so the initial-FF term doesn't inflate the floorplan
    // (and with it the routing grid) beyond what a test should route.
    let mut config = quick_config();
    config.technology.ff_area = 1e6;
    config.pad_ff_per_io = 0.0;
    let circuit = bench89::generate("s344").unwrap();
    let plan = try_build_physical_plan(&circuit, &config, &[]).expect("plan builds");
    let report = try_plan_retimings(&plan, &config).expect("fail-soft retiming succeeds");
    assert!(report.lac.result.n_foa > 0, "capacity starvation must bite");
    assert!(report.is_degraded());
    let lac_notes: Vec<_> = report
        .degradations
        .iter()
        .filter(|d| d.stage == Stage::Lac)
        .collect();
    assert!(!lac_notes.is_empty(), "{:?}", report.degradations);
    assert!(
        lac_notes.iter().any(|d| d.reason.contains("tile")),
        "per-tile diagnostics expected: {lac_notes:?}"
    );
    // Degraded, not broken: the retiming still verifies.
    verify_retiming(&plan.expanded.graph, &report.lac.result.outcome, plan.t_clk)
        .expect("degraded plan verifies");
}

#[test]
fn tight_deadline_returns_degraded_best_so_far_plan() {
    // The ISSUE's acceptance scenario: s344 under a ~50ms budget comes
    // back degraded (budget notes attached) but structurally complete
    // and verifiable — never a crash, never an open-ended run.
    let config = PlannerConfig {
        budget: Budget::with_timeout(Duration::from_millis(50)),
        floorplan: FloorplanConfig {
            moves: 5_000_000, // would run for minutes without the budget
            ..Default::default()
        },
        ..Default::default()
    };
    let circuit = bench89::generate("s344").unwrap();
    let plan = try_build_physical_plan(&circuit, &config, &[]).expect("degrades, not fails");
    assert!(
        plan.is_degraded(),
        "a 50ms budget must leave a degradation note"
    );
    assert!(plan.t_clk >= plan.t_min && plan.t_init >= plan.t_min);
    let report = try_plan_retimings(&plan, &config).expect("retiming degrades, not fails");
    verify_retiming(&plan.expanded.graph, &report.lac.result.outcome, plan.t_clk)
        .expect("best-so-far plan verifies");
}

#[test]
fn infeasible_period_stays_a_hard_error() {
    let config = quick_config();
    let circuit = bench89::generate("s344").unwrap();
    let plan = try_build_physical_plan(&circuit, &config, &[]).expect("plan builds");
    // Period 1 ps is below any gate delay: no retiming exists, and the
    // ladder must NOT paper over it.
    let err = try_plan_retimings_at(&plan, &config, 1).expect_err("period 1 is infeasible");
    assert_eq!(err.stage, Stage::MinArea);
    assert!(matches!(
        err.kind,
        PlanErrorKind::Retime(RetimeError::PeriodInfeasible { target: 1 })
    ));
}

#[test]
fn lac_budget_round_cap_is_respected() {
    let mut config = quick_config();
    config.technology.ff_area = 1e6; // keep violations alive so LAC loops
    config.pad_ff_per_io = 0.0;
    config.lac.max_rounds = 40;
    config.budget = Budget::new(None, Some(2));
    let circuit = bench89::generate("s344").unwrap();
    let plan = try_build_physical_plan(&circuit, &config, &[]).expect("plan builds");
    let report = try_plan_retimings(&plan, &config).expect("retiming succeeds");
    assert!(
        report.lac.result.n_wr <= 2,
        "budget round cap must bound N_wr, got {}",
        report.lac.result.n_wr
    );
}
