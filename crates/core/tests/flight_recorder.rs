//! End-to-end contracts of the flight recorder's automatic triggers.
//!
//! The recorder is always on; these tests arm a temp dump path and
//! drive the two in-library triggers for real: a panic escaping the
//! pipeline (induced with a [`FaultPlan`]-corrupted technology) and a
//! budget whose sticky expiry latch trips mid-plan. Both must leave a
//! postmortem JSONL behind whose header names the trigger.

use lacr_core::planner::{build_physical_plan, try_build_physical_plan, PlannerConfig};
use lacr_core::Budget;
use lacr_netlist::bench89;
use lacr_prng::FaultPlan;
use lacr_timing::Technology;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Serializes tests that arm the process-global dump path.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dump(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lacr_flight_{tag}_{}.jsonl", std::process::id()))
}

/// A technology the validator rejects, derived from a seeded
/// [`FaultPlan`] (falling back to a guaranteed-invalid tile size for
/// seeds whose absurd draws happen to validate).
fn broken_technology(seed: u64) -> Technology {
    let mut fp = FaultPlan::new(seed);
    let base = Technology::default();
    let tech = Technology {
        tile_size: fp.absurd_f64(),
        l_max: fp.absurd_f64(),
        ..base.clone()
    };
    if tech.validate().is_empty() {
        Technology {
            tile_size: -1.0,
            ..base
        }
    } else {
        tech
    }
}

#[test]
fn injected_panic_dumps_a_postmortem() {
    let _g = gate();
    let path = temp_dump("panic");
    let _ = std::fs::remove_file(&path);
    lacr_obs::flight::install_panic_hook();
    lacr_obs::flight::arm(&path);
    let circuit = bench89::generate("s344").expect("known benchmark");
    let config = PlannerConfig {
        technology: broken_technology(0xF11),
        ..PlannerConfig::default()
    };
    // The panicking wrapper turns the validation error into an unwind;
    // the hook must dump before the unwind reaches us.
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        let _ = build_physical_plan(&circuit, &config, &[]);
    }));
    lacr_obs::flight::disarm();
    assert!(unwound.is_err(), "broken technology must panic");
    let text = std::fs::read_to_string(&path).expect("panic postmortem written");
    let header = text.lines().next().expect("header line");
    assert!(header.starts_with("{\"t\":\"flight\""), "{header}");
    assert!(
        header.contains("panic"),
        "reason names the trigger: {header}"
    );
    // The panic itself is in the ring as an event.
    assert!(text.contains("\"name\":\"panic\""), "{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn budget_expiry_dumps_a_postmortem() {
    let _g = gate();
    let path = temp_dump("budget");
    let _ = std::fs::remove_file(&path);
    lacr_obs::flight::arm(&path);
    let circuit = bench89::generate("s344").expect("known benchmark");
    let config = PlannerConfig {
        budget: Budget::with_timeout(Duration::ZERO),
        ..PlannerConfig::default()
    };
    // An already-expired budget trips the sticky latch at the first
    // round boundary; the plan degrades instead of failing.
    let plan = try_build_physical_plan(&circuit, &config, &[]).expect("degraded, not failed");
    lacr_obs::flight::disarm();
    assert!(
        !plan.degradations.is_empty(),
        "zero budget must degrade the plan"
    );
    let text = std::fs::read_to_string(&path).expect("budget postmortem written");
    let header = text.lines().next().expect("header line");
    assert!(header.starts_with("{\"t\":\"flight\""), "{header}");
    assert!(
        header.contains("budget expiry"),
        "reason names the trigger: {header}"
    );
    let _ = std::fs::remove_file(&path);
}
