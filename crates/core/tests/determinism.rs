//! Determinism suite: the full planning pipeline must produce
//! byte-identical plans across repeated runs in one process (no hash-map
//! ordering or other ambient state may leak into results) and across
//! worker thread counts (the `lacr-par` ordered-merge contract).
//!
//! The fingerprint is the complete debug serialisation of the physical
//! plan and the deterministic parts of the retiming report — every
//! routed path, floorplan coordinate, edge-usage entry, retiming vector
//! and Table-1 metric — with only wall-clock fields excluded.

use lacr_core::planner::{try_build_physical_plan, try_plan_retimings, PlannerConfig};
use lacr_netlist::bench89;

/// Plans `circuit` end to end and serialises everything deterministic
/// about the result. Wall-clock fields (`TimedRun::elapsed`,
/// `constraint_time`) are the only parts of the plan/report pair left
/// out.
fn plan_fingerprint(circuit: &str) -> String {
    let c = bench89::generate(circuit).expect("known circuit");
    let config = PlannerConfig::default();
    let plan = try_build_physical_plan(&c, &config, &[]).expect("plan succeeds");
    let report = try_plan_retimings(&plan, &config).expect("retimings succeed");
    format!(
        "{plan:#?}\nmin_area: {:#?}\nlac: {:#?}\nconstraints: {} pairs: {}\ndegradations: {:?}",
        report.min_area.result,
        report.lac.result,
        report.num_period_constraints,
        report.pairs_before_pruning,
        report.degradations,
    )
}

/// Runs `f` under a temporary thread-count override, restoring the
/// default afterwards even on panic.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            lacr_par::set_threads(0);
        }
    }
    let _reset = Reset;
    lacr_par::set_threads(n);
    f()
}

fn assert_plan_deterministic(circuit: &str) {
    let baseline = with_threads(1, || plan_fingerprint(circuit));
    let rerun = with_threads(1, || plan_fingerprint(circuit));
    assert_eq!(
        baseline, rerun,
        "{circuit}: two identical sequential runs diverged"
    );
    for threads in [2, 8] {
        let parallel = with_threads(threads, || plan_fingerprint(circuit));
        assert_eq!(
            baseline, parallel,
            "{circuit}: plan differs at {threads} threads"
        );
    }
}

#[test]
fn s344_plan_is_identical_across_runs_and_thread_counts() {
    assert_plan_deterministic("s344");
}

#[test]
fn s382_plan_is_identical_across_runs_and_thread_counts() {
    assert_plan_deterministic("s382");
}
