//! Integration test: planning `s344` under a capture sink emits a span
//! for every pipeline stage, in pipeline order, with balanced nesting
//! (no orphaned opens) and the headline counters populated.

use lacr_core::planner::{try_build_physical_plan, try_plan_retimings, PlannerConfig};
use lacr_floorplan::anneal::FloorplanConfig;
use lacr_netlist::bench89;
use lacr_obs::sink::Record;

#[test]
fn s344_pipeline_emits_stage_spans_in_order() {
    let circuit = bench89::generate("s344").expect("known benchmark");
    let config = PlannerConfig {
        floorplan: FloorplanConfig {
            moves: 1_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let (n_foa, records, report) = lacr_obs::run_captured(|| {
        let plan = try_build_physical_plan(&circuit, &config, &[]).expect("plan builds");
        let report = try_plan_retimings(&plan, &config).expect("retiming succeeds");
        report.lac.result.n_foa
    });
    assert!(n_foa >= 0);

    // Every stage of the pipeline must open exactly one top-level span,
    // and the first open of each stage must respect pipeline order.
    let stage_order = [
        "plan.partition",
        "plan.floorplan",
        "plan.route",
        "plan.expand",
        "plan.timing",
        "plan.constraints",
        "plan.minarea",
        "plan.lac",
    ];
    let first_open = |stage: &str| {
        records
            .iter()
            .position(|(_, r)| matches!(r, Record::SpanOpen { name, .. } if name == stage))
            .unwrap_or_else(|| panic!("no span_open for stage {stage}"))
    };
    let positions: Vec<usize> = stage_order.iter().map(|s| first_open(s)).collect();
    for (w, stages) in positions.windows(2).zip(stage_order.windows(2)) {
        assert!(
            w[0] < w[1],
            "stage {} opened after {} (records {} vs {})",
            stages[0],
            stages[1],
            w[0],
            w[1]
        );
    }

    // Span opens and closes balance like parentheses: each close matches
    // the most recent open by name, and nothing is left open at the end.
    let mut stack: Vec<&str> = Vec::new();
    for (_, r) in &records {
        match r {
            Record::SpanOpen { name, depth, .. } => {
                assert_eq!(*depth, stack.len(), "open {name} at wrong depth");
                stack.push(name);
            }
            Record::SpanClose { name, .. } => {
                let open = stack.pop().expect("close without open");
                assert_eq!(open, name, "mismatched span close");
            }
            _ => {}
        }
    }
    assert!(stack.is_empty(), "orphaned span opens: {stack:?}");

    // The aggregated report carries the headline metrics of each stage.
    for stage in stage_order {
        let stat = report
            .span(stage)
            .unwrap_or_else(|| panic!("report missing span {stage}"));
        assert_eq!(stat.count, 1, "{stage} should run exactly once");
        assert!(stat.incl_ns >= stat.excl_ns);
    }
    for counter in [
        "floorplan.moves_tried",
        "floorplan.moves_accepted",
        "mcmf.ssp_iterations",
        "lac.rounds",
        "repeater.connections",
    ] {
        assert!(
            report.counter(counter).is_some_and(|v| v > 0),
            "counter {counter} missing or zero"
        );
    }
    // Always present even when the first routing pass is overflow-free.
    assert!(
        report.counter("route.ripup_passes").is_some(),
        "route.ripup_passes missing"
    );
    // Exclusive times partition each top-level span's wall-clock: the
    // nested retime spans must not exceed their parents.
    let lac = report.span("plan.lac").unwrap();
    assert!(lac.excl_ns <= lac.incl_ns);
}
